"""brookflow: static whole-pipeline dataflow and race analysis.

PR 8's brooklint proves properties *inside* one kernel body; this module
proves properties *across* launches.  Given a sequence of launchables -
a :class:`~repro.runtime.launch.CommandQueue`'s pending launches, a
:class:`~repro.runtime.launch.FusedPipeline`, an
:class:`~repro.runtime.executor.AsyncExecutor` submission set, or the
launchables a planner-built
:class:`~repro.core.analysis.planner.PlanDecision` materialises - it
constructs the stream-level dependency DAG and statically verifies the
properties the dynamic machinery otherwise only enforces at run time:

* **RAW / WAW / WAR edges** between launches that touch the same device
  storage (down to the per-device shard and per-tile leaf storages, and
  through NumPy buffer aliasing the identity-keyed hazard tracker cannot
  see),
* **in-place gather snapshot nodes**: launches that gather from their
  own output rely on the pre-launch snapshot the tiled and sharded
  execution paths pin explicitly (rule BL-112 fires where that guarantee
  is absent),
* **shard-halo read regions** from
  :func:`~repro.core.analysis.sharding.classify_kernel` and
  **tile-stitch boundaries** from the bound storages, recorded as node
  metadata so reports show which launches cross device/tile boundaries.

Verified properties (stable ``BF-2xx`` codes, emitted through the
brooklint diagnostics/SARIF machinery - see ``docs/analysis.md``):

=======  ========================  ========================================
code     name                      meaning
=======  ========================  ========================================
BF-200   dataflow-skipped          launchable could not be modelled
BF-201   hazard-divergence         conflicting pair the executor's dynamic
                                   hazard tracker could legally overlap
BF-202   use-after-release         pending launch captures a released
                                   stream (or a closed runtime)
BF-203   read-before-write         intermediate read before the pipeline
                                   writes it (and never host-written)
BF-204   uninitialised-input       read of a stream that still holds its
                                   creation zeros
BF-205   dead-write                output overwritten before any read
BF-206   fusable-intermediate      intermediate fusion would eliminate
=======  ========================  ========================================

:class:`~repro.runtime.sanitizer.BrookSanitizer` differentially
cross-checks the executor's *observed* launch order against this
module's conflict pairs, raising
:class:`~repro.errors.SanitizerError` on any divergence - the static and
dynamic analyses audit each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ...errors import SourceLocation
from .lint.diagnostics import Diagnostic, LINT_RULES, LintReport
from .sharding import classify_kernel

__all__ = [
    "DataflowNode",
    "DependencyEdge",
    "StreamDependencyGraph",
    "analyze_decision",
    "analyze_pipeline",
    "build_dataflow_graph",
    "leaf_storages",
    "storage_units",
    "streams_alias",
]


# --------------------------------------------------------------------- #
# Storage resolution
# --------------------------------------------------------------------- #
def leaf_storages(stream: object) -> Tuple[object, ...]:
    """The leaf device storages backing ``stream``.

    A plain stream is backed by one storage; a sharded stream by one
    storage per device; a tiled stream by one per tile; a sharded stream
    of tiled bands by the per-tile storages of every band.  This is the
    ground-truth aliasing unit: two launches conflict exactly when their
    leaf storage sets (or the NumPy buffers inside them) intersect.
    """
    storage = getattr(stream, "storage", None)
    if storage is None:
        # Already a storage object (shard/tile recursion).
        storage = stream
    parts = getattr(storage, "shards", None) or getattr(storage, "tiles", None)
    if not parts:
        return (storage,)
    leaves: List[object] = []
    for part in parts:
        leaves.extend(leaf_storages(part))
    return tuple(leaves)


def storage_units(stream: object) -> Tuple[int, ...]:
    """Identity keys of ``stream``'s leaf storages (the aliasing units)."""
    return tuple(id(storage) for storage in leaf_storages(stream))


def _buffers(stream: object) -> List[np.ndarray]:
    """The NumPy arrays inside ``stream``'s leaf storages (if any)."""
    arrays = []
    for storage in leaf_storages(stream):
        data = getattr(storage, "data", None)
        if isinstance(data, np.ndarray):
            arrays.append(data)
    return arrays


def streams_alias(a: object, b: object) -> bool:
    """Whether two streams can touch the same device memory.

    True when their leaf storage sets intersect, or when any pair of
    leaf storages shares a NumPy buffer (two storages constructed over
    views of one array - aliasing that identity-based hazard keys can
    never see).
    """
    units_a, units_b = set(storage_units(a)), set(storage_units(b))
    if units_a & units_b:
        return True
    for array_a in _buffers(a):
        for array_b in _buffers(b):
            if np.shares_memory(array_a, array_b):
                return True
    return False


# --------------------------------------------------------------------- #
# Graph model
# --------------------------------------------------------------------- #
@dataclass
class DataflowNode:
    """One launch of the analyzed pipeline."""

    index: int
    kind: str  # "map" | "reduction" | "fused"
    kernel: str
    #: name -> stream for each access class of the launch.
    reads: Dict[str, object] = field(default_factory=dict)
    gathers: Dict[str, object] = field(default_factory=dict)
    writes: Dict[str, object] = field(default_factory=dict)
    plan: object = None
    location: Optional[SourceLocation] = None
    #: Whether this node came out of a FusedPipeline segment (fusion has
    #: already been attempted on it; BF-206 stays quiet).
    fused_context: bool = False
    #: Gather parameters with a bounded halo access (classify_kernel):
    #: name -> (row_bound, col_bound), None on an unbounded axis.
    halo_reads: Dict[str, Tuple[Optional[float], Optional[float]]] = \
        field(default_factory=dict)
    #: Streams whose storage is tiled: launches over them stitch their
    #: results across tile boundaries (one pass per tile).
    tile_boundaries: Tuple[str, ...] = ()
    #: Gather args that alias an output of this same node, mapped to
    #: whether the execution path pins an explicit pre-launch snapshot.
    inplace_gathers: Dict[str, bool] = field(default_factory=dict)

    def touched(self) -> Dict[str, object]:
        merged: Dict[str, object] = {}
        merged.update(self.reads)
        merged.update(self.gathers)
        merged.update(self.writes)
        return merged

    def read_units(self) -> Set[int]:
        units: Set[int] = set()
        for stream in (*self.reads.values(), *self.gathers.values()):
            units.update(storage_units(stream))
        return units

    def write_units(self) -> Set[int]:
        units: Set[int] = set()
        for stream in self.writes.values():
            units.update(storage_units(stream))
        return units


@dataclass(frozen=True)
class DependencyEdge:
    """One hazard-ordering edge of the dependency DAG."""

    src: int
    dst: int
    kind: str  # "RAW" | "WAW" | "WAR"
    stream: str


class StreamDependencyGraph:
    """The stream-level dependency DAG of one launch sequence."""

    def __init__(self, nodes: List[DataflowNode],
                 skipped: List[Tuple[int, object]],
                 source_file: str = "<pipeline>"):
        self.nodes = nodes
        #: ``(position, launchable)`` pairs the analysis could not model.
        self.skipped = skipped
        self.source_file = source_file
        self.edges: List[DependencyEdge] = []
        self._build_edges()

    # ------------------------------------------------------------------ #
    def _build_edges(self) -> None:
        for j, later in enumerate(self.nodes):
            for i in range(j):
                earlier = self.nodes[i]
                seen: Set[Tuple[str, str]] = set()
                for kind, first, second in (
                        ("RAW", earlier.writes, {**later.reads,
                                                 **later.gathers}),
                        ("WAW", earlier.writes, later.writes),
                        ("WAR", {**earlier.reads, **earlier.gathers},
                         later.writes),
                ):
                    for name_a, stream_a in first.items():
                        for name_b, stream_b in second.items():
                            if not streams_alias(stream_a, stream_b):
                                continue
                            label = stream_name(stream_b) or name_b or name_a
                            if (kind, label) in seen:
                                continue
                            seen.add((kind, label))
                            self.edges.append(
                                DependencyEdge(i, j, kind, label))

    # ------------------------------------------------------------------ #
    def conflicting_pairs(self) -> List[Tuple[int, int, str, str]]:
        """Every ``(i, j, kind, stream)`` pair that must stay ordered."""
        return [(edge.src, edge.dst, edge.kind, edge.stream)
                for edge in self.edges]

    def dependencies_of(self, index: int) -> Set[int]:
        """Indices of the earlier launches node ``index`` must wait for."""
        return {edge.src for edge in self.edges if edge.dst == index}

    @property
    def race_free(self) -> bool:
        """Whether independent-overlap execution is provably safe.

        The DAG itself orders every conflicting pair; the pipeline is
        race-free for the executor exactly when the dynamic hazard
        tracker keys every one of those pairs (no BF-201 finding).
        """
        return not self._tracker_blind_pairs()

    # ------------------------------------------------------------------ #
    def _tracker_blind_pairs(self) -> List[Tuple[DependencyEdge, str]]:
        """Conflicting pairs the executor's hazard keying cannot see."""
        from ...runtime.executor import _hazard_ids

        blind: List[Tuple[DependencyEdge, str]] = []
        tracker_keys: List[Tuple[Set[int], Set[int]]] = []
        for node in self.nodes:
            reads: Set[int] = set()
            writes: Set[int] = set()
            for stream in (*node.reads.values(), *node.gathers.values()):
                reads.update(_hazard_ids(stream))
            for stream in node.writes.values():
                writes.update(_hazard_ids(stream))
            tracker_keys.append((reads, writes))
        seen: Set[Tuple[int, int]] = set()
        for edge in self.edges:
            if (edge.src, edge.dst) in seen:
                continue
            reads_i, writes_i = tracker_keys[edge.src]
            reads_j, writes_j = tracker_keys[edge.dst]
            ordered = bool(writes_i & (reads_j | writes_j)
                           or reads_i & writes_j)
            if not ordered:
                seen.add((edge.src, edge.dst))
                blind.append((edge, edge.stream))
        return blind

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        return {
            "source_file": self.source_file,
            "nodes": [{
                "index": node.index,
                "kind": node.kind,
                "kernel": node.kernel,
                "reads": sorted(stream_name(s) for s in node.reads.values()),
                "gathers": sorted(stream_name(s)
                                  for s in node.gathers.values()),
                "writes": sorted(stream_name(s)
                                 for s in node.writes.values()),
                "halo_reads": {name: list(bounds) for name, bounds
                               in node.halo_reads.items()},
                "tile_boundaries": list(node.tile_boundaries),
                "inplace_gathers": dict(node.inplace_gathers),
            } for node in self.nodes],
            "edges": [{
                "src": edge.src, "dst": edge.dst,
                "kind": edge.kind, "stream": edge.stream,
            } for edge in self.edges],
            "skipped": [position for position, _ in self.skipped],
            "race_free": self.race_free,
        }


def stream_name(stream: object) -> str:
    return str(getattr(stream, "name", "") or f"<stream@{id(stream):x}>")


# --------------------------------------------------------------------- #
# Launchable flattening
# --------------------------------------------------------------------- #
def _iter_plans(launchables: object) -> Iterable[object]:
    """Flatten any supported launchable container into plan objects."""
    # A CommandQueue: analyze its pending (not yet flushed) launches.
    pending = getattr(launchables, "_pending", None)
    if pending is not None and hasattr(launchables, "flush"):
        for queued in pending:
            yield queued.plan
        return
    segments = getattr(launchables, "segments", None)
    if segments is not None:
        for plan, _ in segments:
            yield plan
        return
    if isinstance(launchables, (list, tuple)):
        for item in launchables:
            yield from _iter_plans(item)
        return
    yield launchables


def _snapshot_guaranteed(plan: object, stream: object) -> bool:
    """Whether an in-place gather of ``stream`` sees a pinned snapshot.

    The tiled execution engine snapshots every gather once per logical
    launch before any tile pass writes, and the sharded engine pins an
    explicit copy when a gather array is also written by the launch.  A
    plain single-device storage has neither guarantee - the backend may
    or may not buffer its outputs before storing them.
    """
    storage = getattr(stream, "storage", None)
    if getattr(storage, "shards", None) or getattr(storage, "tiles", None):
        return True
    return getattr(plan, "_tile_plan", None) is not None


def _halo_bounds(definition) -> Dict[str, Tuple[Optional[float],
                                                Optional[float]]]:
    """Bounded halo read regions of ``definition``'s gather parameters."""
    halo: Dict[str, Tuple[Optional[float], Optional[float]]] = {}
    try:
        spec = classify_kernel(definition)
    except Exception:  # pragma: no cover - malformed definitions
        return halo
    for name, argument in spec.arguments.items():
        if argument.mode != "halo":
            continue
        row = argument.row_access.bound if argument.row_access else None
        col = argument.col_access.bound if argument.col_access else None
        halo[name] = (row, col)
    return halo


def _tiled_names(streams: Dict[str, object]) -> Tuple[str, ...]:
    names = []
    for stream in streams.values():
        storage = getattr(stream, "storage", None)
        if getattr(storage, "tiles", None):
            names.append(stream_name(stream))
        for shard in getattr(storage, "shards", None) or ():
            if getattr(shard, "tiles", None):
                names.append(stream_name(stream))
                break
    return tuple(dict.fromkeys(names))


def _node_from_plan(index: int, plan: object,
                    fused_context: bool) -> Optional[DataflowNode]:
    """Model one plan as a dataflow node (``None``: cannot be modelled)."""
    from ...runtime.launch import FusedPlan, LaunchPlan

    if isinstance(plan, FusedPlan):
        node = DataflowNode(
            index=index, kind="fused", kernel=plan.kernel_name,
            reads=dict(plan.stream_args), gathers=dict(plan.gather_args),
            writes=dict(plan.out_args), plan=plan,
            location=getattr(plan.kernel.definition, "location", None),
            fused_context=True,
            halo_reads=_halo_bounds(plan.kernel.definition),
        )
    elif isinstance(plan, LaunchPlan):
        if plan.is_reduction:
            reads = {"<reduce-input>": plan._reduce_input}
            writes: Dict[str, object] = {}
            accumulator = plan._accumulator
            if accumulator is not None:
                # The runtime reads partial accumulators back after
                # writing them: both a read and a write.
                reads["<accumulator>"] = accumulator
                writes["<accumulator>"] = accumulator
            node = DataflowNode(
                index=index, kind="reduction", kernel=plan.kernel_name,
                reads=reads, writes=writes, plan=plan,
                location=getattr(plan._reduce_piece.definition,
                                 "location", None),
                fused_context=fused_context,
            )
        else:
            reads, gathers, writes = {}, {}, {}
            halo: Dict[str, Tuple[Optional[float], Optional[float]]] = {}
            location = None
            for piece, (stream_args, gather_args, _,
                        out_args) in plan._pieces:
                reads.update(stream_args)
                gathers.update(gather_args)
                writes.update(out_args)
                halo.update(_halo_bounds(piece.definition))
                if location is None:
                    location = getattr(piece.definition, "location", None)
            node = DataflowNode(
                index=index, kind="map", kernel=plan.kernel_name,
                reads=reads, gathers=gathers, writes=writes, plan=plan,
                location=location, fused_context=fused_context,
                halo_reads=halo,
            )
    else:
        return None
    node.tile_boundaries = _tiled_names(node.touched())
    for name, stream in node.gathers.items():
        if any(streams_alias(stream, out) for out in node.writes.values()):
            node.inplace_gathers[name] = _snapshot_guaranteed(node.plan,
                                                              stream)
    return node


def build_dataflow_graph(launchables: object,
                         source_file: str = "<pipeline>"
                         ) -> StreamDependencyGraph:
    """Construct the stream-level dependency DAG of ``launchables``.

    Accepts a list of prepared plans, a
    :class:`~repro.runtime.launch.FusedPipeline`, a
    :class:`~repro.runtime.launch.CommandQueue` with pending launches, an
    executor submission list, or any mix nested in a list.
    """
    from ...runtime.launch import FusedPipeline

    nodes: List[DataflowNode] = []
    skipped: List[Tuple[int, object]] = []
    position = 0
    for container_plan in _iter_plans(launchables):
        fused_context = isinstance(launchables, FusedPipeline) or \
            getattr(container_plan, "fused_kernel_names", None) is not None
        node = _node_from_plan(len(nodes), container_plan, fused_context)
        if node is None:
            skipped.append((position, container_plan))
        else:
            nodes.append(node)
        position += 1
    return StreamDependencyGraph(nodes, skipped, source_file)


# --------------------------------------------------------------------- #
# Static verification
# --------------------------------------------------------------------- #
def _diagnostic(code: str, message: str, kernel: str,
                location: Optional[SourceLocation],
                source_file: str) -> Diagnostic:
    rule = LINT_RULES[code]
    return Diagnostic(rule=code, severity=rule.severity, message=message,
                      kernel=kernel, location=location,
                      source_file=source_file)


def _host_written(stream: object) -> bool:
    """Whether the host ever wrote ``stream`` (conservative: unknown=yes)."""
    return bool(getattr(stream, "host_writes", 1))


def _released(stream: object) -> bool:
    if bool(getattr(stream, "released", False)):
        return True
    runtime = getattr(stream, "runtime", None)
    return bool(getattr(runtime, "closed", False))


def analyze_pipeline(launchables: object,
                     source_file: str = "<pipeline>",
                     graph: Optional[StreamDependencyGraph] = None
                     ) -> LintReport:
    """Statically verify a launch sequence; returns a brooklint report.

    The BF-2xx findings ride the same
    :class:`~repro.core.analysis.lint.LintReport` machinery as the
    kernel-level BL rules, so they merge into ``brookauto lint`` output
    and serialize to SARIF unchanged.
    """
    if graph is None:
        graph = build_dataflow_graph(launchables, source_file)
    report = LintReport()
    report.facts["<pipeline>"] = {
        "launches": len(graph.nodes),
        "edges": len(graph.edges),
        "skipped": len(graph.skipped),
    }
    for node in graph.nodes:
        if node.kernel not in report.kernels:
            report.kernels.append(node.kernel)

    for position, launchable in graph.skipped:
        report.diagnostics.append(_diagnostic(
            "BF-200",
            f"launchable #{position} ({type(launchable).__name__}) is not "
            "a prepared launch plan; the dataflow analysis skipped it",
            kernel="", location=None, source_file=source_file))

    # BF-201: conflicting pairs the dynamic hazard tracker cannot key.
    for edge, label in graph._tracker_blind_pairs():
        src, dst = graph.nodes[edge.src], graph.nodes[edge.dst]
        report.diagnostics.append(_diagnostic(
            "BF-201",
            f"launches #{edge.src} ({src.kernel}) and #{edge.dst} "
            f"({dst.kernel}) conflict on stream {label!r} ({edge.kind}) "
            "through storage the executor's hazard tracker does not key, "
            "so it could legally overlap them",
            kernel=dst.kernel, location=dst.location,
            source_file=source_file))

    # BF-202: use-after-release / use-after-close.
    for node in graph.nodes:
        for name, stream in node.touched().items():
            if _released(stream):
                report.diagnostics.append(_diagnostic(
                    "BF-202",
                    f"launch #{node.index} ({node.kernel}) captures stream "
                    f"{stream_name(stream)!r} ({name}) whose device "
                    "storage has been released",
                    kernel=node.kernel, location=node.location,
                    source_file=source_file))

    # Per-stream event timelines (grouped by aliasing class).
    groups: List[Tuple[object, List[Tuple[int, str]]]] = []

    def _events_for(stream: object) -> List[Tuple[int, str]]:
        for exemplar, events in groups:
            if streams_alias(exemplar, stream):
                return events
        events: List[Tuple[int, str]] = []
        groups.append((stream, events))
        return events

    for node in graph.nodes:
        for stream in (*node.reads.values(), *node.gathers.values()):
            _events_for(stream).append((node.index, "r"))
        for stream in node.writes.values():
            _events_for(stream).append((node.index, "w"))

    for exemplar, events in groups:
        label = stream_name(exemplar)
        writer_indices = [index for index, op in events if op == "w"]
        first_write = writer_indices[0] if writer_indices else None
        # BF-203 / BF-204: reads with no earlier writer.
        if not _host_written(exemplar) and not _released(exemplar):
            early_reads = [index for index, op in events if op == "r"
                           and (first_write is None or index < first_write)]
            if early_reads:
                node = graph.nodes[early_reads[0]]
                if first_write is not None:
                    report.diagnostics.append(_diagnostic(
                        "BF-203",
                        f"launch #{node.index} ({node.kernel}) reads "
                        f"stream {label!r} before launch #{first_write} "
                        f"({graph.nodes[first_write].kernel}) writes it, "
                        "and no host write initialised it",
                        kernel=node.kernel, location=node.location,
                        source_file=source_file))
                else:
                    report.diagnostics.append(_diagnostic(
                        "BF-204",
                        f"launch #{node.index} ({node.kernel}) reads "
                        f"stream {label!r}, which still holds its "
                        "creation zeros (never written by the host or "
                        "the pipeline)",
                        kernel=node.kernel, location=node.location,
                        source_file=source_file))
        # BF-205: write immediately overwritten with no read in between.
        previous_write: Optional[int] = None
        for index, op in events:
            if op == "r":
                previous_write = None
            elif op == "w":
                if previous_write is not None and previous_write != index:
                    node = graph.nodes[previous_write]
                    report.diagnostics.append(_diagnostic(
                        "BF-205",
                        f"launch #{previous_write} ({node.kernel}) writes "
                        f"stream {label!r} but launch #{index} "
                        f"({graph.nodes[index].kernel}) overwrites it "
                        "before anything reads it",
                        kernel=node.kernel, location=node.location,
                        source_file=source_file))
                previous_write = index

    # BF-206: intermediates a fusion pass would have eliminated.
    for exemplar, events in groups:
        writes = [index for index, op in events if op == "w"]
        reads = [index for index, op in events if op == "r"]
        if len(writes) != 1 or len(reads) != 1:
            continue
        producer_index, consumer_index = writes[0], reads[0]
        if consumer_index != producer_index + 1:
            continue
        producer = graph.nodes[producer_index]
        consumer = graph.nodes[consumer_index]
        if producer.fused_context or consumer.fused_context:
            continue
        if producer.kind != "map" or consumer.kind != "map":
            continue
        # Only element-for-element consumption fuses; a gather of the
        # intermediate must stay a separate pass.
        if any(streams_alias(exemplar, s)
               for s in consumer.gathers.values()):
            continue
        report.diagnostics.append(_diagnostic(
            "BF-206",
            f"stream {stream_name(exemplar)!r} is written by launch "
            f"#{producer_index} ({producer.kernel}), consumed "
            f"element-for-element by launch #{consumer_index} "
            f"({consumer.kernel}) and never used again; rt.fuse would "
            "eliminate it",
            kernel=producer.kernel, location=producer.location,
            source_file=source_file))

    # BL-112: in-place gathers without a guaranteed snapshot path.
    for node in graph.nodes:
        for name, guaranteed in node.inplace_gathers.items():
            if guaranteed:
                continue
            report.diagnostics.append(_diagnostic(
                "BL-112",
                f"launch #{node.index} ({node.kernel}) gathers {name!r} "
                "from its own output stream on a plain (untiled, "
                "unsharded) storage path, where no pre-launch snapshot "
                "is guaranteed",
                kernel=node.kernel, location=node.location,
                source_file=source_file))

    return report


def analyze_decision(runtime: object, plans: Sequence[object], decision,
                     source_file: str = "<pipeline>") -> LintReport:
    """Analyze the launchables a planner decision would execute.

    Materialises ``decision.chosen.config`` with
    :func:`~repro.core.analysis.planner.build_launchables` and runs
    :func:`analyze_pipeline` over the result, so the verified DAG is the
    one the service would actually launch.
    """
    from .planner import build_launchables

    launchables = build_launchables(runtime, list(plans),
                                    decision.chosen.config)
    return analyze_pipeline(launchables, source_file=source_file)
