"""Call-graph construction and recursion detection.

Brook already forbids recursion in kernels; Brook Auto additionally needs
the *proof*: an acyclic call graph with a bounded depth, from which the
stack-depth analysis derives the maximum stack usage.  Helper functions
(plain, non-kernel functions in the ``.br`` file) are the only callable
user code, and they may call each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..semantic import AnalyzedProgram

__all__ = ["CallGraph", "build_call_graph"]


@dataclass
class CallGraph:
    """Directed call graph over the functions of a translation unit."""

    edges: Dict[str, List[str]] = field(default_factory=dict)

    def callees(self, name: str) -> List[str]:
        return self.edges.get(name, [])

    # ------------------------------------------------------------------ #
    # Recursion
    # ------------------------------------------------------------------ #
    def find_cycles(self) -> List[List[str]]:
        """Return every elementary cycle found by DFS (possibly duplicated
        from different entry points; callers only care whether any exist
        and which functions participate)."""
        cycles: List[List[str]] = []
        seen_cycles: Set[tuple] = set()

        def dfs(node: str, stack: List[str], on_stack: Set[str]) -> None:
            for callee in self.callees(node):
                if callee in on_stack:
                    start = stack.index(callee)
                    cycle = stack[start:] + [callee]
                    key = tuple(sorted(set(cycle)))
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        cycles.append(cycle)
                    continue
                if callee in self.edges:
                    stack.append(callee)
                    on_stack.add(callee)
                    dfs(callee, stack, on_stack)
                    on_stack.discard(callee)
                    stack.pop()

        for root in self.edges:
            dfs(root, [root], {root})
        return cycles

    @property
    def is_recursive(self) -> bool:
        return bool(self.find_cycles())

    def recursive_functions(self) -> Set[str]:
        names: Set[str] = set()
        for cycle in self.find_cycles():
            names.update(cycle)
        return names

    # ------------------------------------------------------------------ #
    # Depth
    # ------------------------------------------------------------------ #
    def max_depth_from(self, root: str) -> Optional[int]:
        """Longest call chain starting at ``root`` (1 = no calls).

        Returns ``None`` when a cycle is reachable from ``root`` (depth is
        unbounded).
        """
        memo: Dict[str, Optional[int]] = {}
        visiting: Set[str] = set()

        def depth(node: str) -> Optional[int]:
            if node in memo:
                return memo[node]
            if node in visiting:
                return None
            visiting.add(node)
            best = 1
            for callee in self.callees(node):
                sub = depth(callee) if callee in self.edges else 1
                if sub is None:
                    visiting.discard(node)
                    memo[node] = None
                    return None
                best = max(best, 1 + sub)
            visiting.discard(node)
            memo[node] = best
            return best

        return depth(root)


def build_call_graph(program: AnalyzedProgram) -> CallGraph:
    """Build the call graph of an analyzed program."""
    edges = {
        name: list(info.callees) for name, info in program.functions.items()
    }
    return CallGraph(edges=edges)
