"""brooklint driver: lint compiled programs or raw Brook source.

The engine runs the interval analysis (:mod:`repro.core.analysis.ranges`)
over every *original* kernel definition of a compiled program — the
pre-transformation ASTs, so locations match what the user wrote — plus
every helper function standalone, then applies the rule set from
:mod:`.rules`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ....errors import BrookError
from ... import ast_nodes as ast
from ..ranges import RangeContext, analyze_kernel_ranges
from .diagnostics import Diagnostic, LintReport, LintSeverity
from .rules import kernel_diagnostics, kernel_facts, program_diagnostics

__all__ = ["lint_program", "lint_source", "skipped_source_report"]


def lint_program(program, specs: Optional[Dict[str, dict]] = None,
                 source_file: str = "<source>") -> LintReport:
    """Lint one :class:`~repro.core.compiler.CompiledProgram`.

    Args:
        program: The compiled program.
        specs: Per-kernel range specs; defaults to the program's
            ``options.range_specs`` when present.
        source_file: Artifact path recorded on each diagnostic (SARIF).
    """
    if specs is None:
        specs = getattr(program.options, "range_specs", None) or {}
    report = LintReport()
    helpers = program.helpers()

    definitions = list(program.original_definitions.values())
    for kernel in definitions:
        spec = specs.get(kernel.name)
        ctx = RangeContext(spec)
        analysis = analyze_kernel_ranges(kernel, spec, helpers)
        report.kernels.append(kernel.name)
        report.facts[kernel.name] = kernel_facts(analysis, ctx)
        report.diagnostics.extend(
            kernel_diagnostics(kernel, analysis, ctx, source_file))

    for name, helper in helpers.items():
        ctx = RangeContext(None)
        analysis = analyze_kernel_ranges(helper, None, helpers=None)
        report.kernels.append(name)
        report.facts[name] = kernel_facts(analysis, ctx)
        # Gather/division rules only: helpers have unconstrained
        # parameters, so bounds-style warnings would all be noise; real
        # hygiene findings (float ==, dead stores) still apply.
        report.diagnostics.extend(
            d for d in kernel_diagnostics(helper, analysis, ctx, source_file)
            if d.rule not in ("BL-102", "BL-103", "BL-110"))

    report.diagnostics.extend(program_diagnostics(definitions, source_file))
    return report


def lint_source(source: str, specs: Optional[Dict[str, dict]] = None,
                source_file: str = "<source>") -> LintReport:
    """Compile ``source`` in analysis (non-strict) mode and lint it.

    Sources that do not compile at all produce a single BL-100 note via
    :func:`skipped_source_report` rather than raising.
    """
    from ...compiler import compile_source

    try:
        program = compile_source(
            source, filename=source_file, strict=False,
            emit_glsl_es=False, emit_desktop_glsl=False, emit_c=False,
            enable_fast_path=False,
        )
    except BrookError as exc:
        return skipped_source_report(source_file, str(exc))
    return lint_program(program, specs=specs, source_file=source_file)


def skipped_source_report(source_file: str, reason: str) -> LintReport:
    """A report holding the single BL-100 note for an unparseable source."""
    report = LintReport()
    report.diagnostics.append(Diagnostic(
        rule="BL-100", severity=LintSeverity.NOTE,
        message=f"skipped: {reason}", kernel="",
        location=None, source_file=source_file))
    return report
