"""brooklint driver: lint compiled programs or raw Brook source.

The engine runs the interval analysis (:mod:`repro.core.analysis.ranges`)
over every *original* kernel definition of a compiled program — the
pre-transformation ASTs, so locations match what the user wrote — plus
every helper function standalone, then applies the rule set from
:mod:`.rules`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ....errors import BrookError
from ... import ast_nodes as ast
from ..ranges import RangeContext, analyze_kernel_ranges
from ..vectorize import analyze_kernel_vectorization
from .diagnostics import Diagnostic, LintReport, LintSeverity
from .rules import (kernel_diagnostics, kernel_facts, program_diagnostics,
                    vectorization_diagnostics)

__all__ = ["lint_program", "lint_source", "skipped_source_report"]


def lint_program(program, specs: Optional[Dict[str, dict]] = None,
                 source_file: str = "<source>",
                 vectorize: bool = False) -> LintReport:
    """Lint one :class:`~repro.core.compiler.CompiledProgram`.

    Args:
        program: The compiled program.
        specs: Per-kernel range specs; defaults to the program's
            ``options.range_specs`` when present.
        source_file: Artifact path recorded on each diagnostic (SARIF).
        vectorize: Also emit one BV-3xx brookvec verdict note per kernel
            (the verdict always cross-references BL-110 and the facts,
            even when this is off).
    """
    if specs is None:
        specs = getattr(program.options, "range_specs", None) or {}
    param_bounds = getattr(program.options, "param_bounds", None) or {}
    report = LintReport()
    helpers = program.helpers()

    definitions = list(program.original_definitions.values())
    for kernel in definitions:
        spec = specs.get(kernel.name)
        ctx = RangeContext(spec)
        analysis = analyze_kernel_ranges(kernel, spec, helpers)
        vector_report = analyze_kernel_vectorization(
            kernel, helpers, spec=spec,
            param_bounds=param_bounds.get(kernel.name))
        report.kernels.append(kernel.name)
        facts = kernel_facts(analysis, ctx)
        if kernel.is_kernel and not kernel.is_reduction:
            facts.update(vector_report.to_facts())
        report.facts[kernel.name] = facts
        report.diagnostics.extend(
            kernel_diagnostics(kernel, analysis, ctx, source_file,
                               vector_report=vector_report))
        if vectorize:
            report.diagnostics.extend(vectorization_diagnostics(
                kernel, vector_report, source_file))

    for name, helper in helpers.items():
        ctx = RangeContext(None)
        analysis = analyze_kernel_ranges(helper, None, helpers=None)
        report.kernels.append(name)
        report.facts[name] = kernel_facts(analysis, ctx)
        # Gather/division rules only: helpers have unconstrained
        # parameters, so bounds-style warnings would all be noise; real
        # hygiene findings (float ==, dead stores) still apply.
        report.diagnostics.extend(
            d for d in kernel_diagnostics(helper, analysis, ctx, source_file)
            if d.rule not in ("BL-102", "BL-103", "BL-110"))

    report.diagnostics.extend(program_diagnostics(definitions, source_file))
    return report


def lint_source(source: str, specs: Optional[Dict[str, dict]] = None,
                source_file: str = "<source>",
                vectorize: bool = False) -> LintReport:
    """Compile ``source`` in analysis (non-strict) mode and lint it.

    Sources that do not compile at all produce a single BL-100 note via
    :func:`skipped_source_report` rather than raising.
    """
    from ...compiler import compile_source

    try:
        program = compile_source(
            source, filename=source_file, strict=False,
            emit_glsl_es=False, emit_desktop_glsl=False, emit_c=False,
            enable_fast_path=False,
        )
    except BrookError as exc:
        return skipped_source_report(source_file, str(exc))
    return lint_program(program, specs=specs, source_file=source_file,
                        vectorize=vectorize)


def skipped_source_report(source_file: str, reason: str) -> LintReport:
    """A report holding the single BL-100 note for an unparseable source."""
    report = LintReport()
    report.diagnostics.append(Diagnostic(
        rule="BL-100", severity=LintSeverity.NOTE,
        message=f"skipped: {reason}", kernel="",
        location=None, source_file=source_file))
    return report
