"""brooklint: the Brook Auto whole-program kernel linter.

Layered on the interval analysis in :mod:`repro.core.analysis.ranges`,
with stable ``BL-xxx`` rule codes, machine-readable diagnostics and
SARIF 2.1.0 output.  See ``docs/analysis.md`` for the rule table.
"""

from .diagnostics import (Diagnostic, LINT_RULES, LintReport, LintRule,
                          LintSeverity)
from .engine import lint_program, lint_source, skipped_source_report
from .rules import vectorization_diagnostics
from .sarif import sarif_json, to_sarif

__all__ = [
    "Diagnostic", "LINT_RULES", "LintReport", "LintRule", "LintSeverity",
    "lint_program", "lint_source", "skipped_source_report",
    "sarif_json", "to_sarif", "vectorization_diagnostics",
]
