"""SARIF 2.1.0 serialisation of a :class:`LintReport`.

The output validates against the OASIS SARIF 2.1.0 schema and uploads
cleanly to code-scanning UIs (one run, one ``brooklint`` driver, one
result per diagnostic with a physical location when known).
"""

from __future__ import annotations

import json
from typing import Dict

from .diagnostics import Diagnostic, LINT_RULES, LintReport

__all__ = ["to_sarif", "sarif_json"]

_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _rule_descriptor(code: str) -> Dict:
    rule = LINT_RULES[code]
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "defaultConfiguration": {"level": _LEVELS[rule.severity.value]},
    }


def _result(diag: Diagnostic) -> Dict:
    message = diag.message
    if diag.kernel:
        message = f"[{diag.kernel}] {message}"
    result: Dict = {
        "ruleId": diag.rule,
        "level": _LEVELS[diag.severity.value],
        "message": {"text": message},
    }
    location: Dict = {
        "physicalLocation": {
            "artifactLocation": {"uri": diag.source_file},
        }
    }
    if diag.location is not None:
        location["physicalLocation"]["region"] = {
            "startLine": max(1, diag.location.line),
            "startColumn": max(1, diag.location.column),
        }
    result["locations"] = [location]
    return result


def to_sarif(report: LintReport, tool_version: str = "1.0.0") -> Dict:
    """Build the SARIF 2.1.0 document for ``report``."""
    used_rules = sorted({d.rule for d in report.diagnostics})
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "brooklint",
                        "informationUri": "docs/analysis.md",
                        "version": tool_version,
                        "rules": [_rule_descriptor(code)
                                  for code in used_rules],
                    }
                },
                "results": [_result(d) for d in report.diagnostics],
            }
        ],
    }


def sarif_json(report: LintReport, tool_version: str = "1.0.0") -> str:
    return json.dumps(to_sarif(report, tool_version), indent=2,
                      sort_keys=False)
