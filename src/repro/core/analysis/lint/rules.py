"""brooklint rule implementations.

Each rule inspects one kernel AST plus the interval analysis facts from
:mod:`repro.core.analysis.ranges` and yields :class:`Diagnostic` records.
Program-level rules (fusion boundaries) live at the bottom and inspect
kernel pairs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ... import ast_nodes as ast
from ...exec.compiled import is_straight_line
from ...transforms.fuse import check_fusable
from ..ranges import (Interval, KernelRangeAnalysis, RangeContext)
from .diagnostics import Diagnostic, LINT_RULES, LintSeverity

__all__ = ["kernel_diagnostics", "program_diagnostics", "kernel_facts",
           "vectorization_diagnostics"]


def _diag(code: str, message: str, kernel: str, location,
          source_file: str, severity: Optional[LintSeverity] = None
          ) -> Diagnostic:
    rule = LINT_RULES[code]
    return Diagnostic(rule=code, severity=severity or rule.severity,
                      message=message, kernel=kernel, location=location,
                      source_file=source_file)


# --------------------------------------------------------------------------- #
# BL-101 / BL-102: gather bounds
# --------------------------------------------------------------------------- #
def _fmt_interval(interval: Interval, ctx: RangeContext) -> str:
    lo = interval.numeric_lo(ctx)
    hi = interval.numeric_hi(ctx)
    return f"[{lo:g}, {hi:g}]"


def _check_gathers(kernel: ast.FunctionDef, analysis: KernelRangeAnalysis,
                   ctx: RangeContext, source_file: str) -> Iterable[Diagnostic]:
    for site in analysis.gather_sites:
        where = (f"gather {site.param!r} with row index "
                 f"{_fmt_interval(site.rows, ctx)} and column index "
                 f"{_fmt_interval(site.cols, ctx)}")
        if site.verdict == "oob":
            yield _diag(
                "BL-101",
                f"{where}: {site.detail}; the CPU backend raises "
                "KernelLaunchError at run time and GLES2 silently clamps",
                kernel.name, site.location, source_file)
        elif site.verdict != "proved":
            yield _diag(
                "BL-102",
                f"{where}: {site.detail}; backends diverge on "
                "out-of-bounds indices (CPU raises, GLES2 edge-clamps) — "
                "clamp the index explicitly or declare tighter bounds",
                kernel.name, site.location, source_file)


# --------------------------------------------------------------------------- #
# BL-103: possible division by zero
# --------------------------------------------------------------------------- #
def _divisor_safe(divisor: Interval, ctx: RangeContext) -> bool:
    lo = divisor.numeric_lo(ctx)
    hi = divisor.numeric_hi(ctx)
    if lo > 0 or (lo == 0 and divisor.lo_strict):
        return True
    if hi < 0 or (hi == 0 and divisor.hi_strict):
        return True
    return False


def _check_divisions(kernel: ast.FunctionDef,
                     analysis: KernelRangeAnalysis, ctx: RangeContext,
                     source_file: str) -> Iterable[Diagnostic]:
    for site in analysis.division_sites:
        if _divisor_safe(site.divisor, ctx):
            continue
        lo = site.divisor.numeric_lo(ctx)
        hi = site.divisor.numeric_hi(ctx)
        if lo == hi == 0:
            yield _diag(
                "BL-103",
                f"divisor of {site.op!r} is always zero",
                kernel.name, site.location, source_file,
                severity=LintSeverity.ERROR)
        else:
            yield _diag(
                "BL-103",
                f"divisor of {site.op!r} has range [{lo:g}, {hi:g}] which "
                "includes zero; guard it (max/clamp) or declare a "
                "positive parameter range",
                kernel.name, site.location, source_file)


# --------------------------------------------------------------------------- #
# BL-104: float == / !=
# --------------------------------------------------------------------------- #
def _int_locals(kernel: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    for node in kernel.body.walk():
        if isinstance(node, ast.DeclStatement) and \
                getattr(node.decl_type, "is_integer", False):
            names.add(node.name)
    for param in kernel.params:
        if getattr(param.type, "is_integer", False):
            names.add(param.name)
    return names


def _is_integral_expr(expr: ast.Expression, int_names: Set[str]) -> bool:
    if isinstance(expr, ast.NumberLiteral):
        return not expr.is_float
    if isinstance(expr, ast.BoolLiteral):
        return True
    if isinstance(expr, ast.Identifier):
        return expr.name in int_names
    if isinstance(expr, ast.UnaryOp):
        return _is_integral_expr(expr.operand, int_names)
    if isinstance(expr, ast.BinaryOp) and expr.op in ("+", "-", "*", "%"):
        return (_is_integral_expr(expr.left, int_names)
                and _is_integral_expr(expr.right, int_names))
    return False


def _check_float_equality(kernel: ast.FunctionDef,
                          source_file: str) -> Iterable[Diagnostic]:
    int_names = _int_locals(kernel)
    for node in kernel.body.walk():
        if isinstance(node, ast.BinaryOp) and node.op in ("==", "!="):
            if _is_integral_expr(node.left, int_names) and \
                    _is_integral_expr(node.right, int_names):
                continue
            yield _diag(
                "BL-104",
                f"floating-point values compared with {node.op!r}; exact "
                "equality is not portable across backends — compare "
                "against a tolerance or restructure with </>",
                kernel.name, node.location, source_file)


# --------------------------------------------------------------------------- #
# BL-105: read before any assignment
# --------------------------------------------------------------------------- #
def _target_base(expr: ast.Expression) -> Optional[str]:
    """Variable name an assignment target writes to (None if not a local)."""
    while isinstance(expr, (ast.MemberExpr, ast.IndexExpr)):
        expr = expr.base
    if isinstance(expr, ast.Identifier):
        return expr.name
    return None


class _UninitScan:
    """Linear execution-order scan warning on reads that *no* path could
    have preceded with an assignment.  Union semantics: an assignment in
    any earlier statement (even a non-taken branch) counts, so the rule
    has no false positives on conditional initialisation patterns."""

    def __init__(self, kernel: ast.FunctionDef, source_file: str):
        self.kernel = kernel
        self.source_file = source_file
        self.uninit: Set[str] = set()
        self.reported: Set[str] = set()
        self.diagnostics: List[Diagnostic] = []

    def run(self) -> List[Diagnostic]:
        self._stmt(self.kernel.body)
        return self.diagnostics

    # ---- statements -------------------------------------------------- #
    def _stmt(self, stmt: ast.Statement) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self._stmt(inner)
        elif isinstance(stmt, ast.DeclStatement):
            if stmt.init is not None:
                self._expr(stmt.init)
                self.uninit.discard(stmt.name)
            else:
                self.uninit.add(stmt.name)
        elif isinstance(stmt, ast.ExprStatement):
            self._expr(stmt.expr)
        elif isinstance(stmt, ast.IfStatement):
            self._expr(stmt.cond)
            self._stmt(stmt.then_branch)
            self._stmt(stmt.else_branch)
        elif isinstance(stmt, ast.ForStatement):
            self._stmt(stmt.init)
            if stmt.cond is not None:
                self._expr(stmt.cond)
            self._stmt(stmt.body)
            if stmt.update is not None:
                self._expr(stmt.update)
        elif isinstance(stmt, ast.WhileStatement):
            self._expr(stmt.cond)
            self._stmt(stmt.body)
        elif isinstance(stmt, ast.DoWhileStatement):
            self._stmt(stmt.body)
            self._expr(stmt.cond)
        elif isinstance(stmt, ast.ReturnStatement):
            if stmt.value is not None:
                self._expr(stmt.value)

    # ---- expressions ------------------------------------------------- #
    def _expr(self, expr: ast.Expression) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Assignment):
            self._expr(expr.value)
            base = _target_base(expr.target)
            if expr.op != "=":
                self._read_target(expr.target)
            elif isinstance(expr.target, (ast.MemberExpr, ast.IndexExpr)):
                # Writing one component still needs the container bound,
                # but reading other components is what BL-105 tracks; the
                # container itself is not "read" by a pure store.
                pass
            if base is not None:
                self.uninit.discard(base)
        elif isinstance(expr, ast.Identifier):
            self._read(expr)
        elif isinstance(expr, ast.UnaryOp):
            if expr.op in ("++", "--"):
                self._read_target(expr.operand)
                base = _target_base(expr.operand)
                if base is not None:
                    self.uninit.discard(base)
            else:
                self._expr(expr.operand)
        else:
            for child in expr.children():
                if isinstance(child, ast.Expression):
                    self._expr(child)

    def _read_target(self, target: ast.Expression) -> None:
        base = _target_base(target)
        if base is not None:
            self._read(ast.Identifier(location=target.location, name=base))

    def _read(self, ident: ast.Identifier) -> None:
        name = ident.name
        if name in self.uninit and name not in self.reported:
            self.reported.add(name)
            self.diagnostics.append(_diag(
                "BL-105",
                f"local {name!r} is read before any assignment",
                self.kernel.name, ident.location, self.source_file))


# --------------------------------------------------------------------------- #
# BL-106 / BL-107: dead stores and unassigned outputs
# --------------------------------------------------------------------------- #
def _reads_and_writes(kernel: ast.FunctionDef) -> Tuple[Set[str], Set[str]]:
    """Names read anywhere / names written anywhere in the body."""
    reads: Set[str] = set()
    writes: Set[str] = set()

    def visit(expr: ast.Expression) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Assignment):
            visit(expr.value)
            base = _target_base(expr.target)
            if base is not None:
                writes.add(base)
                if expr.op != "=" or not isinstance(expr.target,
                                                    ast.Identifier):
                    reads.add(base)
            # Index expressions inside the target are reads.
            target = expr.target
            while isinstance(target, (ast.MemberExpr, ast.IndexExpr)):
                if isinstance(target, ast.IndexExpr):
                    visit(target.index)
                target = target.base
        elif isinstance(expr, ast.Identifier):
            reads.add(expr.name)
        elif isinstance(expr, ast.UnaryOp) and expr.op in ("++", "--"):
            base = _target_base(expr.operand)
            if base is not None:
                writes.add(base)
                reads.add(base)
        elif isinstance(expr, ast.IndexOfExpr):
            pass
        else:
            for child in expr.children():
                if isinstance(child, ast.Expression):
                    visit(child)

    for node in kernel.body.walk():
        if isinstance(node, ast.ExprStatement):
            visit(node.expr)
        elif isinstance(node, ast.DeclStatement) and node.init is not None:
            visit(node.init)
        elif isinstance(node, ast.IfStatement):
            visit(node.cond)
        elif isinstance(node, (ast.WhileStatement, ast.DoWhileStatement)):
            visit(node.cond)
        elif isinstance(node, ast.ForStatement):
            if node.cond is not None:
                visit(node.cond)
            if node.update is not None:
                visit(node.update)
        elif isinstance(node, ast.ReturnStatement) and node.value is not None:
            visit(node.value)
    return reads, writes


def _check_dead_stores(kernel: ast.FunctionDef,
                       source_file: str) -> Iterable[Diagnostic]:
    reads, _writes = _reads_and_writes(kernel)
    for node in kernel.body.walk():
        if isinstance(node, ast.DeclStatement) and node.name not in reads:
            yield _diag(
                "BL-106",
                f"local {node.name!r} is written but never read",
                kernel.name, node.location, source_file)


def _check_outputs(kernel: ast.FunctionDef,
                   source_file: str) -> Iterable[Diagnostic]:
    _reads, writes = _reads_and_writes(kernel)
    for param in kernel.output_params:
        if param.name not in writes:
            yield _diag(
                "BL-107",
                f"out stream {param.name!r} is never assigned; its "
                "elements keep undefined backend contents",
                kernel.name, param.location, source_file)


# --------------------------------------------------------------------------- #
# BL-110: explain fast-path misses
# --------------------------------------------------------------------------- #
_STRAIGHT = (ast.Block, ast.DeclStatement, ast.ExprStatement)


def _check_fast_path(kernel: ast.FunctionDef, source_file: str,
                     vector_report=None) -> Iterable[Diagnostic]:
    if not kernel.is_kernel or kernel.is_reduction:
        return
    if is_straight_line(kernel.body):
        return
    for node in kernel.body.walk():
        if isinstance(node, ast.Statement) and not isinstance(node, _STRAIGHT):
            message = (f"kernel misses the compiled fast path: first "
                       f"divergent construct is a {type(node).__name__}")
            # Cross-reference the brookvec verdict: a fast-path miss is
            # only a real interpreter fallback when the vector path
            # rejects the kernel too, and then the blocking construct or
            # obligation (with its location) is what the user must fix.
            if vector_report is not None and vector_report.vectorizable:
                how = ("masked vector execution"
                       if vector_report.divergent
                       else "unmasked whole-array execution")
                message += (f"; brookvec still runs it whole-array "
                            f"({vector_report.verdict}: {how})")
            elif vector_report is not None:
                blocking = vector_report.blocking() or vector_report.reason
                line = getattr(vector_report.location, "line", None)
                where = f" (line {line})" if line is not None else ""
                message += (f"; brookvec concurs ({vector_report.verdict}: "
                            f"{blocking}{where}) so it runs on the masked "
                            "interpreter")
            else:
                message += "; it runs on the masked interpreter instead"
            yield _diag("BL-110", message, kernel.name, node.location,
                        source_file)
            return


# --------------------------------------------------------------------------- #
# BV-3xx: brookvec vectorization verdicts
# --------------------------------------------------------------------------- #
def vectorization_diagnostics(kernel: ast.FunctionDef, vector_report,
                              source_file: str) -> List[Diagnostic]:
    """One BV-3xx note per kernel, built from a brookvec report."""
    if not kernel.is_kernel or kernel.is_reduction:
        return []
    verdict = vector_report.verdict
    message = vector_report.reason or LINT_RULES[verdict].summary
    if verdict == "BV-301":
        divergent = sum(1 for b in vector_report.branches
                        if b.kind == "divergent")
        bounded = [l for l in vector_report.loops
                   if l.kind == "bounded-divergent"]
        extras = []
        if divergent:
            extras.append(f"{divergent} divergent branch(es)")
        for loop in bounded:
            extras.append(f"{loop.construct} loop bounded at "
                          f"{loop.trip_bound} trips")
        if extras:
            message += " [" + ", ".join(extras) + "]"
    return [_diag(verdict, message, kernel.name, vector_report.location,
                  source_file)]


# --------------------------------------------------------------------------- #
# Program-level: BL-111 fusion boundaries
# --------------------------------------------------------------------------- #
def program_diagnostics(kernels: List[ast.FunctionDef],
                        source_file: str) -> List[Diagnostic]:
    """Explain why consecutive kernels of a multi-kernel program cannot
    fuse (producer -> consumer in definition order)."""
    diagnostics: List[Diagnostic] = []
    maps = [k for k in kernels if k.is_kernel]
    for producer, consumer in zip(maps, maps[1:]):
        if not producer.output_params or not consumer.stream_params:
            continue
        connections = {consumer.stream_params[0].name:
                       producer.output_params[0].name}
        reason = check_fusable(producer, consumer, connections)
        if reason is not None:
            diagnostics.append(_diag(
                "BL-111",
                f"{producer.name!r} -> {consumer.name!r} cannot fuse: "
                f"{reason}",
                consumer.name, consumer.location, source_file))
    return diagnostics


# --------------------------------------------------------------------------- #
# Entry point per kernel
# --------------------------------------------------------------------------- #
def kernel_diagnostics(kernel: ast.FunctionDef,
                       analysis: KernelRangeAnalysis, ctx: RangeContext,
                       source_file: str,
                       vector_report=None) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(_check_gathers(kernel, analysis, ctx, source_file))
    diagnostics.extend(_check_divisions(kernel, analysis, ctx, source_file))
    diagnostics.extend(_check_float_equality(kernel, source_file))
    diagnostics.extend(_UninitScan(kernel, source_file).run())
    diagnostics.extend(_check_dead_stores(kernel, source_file))
    diagnostics.extend(_check_outputs(kernel, source_file))
    diagnostics.extend(_check_fast_path(kernel, source_file, vector_report))
    return diagnostics


def kernel_facts(analysis: KernelRangeAnalysis,
                 ctx: RangeContext) -> Dict[str, int]:
    divisions_safe = sum(1 for s in analysis.division_sites
                         if _divisor_safe(s.divisor, ctx))
    return {
        "gathers": len(analysis.gather_sites),
        "gathers_proved": analysis.gathers_proved,
        "divisions": len(analysis.division_sites),
        "divisions_safe": divisions_safe,
    }
