"""Diagnostic records, severities and the brooklint rule registry.

Every finding the linter can produce has a stable ``BL-xxx`` code so
that suppressions, CI gates and documentation can reference it across
releases.  Severity semantics:

* ``error`` — a proved safety violation (the program is wrong on at
  least one backend); ``brookauto lint`` exits non-zero.
* ``warning`` — a property that could not be proved and that diverges
  across backends or violates MISRA-style hygiene.
* ``note`` — an *explain* diagnostic: nothing is wrong, but an
  optimisation (fast path, fusion) is unavailable and this says why.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ....errors import SourceLocation

__all__ = ["LintSeverity", "LintRule", "LINT_RULES", "Diagnostic",
           "LintReport"]


class LintSeverity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "note": 0}[self.value]


@dataclass(frozen=True)
class LintRule:
    """One registered lint rule."""

    code: str
    name: str
    severity: LintSeverity
    summary: str


LINT_RULES: Dict[str, LintRule] = {
    rule.code: rule
    for rule in [
        LintRule("BL-100", "skipped-source", LintSeverity.NOTE,
                 "A kernel source snippet was skipped because it does not "
                 "compile as Brook Auto."),
        LintRule("BL-101", "gather-out-of-bounds", LintSeverity.ERROR,
                 "A gather index is statically proved to fall outside the "
                 "declared stream extents."),
        LintRule("BL-102", "gather-bounds-unproven", LintSeverity.WARNING,
                 "A gather index cannot be proved in-bounds: the CPU "
                 "backend raises, GLES2 silently edge-clamps, so the "
                 "kernel diverges bitwise across backends."),
        LintRule("BL-103", "possible-division-by-zero", LintSeverity.WARNING,
                 "A divisor's value range includes zero."),
        LintRule("BL-104", "float-equality", LintSeverity.WARNING,
                 "Floating-point values compared with == or !=."),
        LintRule("BL-105", "uninitialized-read", LintSeverity.WARNING,
                 "A local variable may be read before it is assigned."),
        LintRule("BL-106", "dead-store", LintSeverity.WARNING,
                 "A local variable is written but its value is never read."),
        LintRule("BL-107", "unassigned-output", LintSeverity.WARNING,
                 "An out stream parameter is never assigned on some path."),
        LintRule("BL-110", "fast-path-miss", LintSeverity.NOTE,
                 "The kernel cannot use the compiled fast path; the first "
                 "divergent construct is reported."),
        LintRule("BL-111", "fusion-boundary", LintSeverity.NOTE,
                 "Two kernels of this program cannot fuse; the "
                 "check_fusable reason is reported."),
        LintRule("BL-112", "inplace-gather-no-snapshot", LintSeverity.WARNING,
                 "An in-place launch gathers from its own output stream "
                 "on a path where the pre-launch snapshot is not "
                 "guaranteed, so the kernel may observe its own "
                 "partially written results."),
        # BV-3xx: brookvec vectorization verdicts
        # (repro.core.analysis.vectorize) - one per kernel, surfaced by
        # ``brookauto lint --vectorize`` / ``brookauto vectorize`` so the
        # SARIF stream records which kernels run the whole-array vector
        # path and exactly why the rest fall back.
        LintRule("BV-300", "vectorized", LintSeverity.NOTE,
                 "The kernel has no divergent constructs and runs as an "
                 "unmasked whole-array program on the vector path."),
        LintRule("BV-301", "masked-divergent-vectorized", LintSeverity.NOTE,
                 "The kernel has divergent constructs but every "
                 "safe-speculation obligation is proved; it runs "
                 "whole-array with np.where lane merges."),
        LintRule("BV-302", "vector-fallback", LintSeverity.NOTE,
                 "A construct outside the vectorizable subset keeps the "
                 "kernel on the masked interpreter; the construct and "
                 "location are reported."),
        LintRule("BV-303", "speculation-obligation-unproved",
                 LintSeverity.NOTE,
                 "The construct mix is vectorizable but a speculation "
                 "obligation (gather bounds, division by zero, int "
                 "overflow on dead lanes) could not be discharged; the "
                 "failing interval is reported."),
        # BF-2xx: whole-pipeline dataflow findings (brookflow,
        # repro.core.analysis.dataflow) - properties *across* launches,
        # where the BL-1xx rules prove properties inside one kernel body.
        LintRule("BF-200", "dataflow-skipped", LintSeverity.NOTE,
                 "A launchable could not be modelled by the pipeline "
                 "dataflow analysis and was skipped."),
        LintRule("BF-201", "hazard-divergence", LintSeverity.ERROR,
                 "Two conflicting launches share underlying storage the "
                 "executor's dynamic hazard tracker does not key on, so "
                 "it could legally overlap them and race."),
        LintRule("BF-202", "use-after-release", LintSeverity.ERROR,
                 "A pending launch captures a stream whose device "
                 "storage has already been released (or whose runtime "
                 "is closed)."),
        LintRule("BF-203", "read-before-write", LintSeverity.WARNING,
                 "A launch reads an intermediate stream that no earlier "
                 "launch (and no host write) initialised, although a "
                 "later launch of the same pipeline writes it."),
        LintRule("BF-204", "uninitialised-input", LintSeverity.NOTE,
                 "A launch reads a stream that was never written by the "
                 "host or by the pipeline; it still holds its creation "
                 "zeros."),
        LintRule("BF-205", "dead-write", LintSeverity.WARNING,
                 "A launch's output is overwritten by a later launch "
                 "before anything reads it - the first write is dead "
                 "work."),
        LintRule("BF-206", "fusable-intermediate", LintSeverity.NOTE,
                 "An intermediate stream is produced and consumed "
                 "element-for-element by adjacent passes and never used "
                 "again; fusion would eliminate it."),
    ]
}


@dataclass
class Diagnostic:
    """One machine-readable lint finding."""

    rule: str
    severity: LintSeverity
    message: str
    kernel: str = ""
    location: Optional[SourceLocation] = None
    #: Path of the artifact the location refers to (for SARIF).
    source_file: str = "<source>"

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "kernel": self.kernel,
            "file": self.source_file,
            "line": self.location.line if self.location else None,
            "column": self.location.column if self.location else None,
        }

    def __str__(self) -> str:
        where = self.source_file
        if self.location is not None:
            where += f":{self.location.line}:{self.location.column}"
        prefix = f"{where}: {self.severity.value}: {self.rule}"
        if self.kernel:
            return f"{prefix} [{self.kernel}] {self.message}"
        return f"{prefix} {self.message}"


@dataclass
class LintReport:
    """All findings of one lint run, plus per-kernel analysis facts."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    kernels: List[str] = field(default_factory=list)
    #: Per-kernel analysis facts, e.g. gather/division proof counters.
    facts: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def extend(self, other: "LintReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.kernels.extend(k for k in other.kernels
                            if k not in self.kernels)
        self.facts.update(other.facts)

    def counts(self) -> Dict[str, int]:
        result = {"error": 0, "warning": 0, "note": 0}
        for diag in self.diagnostics:
            result[diag.severity.value] += 1
        return result

    @property
    def has_errors(self) -> bool:
        return any(d.severity is LintSeverity.ERROR for d in self.diagnostics)

    @property
    def has_warnings(self) -> bool:
        return any(d.severity is LintSeverity.WARNING
                   for d in self.diagnostics)

    def at_severity(self, minimum: LintSeverity) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity.rank >= minimum.rank]

    def summary(self) -> Dict[str, int]:
        """Counts plus proof totals — embeddable in certification evidence."""
        counts = self.counts()
        counts["kernels"] = len(self.kernels)
        counts["gathers"] = sum(f.get("gathers", 0)
                                for f in self.facts.values())
        counts["gathers_proved"] = sum(f.get("gathers_proved", 0)
                                       for f in self.facts.values())
        return counts

    def to_dict(self) -> Dict:
        return {
            "kernels": list(self.kernels),
            "counts": self.counts(),
            "facts": dict(self.facts),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
