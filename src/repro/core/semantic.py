"""Semantic analysis for Brook kernels.

The analyzer performs name resolution and type checking over a parsed
translation unit and annotates every expression node with its resolved
:class:`~repro.core.types.BrookType` (stored in ``Expression.type``).
The annotated AST is what the code generators and the execution engine
consume, so analysis is a mandatory stage of the compilation pipeline.

The checks implemented here are the *language-level* rules of Brook
itself (a call must match a known function, a gather array must be
indexed with the right rank, ...).  The additional restrictions of the
Brook Auto subset (bounded loops, no pointers, limited outputs, ...) are
implemented separately in :mod:`repro.core.certification` because they
are configurable per target platform and must produce a compliance
report rather than hard errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import BrookTypeError
from . import ast_nodes as ast
from .builtins import lookup_builtin
from .types import (
    BOOL,
    FLOAT,
    FLOAT2,
    INT,
    BrookType,
    ParamKind,
    ScalarKind,
    common_type,
    swizzle_result_type,
)

__all__ = ["Scope", "FunctionInfo", "AnalyzedProgram", "SemanticAnalyzer", "analyze"]

#: C library functions that legacy (non-Brook) kernels may call.  They are
#: typed permissively by the analyzer and rejected by the certification
#: checker, so the checker can produce rule-level diagnostics instead of the
#: analyzer failing with an opaque type error.
_FOREIGN_C_FUNCTIONS = frozenset({
    "malloc", "calloc", "realloc", "free", "alloca",
    "memcpy", "memset", "memmove", "printf",
})


class Scope:
    """A lexical scope mapping names to declared types."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.symbols: Dict[str, BrookType] = {}

    def declare(self, name: str, brook_type: BrookType, location=None) -> None:
        if name in self.symbols:
            raise BrookTypeError(f"redeclaration of {name!r}", location)
        self.symbols[name] = brook_type

    def lookup(self, name: str) -> Optional[BrookType]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None

    def child(self) -> "Scope":
        return Scope(self)


@dataclass
class FunctionInfo:
    """Summary of one analyzed function/kernel."""

    definition: ast.FunctionDef
    #: Parameter types by name (element type for streams/gathers).
    param_types: Dict[str, BrookType] = field(default_factory=dict)
    #: Names of user helper functions called (directly) by this function.
    callees: List[str] = field(default_factory=list)
    #: Whether every output parameter is assigned on some path.
    outputs_assigned: bool = True

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def is_kernel(self) -> bool:
        return self.definition.is_kernel or self.definition.is_reduction


@dataclass
class AnalyzedProgram:
    """Result of semantic analysis over a translation unit."""

    unit: ast.TranslationUnit
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)

    def kernel_info(self, name: str) -> FunctionInfo:
        info = self.functions[name]
        if not info.is_kernel:
            raise KeyError(f"{name} is not a kernel")
        return info

    @property
    def kernels(self) -> List[FunctionInfo]:
        return [info for info in self.functions.values() if info.is_kernel]

    @property
    def helpers(self) -> List[FunctionInfo]:
        return [info for info in self.functions.values() if not info.is_kernel]


class SemanticAnalyzer:
    """Performs name resolution and type checking over a translation unit."""

    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.program = AnalyzedProgram(unit=unit)
        self._current: Optional[FunctionInfo] = None
        self._assigned_outputs: set = set()

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def analyze(self) -> AnalyzedProgram:
        # Register all function names first so helpers can be called before
        # their definition point (and so recursion is representable, which
        # the call-graph analysis later rejects for Brook Auto).
        for func in self.unit.functions:
            if func.name in self.program.functions:
                raise BrookTypeError(
                    f"duplicate function definition {func.name!r}", func.location
                )
            self.program.functions[func.name] = FunctionInfo(definition=func)
        for func in self.unit.functions:
            self._analyze_function(self.program.functions[func.name])
        return self.program

    # ------------------------------------------------------------------ #
    # Functions
    # ------------------------------------------------------------------ #
    def _analyze_function(self, info: FunctionInfo) -> None:
        self._current = info
        self._assigned_outputs = set()
        func = info.definition
        scope = Scope()
        for param in func.params:
            self._validate_param(func, param)
            info.param_types[param.name] = param.type
            scope.declare(param.name, param.type, param.location)
        self._check_statement(func.body, scope)
        missing = {
            p.name for p in func.output_params
        } - self._assigned_outputs
        info.outputs_assigned = not missing
        if func.is_kernel and not func.is_reduction and missing:
            raise BrookTypeError(
                f"kernel {func.name!r} never assigns output stream(s): "
                + ", ".join(sorted(missing)),
                func.location,
            )
        self._current = None

    def _validate_param(self, func: ast.FunctionDef, param: ast.KernelParam) -> None:
        if param.type.is_void:
            raise BrookTypeError(
                f"parameter {param.name!r} cannot have void type", param.location
            )
        if param.kind is ParamKind.REDUCE and not func.is_reduction:
            raise BrookTypeError(
                f"'reduce' parameter {param.name!r} outside a reduce kernel",
                param.location,
            )
        if func.is_reduction:
            if param.kind not in (ParamKind.STREAM, ParamKind.REDUCE):
                raise BrookTypeError(
                    "reduce kernels only take one input stream and one "
                    f"reduce accumulator (found {param.kind.value!r} "
                    f"parameter {param.name!r})",
                    param.location,
                )
        if not func.is_kernel and param.kind is not ParamKind.SCALAR:
            raise BrookTypeError(
                f"helper function {func.name!r} can only take scalar value "
                f"parameters (found {param.kind.value!r} {param.name!r})",
                param.location,
            )

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def _check_statement(self, stmt: ast.Statement, scope: Scope) -> None:
        if isinstance(stmt, ast.Block):
            inner = scope.child()
            for child in stmt.statements:
                self._check_statement(child, inner)
        elif isinstance(stmt, ast.DeclStatement):
            if stmt.init is not None:
                init_type = self._check_expression(stmt.init, scope)
                if not self._assignable(stmt.decl_type, init_type):
                    raise BrookTypeError(
                        f"cannot initialise {stmt.decl_type} {stmt.name!r} "
                        f"with a value of type {init_type}",
                        stmt.location,
                    )
            scope.declare(stmt.name, stmt.decl_type, stmt.location)
        elif isinstance(stmt, ast.ExprStatement):
            self._check_expression(stmt.expr, scope)
        elif isinstance(stmt, ast.IfStatement):
            self._check_expression(stmt.cond, scope)
            self._check_statement(stmt.then_branch, scope.child())
            if stmt.else_branch is not None:
                self._check_statement(stmt.else_branch, scope.child())
        elif isinstance(stmt, ast.ForStatement):
            loop_scope = scope.child()
            if stmt.init is not None:
                self._check_statement(stmt.init, loop_scope)
            if stmt.cond is not None:
                self._check_expression(stmt.cond, loop_scope)
            if stmt.update is not None:
                self._check_expression(stmt.update, loop_scope)
            self._check_statement(stmt.body, loop_scope.child())
        elif isinstance(stmt, ast.WhileStatement):
            self._check_expression(stmt.cond, scope)
            self._check_statement(stmt.body, scope.child())
        elif isinstance(stmt, ast.DoWhileStatement):
            self._check_statement(stmt.body, scope.child())
            self._check_expression(stmt.cond, scope)
        elif isinstance(stmt, ast.ReturnStatement):
            func = self._current.definition
            if stmt.value is not None:
                value_type = self._check_expression(stmt.value, scope)
                if func.return_type.is_void:
                    raise BrookTypeError(
                        "cannot return a value from a void function", stmt.location
                    )
                if not self._assignable(func.return_type, value_type):
                    raise BrookTypeError(
                        f"return type mismatch: expected {func.return_type}, "
                        f"got {value_type}",
                        stmt.location,
                    )
            elif not func.return_type.is_void:
                raise BrookTypeError(
                    f"non-void function {func.name!r} must return a value",
                    stmt.location,
                )
        elif isinstance(stmt, (ast.BreakStatement, ast.ContinueStatement,
                               ast.GotoStatement)):
            # Structurally fine; goto is rejected by the certification pass.
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unhandled statement {type(stmt).__name__}")

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _check_expression(self, expr: ast.Expression, scope: Scope) -> BrookType:
        expr_type = self._infer(expr, scope)
        expr.type = expr_type
        return expr_type

    def _infer(self, expr: ast.Expression, scope: Scope) -> BrookType:
        if isinstance(expr, ast.NumberLiteral):
            return FLOAT if expr.is_float else INT
        if isinstance(expr, ast.BoolLiteral):
            return BOOL
        if isinstance(expr, ast.Identifier):
            found = scope.lookup(expr.name)
            if found is None:
                raise BrookTypeError(f"use of undeclared name {expr.name!r}",
                                     expr.location)
            return found
        if isinstance(expr, ast.UnaryOp):
            operand = self._check_expression(expr.operand, scope)
            if expr.op == "!":
                return BrookType(ScalarKind.BOOL, operand.width)
            if expr.op in ("*", "&"):
                # Pointer dereference / address-of: typed as the operand so
                # analysis can continue; flagged by the certification pass.
                return operand
            return operand
        if isinstance(expr, ast.BinaryOp):
            return self._infer_binary(expr, scope)
        if isinstance(expr, ast.Assignment):
            return self._infer_assignment(expr, scope)
        if isinstance(expr, ast.Conditional):
            self._check_expression(expr.cond, scope)
            then_type = self._check_expression(expr.then, scope)
            else_type = self._check_expression(expr.otherwise, scope)
            merged = common_type(then_type, else_type)
            if merged is None:
                raise BrookTypeError(
                    f"incompatible branches of conditional: {then_type} vs {else_type}",
                    expr.location,
                )
            return merged
        if isinstance(expr, ast.CallExpr):
            return self._infer_call(expr, scope)
        if isinstance(expr, ast.ConstructorExpr):
            return self._infer_constructor(expr, scope)
        if isinstance(expr, ast.IndexExpr):
            return self._infer_index(expr, scope)
        if isinstance(expr, ast.MemberExpr):
            base = self._check_expression(expr.base, scope)
            result = swizzle_result_type(base, expr.member)
            if result is None:
                raise BrookTypeError(
                    f"invalid swizzle {expr.member!r} on value of type {base}",
                    expr.location,
                )
            return result
        if isinstance(expr, ast.IndexOfExpr):
            return self._infer_indexof(expr)
        raise AssertionError(f"unhandled expression {type(expr).__name__}")

    def _infer_binary(self, expr: ast.BinaryOp, scope: Scope) -> BrookType:
        left = self._check_expression(expr.left, scope)
        right = self._check_expression(expr.right, scope)
        merged = common_type(left, right)
        if merged is None:
            raise BrookTypeError(
                f"incompatible operands for {expr.op!r}: {left} and {right}",
                expr.location,
            )
        if expr.op in ("<", ">", "<=", ">=", "==", "!="):
            return BrookType(ScalarKind.BOOL, merged.width)
        if expr.op in ("&&", "||"):
            return BrookType(ScalarKind.BOOL, merged.width)
        return merged

    def _infer_assignment(self, expr: ast.Assignment, scope: Scope) -> BrookType:
        target_type = self._check_expression(expr.target, scope)
        value_type = self._check_expression(expr.value, scope)
        if not self._assignable(target_type, value_type):
            raise BrookTypeError(
                f"cannot assign value of type {value_type} to target of type "
                f"{target_type}",
                expr.location,
            )
        self._record_output_assignment(expr.target)
        return target_type

    def _record_output_assignment(self, target: ast.Expression) -> None:
        # Track writes to ``out`` parameters so un-written outputs can be
        # reported (writing only a swizzle of an output still counts).
        node = target
        while isinstance(node, (ast.MemberExpr, ast.IndexExpr)):
            node = node.base
        if isinstance(node, ast.Identifier) and self._current is not None:
            param = self._current.definition.param(node.name)
            if param is not None and param.kind is ParamKind.OUT_STREAM:
                self._assigned_outputs.add(param.name)
            if param is not None and param.kind is ParamKind.REDUCE:
                self._assigned_outputs.add(param.name)

    def _infer_call(self, expr: ast.CallExpr, scope: Scope) -> BrookType:
        arg_types = [self._check_expression(arg, scope) for arg in expr.args]
        builtin = lookup_builtin(expr.callee)
        if builtin is not None:
            return builtin.result_type(arg_types)
        if expr.callee in _FOREIGN_C_FUNCTIONS:
            # C library calls (malloc, free, memcpy, ...) are typed
            # permissively so analysis of legacy CUDA/OpenCL-style code can
            # continue; the certification checker rejects them (BA-002).
            return FLOAT
        info = self.program.functions.get(expr.callee)
        if info is None:
            raise BrookTypeError(f"call to unknown function {expr.callee!r}",
                                 expr.location)
        func = info.definition
        if func.is_kernel or func.is_reduction:
            raise BrookTypeError(
                f"kernels cannot call other kernels ({expr.callee!r})", expr.location
            )
        if len(arg_types) != len(func.params):
            raise BrookTypeError(
                f"{expr.callee}() expects {len(func.params)} argument(s), "
                f"got {len(arg_types)}",
                expr.location,
            )
        for arg_type, param in zip(arg_types, func.params):
            if not self._assignable(param.type, arg_type):
                raise BrookTypeError(
                    f"argument {param.name!r} of {expr.callee}(): expected "
                    f"{param.type}, got {arg_type}",
                    expr.location,
                )
        if self._current is not None and expr.callee not in self._current.callees:
            self._current.callees.append(expr.callee)
        return func.return_type

    def _infer_constructor(self, expr: ast.ConstructorExpr, scope: Scope) -> BrookType:
        arg_types = [self._check_expression(arg, scope) for arg in expr.args]
        target = expr.target_type
        total = sum(t.width for t in arg_types)
        if target.width == 1:
            if len(arg_types) != 1:
                raise BrookTypeError(
                    f"{target.name}() cast takes exactly one argument", expr.location
                )
            return target
        if total != target.width and not (len(arg_types) == 1 and arg_types[0].width == 1):
            raise BrookTypeError(
                f"{target.name}() constructor needs {target.width} components, "
                f"got {total}",
                expr.location,
            )
        return target

    def _infer_index(self, expr: ast.IndexExpr, scope: Scope) -> BrookType:
        index_type = self._check_expression(expr.index, scope)
        # Determine the gather parameter at the base of the (possibly
        # chained) index expression and the chain depth.
        depth = 1
        base = expr.base
        while isinstance(base, ast.IndexExpr):
            depth += 1
            base = base.base
        if not isinstance(base, ast.Identifier):
            raise BrookTypeError("only gather parameters can be indexed",
                                 expr.location)
        param = None
        if self._current is not None:
            param = self._current.definition.param(base.name)
        is_scatter_output = (param is not None
                             and param.kind is ParamKind.OUT_STREAM
                             and param.gather_rank > 0)
        if param is None or (param.kind is not ParamKind.GATHER
                             and not param.is_pointer
                             and not is_scatter_output):
            raise BrookTypeError(
                f"{base.name!r} is not a gather-array parameter and cannot be "
                "indexed; Brook streams are accessed positionally",
                expr.location,
            )
        if param.kind is not ParamKind.GATHER:
            # Pointer indexing (CUDA/OpenCL style) and indexed (scatter)
            # outputs are typed permissively so that analysis can continue;
            # the certification checker reports them under rules BA-001 and
            # BA-006 respectively.
            self._check_expression(expr.base, scope)
            return param.type
        rank = max(1, param.gather_rank)
        if depth > rank:
            raise BrookTypeError(
                f"too many indices for {base.name!r} (rank {rank})", expr.location
            )
        if depth == 1 and rank == 2 and index_type.width == 2:
            # ``a[float2(row, col)]`` - a full 2-D access in one step.
            expr.base.type = param.type
            return param.type
        if depth < rank:
            # Partial indexing of a 2-D gather yields a "row view"; typed as
            # the element type so the enclosing IndexExpr resolves it.
            self._check_expression(expr.base, scope)
            return param.type
        self._check_expression(expr.base, scope)
        if index_type.width not in (1, rank):
            raise BrookTypeError(
                f"index of {base.name!r} must be scalar or match rank {rank}",
                expr.location,
            )
        return param.type

    def _infer_indexof(self, expr: ast.IndexOfExpr) -> BrookType:
        if self._current is None:
            raise BrookTypeError("indexof used outside a kernel", expr.location)
        param = self._current.definition.param(expr.stream)
        if param is None or param.kind not in (
            ParamKind.STREAM,
            ParamKind.OUT_STREAM,
            ParamKind.ITERATOR,
        ):
            raise BrookTypeError(
                f"indexof argument {expr.stream!r} must be a stream parameter",
                expr.location,
            )
        if not self._current.definition.is_kernel:
            raise BrookTypeError("indexof can only appear in kernels", expr.location)
        # Brook's indexof yields a float2 position for 2-D streams and a
        # float for 1-D streams; the rank is only known at launch time, so
        # the analyzer types it as float2 and the runtime provides both
        # components (y is 0 for 1-D streams).
        return FLOAT2

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _assignable(target: BrookType, value: BrookType) -> bool:
        if target.is_void or value.is_void:
            return False
        if target.width == value.width:
            return True
        # A scalar may be broadcast into a vector (Cg behaviour).
        if value.width == 1:
            return True
        return False


def analyze(unit: ast.TranslationUnit) -> AnalyzedProgram:
    """Run semantic analysis and return the annotated program."""
    return SemanticAnalyzer(unit).analyze()
