"""The Brook Auto compiler driver.

This module glues the front-end stages together the way the original
``brcc`` compiler does: parse the ``.br`` source, run semantic analysis,
apply the source-to-source transformation passes needed by the target,
check the result against the Brook Auto certification rules and emit the
target source (GLSL ES 1.0, desktop GLSL and C) for every kernel.

The output is a :class:`CompiledProgram` whose :class:`CompiledKernel`
entries carry everything later stages need: the (possibly transformed)
kernel AST for the execution engine, the generated shader text, the
static analysis results and the certification report.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CodegenError
from . import ast_nodes as ast
from .analysis.loop_bounds import analyze_loop_bounds
from .analysis.ranges import range_trip_overrides
from .analysis.resources import KernelResources, TargetLimits, estimate_resources
from .certification import CertificationReport, check_program
from .codegen.c_backend import generate_c
from .codegen.glsl_desktop import generate_desktop_glsl
from .codegen.glsl_es import generate_glsl_es
from .analysis.vectorize import VectorizationReport
from .exec.compiled import CompiledKernelProgram, compile_fast_path
from .exec.vectorized import VectorizedKernelProgram, build_vector_path
from .parser import parse
from .semantic import AnalyzedProgram, analyze
from .transforms.constant_fold import fold_constants
from .transforms.scalarize import scalarize_kernel
from .transforms.split_outputs import split_kernel_outputs

__all__ = ["CompilerOptions", "CompiledKernel", "CompiledProgram",
           "BrookAutoCompiler", "compile_source"]


@dataclass
class CompilerOptions:
    """Options controlling a compilation run.

    Attributes:
        target: Hardware limits used for certification and kernel fitting.
        param_bounds: Per-kernel declared maxima of scalar parameters, used
            to bound data-dependent loops (``{"kernel": {"n": 255}}``).
        range_specs: Per-kernel range specs for the interval analysis
            (:mod:`repro.core.analysis.ranges`): declared gather extents,
            launch-domain symbols and scalar parameter ranges.  Feeds the
            brooklint bounds rules and min-combines range-deduced loop
            trip counts into certification and WCET bounds.
        strict: Raise :class:`~repro.errors.CertificationError` when the
            program violates the Brook Auto subset (default).  Non-strict
            mode still produces the report but lets compilation continue,
            which is how the checker is used to *analyse* legacy Brook code.
        split_outputs: Automatically split kernels with more outputs than
            the target supports.
        scalarize: Automatically scalarize vector stream parameters (only
            attempted when the target has no float texture support).
        fold_constants: Run the constant folding pass.
        emit_glsl_es: Generate GLSL ES 1.0 text.
        emit_desktop_glsl: Generate desktop GLSL text.
        emit_c: Generate C text.
        enable_fast_path: Ahead-of-time compile divergence-free kernel
            bodies into a closure program (see
            :mod:`repro.core.exec.compiled`); divergent kernels always
            fall back to the masked interpreter.  Disable to force every
            kernel through the interpreter (benchmarking / debugging).
        enable_vector_path: Compile brookvec-approved kernels (verdict
            BV-300/BV-301, see :mod:`repro.core.analysis.vectorize`) to
            whole-array programs (:mod:`repro.core.exec.vectorized`).
            ``None`` (default) inherits ``enable_fast_path``; kernels the
            analysis rejects (BV-302/BV-303) always fall back to the
            masked interpreter or fast path with zero behavior change.
    """

    target: TargetLimits = field(default_factory=TargetLimits)
    param_bounds: Dict[str, Dict[str, float]] = field(default_factory=dict)
    range_specs: Dict[str, dict] = field(default_factory=dict)
    strict: bool = True
    split_outputs: bool = True
    scalarize: bool = False
    fold_constants: bool = True
    emit_glsl_es: bool = True
    emit_desktop_glsl: bool = True
    emit_c: bool = True
    enable_fast_path: bool = True
    enable_vector_path: Optional[bool] = None

    @property
    def vector_enabled(self) -> bool:
        """Effective vector-path switch (``None`` inherits the fast path)."""
        if self.enable_vector_path is None:
            return self.enable_fast_path
        return self.enable_vector_path

    def fingerprint(self) -> str:
        """Stable digest of every option that influences compilation.

        Two option sets with the same fingerprint produce identical
        compiler output for the same source, which is what the runtime's
        compile cache keys on.  Target limits and parameter bounds are
        serialised field by field so equal values hash equally regardless
        of object identity.
        """
        payload = {}
        for option in fields(self):
            value = getattr(self, option.name)
            if option.name == "target":
                value = {f.name: getattr(value, f.name) for f in fields(value)}
            elif option.name == "param_bounds":
                value = {
                    kernel: dict(sorted(bounds.items()))
                    for kernel, bounds in sorted(value.items())
                }
            payload[option.name] = value
        encoded = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass
class CompiledKernel:
    """One kernel after compilation for a specific target."""

    name: str
    definition: ast.FunctionDef
    original_name: str
    resources: KernelResources
    glsl_es: Optional[str] = None
    desktop_glsl: Optional[str] = None
    c_source: Optional[str] = None
    #: Maximum loop iterations per element (None when not statically bounded).
    max_loop_iterations: Optional[int] = None
    #: Closure program for divergence-free bodies (None: use the masked
    #: interpreter).  Shared by every launch of this kernel.
    fast_path: Optional[CompiledKernelProgram] = field(default=None,
                                                      compare=False)
    #: Whole-array program for brookvec-approved kernels (None: fall back
    #: to the fast path / masked interpreter).  Shared by every launch.
    vector_path: Optional[VectorizedKernelProgram] = field(default=None,
                                                           compare=False)
    #: The brookvec verdict this kernel compiled under (None when the
    #: vector path was disabled at compile time).
    vector_report: Optional[VectorizationReport] = field(default=None,
                                                         compare=False)
    #: Names of the source kernels when this kernel was produced by the
    #: fusion transform (empty for ordinary kernels).
    fused_from: Tuple[str, ...] = ()
    #: Total element components of the intermediate streams eliminated by
    #: fusion (sum of their widths); 0 for ordinary kernels.  Each saved
    #: component is 4 bytes of stream traffic avoided twice per element
    #: (one write by the producer pass, one read by the consumer pass).
    fused_saved_components: int = 0

    @property
    def is_reduction(self) -> bool:
        return self.definition.is_reduction

    @property
    def fused_count(self) -> int:
        """Number of source kernels this launch executes (1 if unfused)."""
        return max(1, len(self.fused_from))

    def saved_intermediate_bytes(self, element_count: int) -> int:
        """Intermediate stream traffic one launch avoids through fusion.

        Each eliminated component is 4 bytes avoided twice per element:
        one write by the producer pass and one re-read by the consumer
        pass.  Backends put this figure into their launch records so the
        statistics (and the timing model) can price the fusion win.
        """
        return self.fused_saved_components * element_count * 4 * 2


@dataclass
class CompiledProgram:
    """Result of compiling one ``.br`` translation unit."""

    source: str
    options: CompilerOptions
    program: AnalyzedProgram
    certification: CertificationReport
    kernels: Dict[str, CompiledKernel] = field(default_factory=dict)
    #: Mapping from original kernel names to the (possibly split) kernel
    #: names that implement them, in output order.
    kernel_groups: Dict[str, List[str]] = field(default_factory=dict)
    #: Original (pre-transformation) kernel definitions, keyed by source
    #: name; the runtime uses these signatures to map call arguments.
    original_definitions: Dict[str, ast.FunctionDef] = field(default_factory=dict)

    @property
    def is_certified(self) -> bool:
        return self.certification.is_compliant

    def kernel(self, name: str) -> CompiledKernel:
        if name in self.kernels:
            return self.kernels[name]
        raise KeyError(f"no kernel named {name!r}; available: {sorted(self.kernels)}")

    def helpers(self) -> Dict[str, ast.FunctionDef]:
        return {info.name: info.definition for info in self.program.helpers}


class BrookAutoCompiler:
    """Compiles Brook source through the Brook Auto pipeline."""

    def __init__(self, options: Optional[CompilerOptions] = None):
        self.options = options or CompilerOptions()

    # ------------------------------------------------------------------ #
    def compile(self, source: str, filename: str = "<string>") -> CompiledProgram:
        """Compile ``source`` and return the compiled program."""
        options = self.options
        unit = parse(source, filename)

        # Source-to-source passes operate on the raw AST; they may create
        # new kernels (splitting) or change signatures (scalarization), so
        # semantic analysis runs afterwards on the transformed unit.
        transformed_functions: List[ast.FunctionDef] = []
        kernel_groups: Dict[str, List[str]] = {}
        for func in unit.functions:
            if not (func.is_kernel or func.is_reduction):
                transformed_functions.append(func)
                continue
            kernel = func
            if options.fold_constants:
                kernel = fold_constants(kernel)
            if options.scalarize:
                kernel = scalarize_kernel(kernel)
            if options.split_outputs and len(kernel.output_params) > \
                    options.target.max_kernel_outputs:
                pieces = split_kernel_outputs(kernel)
            else:
                pieces = [kernel]
            kernel_groups[func.name] = [piece.name for piece in pieces]
            transformed_functions.extend(pieces)
        transformed_unit = ast.TranslationUnit(
            functions=transformed_functions, filename=filename
        )

        program = analyze(transformed_unit)
        bounds = dict(options.param_bounds)
        specs = dict(options.range_specs)
        # Bounds declared for an original kernel apply to its split pieces.
        for original, pieces in kernel_groups.items():
            if original in bounds:
                for piece in pieces:
                    bounds.setdefault(piece, bounds[original])
            if original in specs:
                for piece in pieces:
                    specs.setdefault(piece, specs[original])
        certification = check_program(
            program, target=options.target, param_bounds=bounds,
            strict=options.strict, range_specs=specs,
        )

        compiled = CompiledProgram(
            source=source, options=options, program=program,
            certification=certification, kernel_groups=kernel_groups,
            original_definitions={
                func.name: func for func in unit.functions
                if func.is_kernel or func.is_reduction
            },
        )
        helper_defs = [info.definition for info in program.helpers]
        helper_map = {helper.name: helper for helper in helper_defs}
        for info in program.kernels:
            kernel = info.definition
            trip_overrides = range_trip_overrides(
                kernel, specs.get(kernel.name), helper_map)
            loop_analysis = analyze_loop_bounds(
                kernel, bounds.get(kernel.name, {}), trip_overrides)
            resources = estimate_resources(kernel, loop_analysis)
            original = next(
                (orig for orig, pieces in kernel_groups.items() if kernel.name in pieces),
                kernel.name,
            )
            compiled_kernel = CompiledKernel(
                name=kernel.name,
                definition=kernel,
                original_name=original,
                resources=resources,
                max_loop_iterations=loop_analysis.max_total_iterations,
            )
            # Code generation is best-effort per backend: a kernel that is
            # outside a backend's capabilities (vector streams on GL ES 2,
            # pointer-style legacy code compiled in non-strict analysis
            # mode, ...) simply has no artefact for that backend.
            if options.emit_glsl_es:
                try:
                    compiled_kernel.glsl_es = generate_glsl_es(kernel, helper_defs)
                except CodegenError:
                    compiled_kernel.glsl_es = None
            if options.emit_desktop_glsl:
                try:
                    compiled_kernel.desktop_glsl = generate_desktop_glsl(
                        kernel, helper_defs)
                except CodegenError:
                    compiled_kernel.desktop_glsl = None
            if options.emit_c:
                try:
                    compiled_kernel.c_source = generate_c(kernel, helper_defs)
                except CodegenError:
                    compiled_kernel.c_source = None
            if options.enable_fast_path:
                compiled_kernel.fast_path = compile_fast_path(
                    kernel, compiled.helpers())
            if options.vector_enabled:
                compiled_kernel.vector_path, compiled_kernel.vector_report = \
                    build_vector_path(
                        kernel, compiled.helpers(),
                        spec=specs.get(kernel.name),
                        param_bounds=bounds.get(kernel.name))
            compiled.kernels[kernel.name] = compiled_kernel
        return compiled


def compile_source(
    source: str,
    filename: str = "<string>",
    options: Optional[CompilerOptions] = None,
    **option_overrides,
) -> CompiledProgram:
    """Convenience wrapper: compile Brook source with optional overrides.

    Keyword arguments override fields of :class:`CompilerOptions`, e.g.
    ``compile_source(src, strict=False, scalarize=True)``.
    """
    if options is None:
        options = CompilerOptions()
    for key, value in option_overrides.items():
        if not hasattr(options, key):
            raise TypeError(f"unknown compiler option {key!r}")
        setattr(options, key, value)
    return BrookAutoCompiler(options).compile(source, filename)
