"""Brook Auto compiler front-end and kernel execution engine.

The ``core`` package contains the paper's primary contribution: the
certification-friendly Brook Auto language subset, its compiler
(lexer, parser, semantic analysis, certification checker, transformation
passes and the GLSL ES 1.0 / desktop GLSL / C code generators) and the
vectorized kernel execution engine used by every runtime backend.
"""

from .analysis.resources import TargetLimits
from .certification import (
    CertificationReport,
    Rule,
    RULES,
    Severity,
    Violation,
    check_program,
)
from .compiler import (
    BrookAutoCompiler,
    CompiledKernel,
    CompiledProgram,
    CompilerOptions,
    compile_source,
)
from .parser import parse
from .reporting import report_to_dict, report_to_json, report_to_markdown, report_to_text
from .semantic import AnalyzedProgram, analyze
from .types import BrookType, FLOAT, FLOAT2, FLOAT3, FLOAT4, INT, ParamKind

__all__ = [
    "TargetLimits",
    "CertificationReport",
    "Rule",
    "RULES",
    "Severity",
    "Violation",
    "check_program",
    "BrookAutoCompiler",
    "CompiledKernel",
    "CompiledProgram",
    "CompilerOptions",
    "compile_source",
    "parse",
    "analyze",
    "AnalyzedProgram",
    "report_to_dict",
    "report_to_json",
    "report_to_markdown",
    "report_to_text",
    "BrookType",
    "FLOAT",
    "FLOAT2",
    "FLOAT3",
    "FLOAT4",
    "INT",
    "ParamKind",
]
