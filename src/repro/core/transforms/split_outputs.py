"""Multi-output kernel splitting.

OpenGL ES 2.0 provides a single render target, so a Brook kernel with N
output streams cannot be executed in one pass.  The original Brook
runtime would fall back to implicit multi-pass emulation, which Brook
Auto forbids (the number of GPU calls would no longer be visible in the
source).  Instead, the paper splits such kernels at the source level:
"the application is trivially modified, e.g. by ... splitting the kernel
in as many versions as the outputs" (section 6).

This pass automates the modification: for a kernel with outputs
``o1..oN`` it produces N kernels named ``<kernel>__<oi>``.  Each split
kernel keeps the full computation (the other outputs become local
temporaries so every data dependency still resolves) but declares exactly
one ``out`` parameter, making it certifiable for a single-render-target
platform.  The cost is recomputation, which the paper accepts for Floyd-
Warshall (its kernel "needed to be split in two - since it produced two
outputs").
"""

from __future__ import annotations

import copy
from typing import List

from ...errors import CodegenError
from .. import ast_nodes as ast
from ..types import ParamKind

__all__ = ["split_kernel_outputs"]


def split_kernel_outputs(kernel: ast.FunctionDef,
                         name_separator: str = "__") -> List[ast.FunctionDef]:
    """Split ``kernel`` into one single-output kernel per output stream.

    Returns a list with one kernel per original output (in declaration
    order).  A kernel that already has zero or one output is returned
    unchanged (as a single-element list) so callers can apply the pass
    unconditionally.
    """
    outputs = kernel.output_params
    if kernel.is_reduction:
        return [kernel]
    if len(outputs) <= 1:
        return [kernel]

    split_kernels: List[ast.FunctionDef] = []
    for keep in outputs:
        clone = copy.deepcopy(kernel)
        clone.name = f"{kernel.name}{name_separator}{keep.name}"
        demoted: List[ast.KernelParam] = []
        new_params: List[ast.KernelParam] = []
        for param in clone.params:
            if param.kind is ParamKind.OUT_STREAM and param.name != keep.name:
                demoted.append(param)
            else:
                new_params.append(param)
        clone.params = new_params

        # Demoted outputs become plain locals declared at the top of the
        # body, so assignments to them still type-check and any reads of
        # intermediate values still see the computed data.
        locals_decls = [
            ast.DeclStatement(
                location=param.location,
                decl_type=param.type,
                name=param.name,
                init=ast.NumberLiteral(location=param.location, value=0.0, is_float=True),
            )
            for param in demoted
        ]
        if not isinstance(clone.body, ast.Block):
            raise CodegenError(f"kernel {kernel.name!r} has no body block")
        clone.body.statements = locals_decls + clone.body.statements
        split_kernels.append(clone)
    return split_kernels
