"""Producer -> consumer kernel fusion.

Classic streaming-compiler fusion (Brook for GPUs, StreamIt): when one
kernel's output stream is consumed element-for-element by the next
kernel, the two passes can be merged into a single kernel in which the
intermediate stream becomes a register-resident local variable.  The
merged kernel

* eliminates the intermediate stream's device storage,
* eliminates one full write + read of the intermediate (on the OpenGL
  ES 2 backend that is an RGBA8 encode, a texture write, a texture fetch
  and an RGBA8 decode per element), and
* saves one kernel pass (draw call) of fixed overhead.

Fusion is *legal* when the producer and consumer are plain map kernels
launched over the same domain and the consumer reads the intermediate as
a positional input stream - element ``i`` of the consumer only ever sees
element ``i`` of the producer.  A consumer that **gathers** from the
intermediate (``a[j]``) may read arbitrary elements and therefore needs
the whole intermediate materialised first; such pairs are rejected and
keep running as two passes.  Reductions are likewise never fused.

This module operates purely on the AST (:func:`fuse_definitions`) plus a
convenience wrapper that packages the fused definition as a
:class:`~repro.core.compiler.CompiledKernel` with generated shader text
and a compiled fast path (:func:`fuse_compiled`).  The runtime entry
points - ``rt.fuse([...])`` and fusing command queues - live in
:mod:`repro.runtime.launch`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ...errors import FusionError
from .. import ast_nodes as ast
from ..types import ParamKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..compiler import CompiledKernel

__all__ = ["FusionResult", "check_fusable", "fuse_definitions", "fuse_compiled"]


@dataclass
class FusionResult:
    """Outcome of one AST-level fusion step."""

    #: The merged kernel definition.
    definition: ast.FunctionDef
    #: Producer symbol -> its (prefixed) name in the fused kernel.  Covers
    #: every producer parameter, including the eliminated outputs.
    producer_renames: Dict[str, str] = field(default_factory=dict)
    #: Eliminated consumer stream parameter -> the fused-kernel local that
    #: now carries the intermediate value.
    consumer_renames: Dict[str, str] = field(default_factory=dict)
    #: Element widths of the eliminated intermediate streams (used by the
    #: statistics / timing accounting of saved stream traffic).
    eliminated_widths: Tuple[int, ...] = ()


def _collect_names(kernel: ast.FunctionDef) -> List[str]:
    names = [param.name for param in kernel.params]
    for node in kernel.body.walk():
        if isinstance(node, ast.DeclStatement):
            names.append(node.name)
        elif isinstance(node, ast.Identifier):
            names.append(node.name)
    return names


def _fresh_prefix(names) -> str:
    taken = set(names)
    counter = 0
    while True:
        prefix = f"f{counter}_"
        if not any(name.startswith(prefix) for name in taken):
            return prefix
        counter += 1


def _rename_symbols(kernel: ast.FunctionDef, renames: Dict[str, str]) -> None:
    """Apply ``renames`` in place to parameters, locals and references."""
    for node in kernel.walk():
        if isinstance(node, ast.Identifier) and node.name in renames:
            node.name = renames[node.name]
        elif isinstance(node, ast.DeclStatement) and node.name in renames:
            node.name = renames[node.name]
        elif isinstance(node, ast.KernelParam) and node.name in renames:
            node.name = renames[node.name]
        elif isinstance(node, ast.IndexOfExpr) and node.stream in renames:
            # indexof() lowers to the implicit element position on every
            # code generator, so retargeting the name is purely cosmetic.
            node.stream = renames[node.stream]


def check_fusable(
    producer: ast.FunctionDef,
    consumer: ast.FunctionDef,
    connections: Dict[str, str],
) -> Optional[str]:
    """Why ``producer``/``consumer`` cannot be fused, or ``None`` if legal.

    Args:
        producer: The upstream map kernel.
        consumer: The downstream map kernel.
        connections: Consumer input-stream parameter name -> producer
            output parameter name feeding it.
    """
    if not producer.is_kernel or producer.is_reduction:
        return f"{producer.name!r} is not a map kernel"
    if not consumer.is_kernel or consumer.is_reduction:
        return f"{consumer.name!r} is not a map kernel"
    if any(isinstance(node, ast.ReturnStatement)
           for node in producer.body.walk()):
        # An early return only ends the *producer* when the kernels run
        # as separate passes; in a concatenated body the SIMT returned
        # mask would suppress the consumer's statements too.
        return (f"{producer.name!r} returns early; its return mask would "
                "also suppress the consumer's statements")
    if not connections:
        return "no producer output feeds a consumer input"
    for consumer_param, producer_out in connections.items():
        out_param = producer.param(producer_out)
        if out_param is None or out_param.kind is not ParamKind.OUT_STREAM:
            return (f"{producer_out!r} is not an output stream of "
                    f"{producer.name!r}")
        in_param = consumer.param(consumer_param)
        if in_param is None:
            return (f"{consumer_param!r} is not a parameter of "
                    f"{consumer.name!r}")
        if in_param.kind is ParamKind.GATHER:
            return (f"{consumer.name!r} gathers from the intermediate "
                    f"{consumer_param!r}; the intermediate must be "
                    "materialised (fusion would change its values)")
        if in_param.kind is not ParamKind.STREAM:
            return (f"{consumer_param!r} of {consumer.name!r} is a "
                    f"{in_param.kind.value} parameter, not an input stream")
        if in_param.type.width != out_param.type.width:
            return (f"element width mismatch: {producer_out!r} is "
                    f"float{out_param.type.width} but {consumer_param!r} "
                    f"expects float{in_param.type.width}")
    return None


def fuse_definitions(
    producer: ast.FunctionDef,
    consumer: ast.FunctionDef,
    connections: Dict[str, str],
    name: Optional[str] = None,
) -> FusionResult:
    """Merge ``producer`` into ``consumer`` at the AST level.

    The producer's connected output parameters become local variables of
    the fused kernel; the consumer's connected input-stream parameters
    disappear and its references read those locals instead.  Every
    producer symbol is renamed with a collision-free prefix so the two
    bodies can be concatenated safely.

    Raises:
        FusionError: When :func:`check_fusable` rejects the pair.
    """
    reason = check_fusable(producer, consumer, connections)
    if reason is not None:
        raise FusionError(
            f"cannot fuse {producer.name!r} -> {consumer.name!r}: {reason}")

    prefix = _fresh_prefix(_collect_names(producer) + _collect_names(consumer))
    producer_renames = {n: prefix + n for n in {
        param.name for param in producer.params
    } | {
        node.name for node in producer.body.walk()
        if isinstance(node, ast.DeclStatement)
    }}

    producer_copy = copy.deepcopy(producer)
    _rename_symbols(producer_copy, producer_renames)

    eliminated_outs = sorted(set(connections.values()),
                             key=[p.name for p in producer.params].index)
    eliminated_renamed = {producer_renames[n] for n in eliminated_outs}
    intermediate_decls: List[ast.Statement] = []
    eliminated_widths: List[int] = []
    producer_params: List[ast.KernelParam] = []
    for param in producer_copy.params:
        if param.name in eliminated_renamed:
            intermediate_decls.append(ast.DeclStatement(
                location=param.location, decl_type=param.type,
                name=param.name, init=None,
            ))
        else:
            producer_params.append(param)
    for out_name in eliminated_outs:
        eliminated_widths.append(producer.param(out_name).type.width)

    consumer_renames = {
        consumer_param: producer_renames[producer_out]
        for consumer_param, producer_out in connections.items()
    }
    consumer_copy = copy.deepcopy(consumer)
    consumer_params = [param for param in consumer_copy.params
                       if param.name not in consumer_renames]
    consumer_copy.params = consumer_params
    _rename_symbols(consumer_copy, consumer_renames)

    fused_name = name or f"{producer.name}__{consumer.name}"
    body = ast.Block(
        location=producer.body.location,
        statements=(intermediate_decls
                    + list(producer_copy.body.statements)
                    + list(consumer_copy.body.statements)),
    )
    fused = ast.FunctionDef(
        location=producer.location,
        name=fused_name,
        return_type=producer.return_type,
        params=producer_params + consumer_params,
        body=body,
        is_kernel=True,
        is_reduction=False,
    )
    return FusionResult(
        definition=fused,
        producer_renames=producer_renames,
        consumer_renames=consumer_renames,
        eliminated_widths=tuple(eliminated_widths),
    )


def fuse_compiled(
    producer: "CompiledKernel",
    consumer: "CompiledKernel",
    connections: Dict[str, str],
    helpers: Dict[str, ast.FunctionDef],
    enable_fast_path: bool = True,
    enable_vector_path: bool = False,
) -> Tuple["CompiledKernel", FusionResult]:
    """Fuse two compiled kernels into a launchable :class:`CompiledKernel`.

    Runs the AST fusion, re-estimates resources, regenerates the shader
    artefacts (best effort, like the compiler driver) and compiles the
    fast path for the merged body.  ``fused_from`` records the flattened
    source kernel names so launch statistics can attribute saved passes.
    """
    # Imported lazily: the compiler driver imports this package for its
    # other passes, so a module-level import would be circular.
    from ..analysis.loop_bounds import analyze_loop_bounds
    from ..analysis.resources import estimate_resources
    from ..codegen.c_backend import generate_c
    from ..codegen.glsl_desktop import generate_desktop_glsl
    from ..codegen.glsl_es import generate_glsl_es
    from ..compiler import CompiledKernel
    from ..exec.compiled import compile_fast_path
    from ...errors import CodegenError

    result = fuse_definitions(producer.definition, consumer.definition,
                              connections)
    fused_def = result.definition
    loop_analysis = analyze_loop_bounds(fused_def, {})
    fused = CompiledKernel(
        name=fused_def.name,
        definition=fused_def,
        original_name=fused_def.name,
        resources=estimate_resources(fused_def, loop_analysis),
        max_loop_iterations=loop_analysis.max_total_iterations,
        fused_from=((producer.fused_from or (producer.name,))
                    + (consumer.fused_from or (consumer.name,))),
        fused_saved_components=(producer.fused_saved_components
                                + consumer.fused_saved_components
                                + sum(result.eliminated_widths)),
    )
    helper_defs = list(helpers.values())
    for attribute, generate in (("glsl_es", generate_glsl_es),
                                ("desktop_glsl", generate_desktop_glsl),
                                ("c_source", generate_c)):
        try:
            setattr(fused, attribute, generate(fused_def, helper_defs))
        except CodegenError:
            setattr(fused, attribute, None)
    if enable_fast_path:
        fused.fast_path = compile_fast_path(fused_def, helpers)
    if enable_vector_path:
        from ..exec.vectorized import build_vector_path

        fused.vector_path, fused.vector_report = build_vector_path(
            fused_def, helpers)
    return fused, result
