"""Source-to-source transformation passes of the Brook Auto compiler.

These passes implement the "trivial modifications" the paper applies to
the Brook+ reference applications to make them fit the Brook Auto subset
and the OpenGL ES 2 hardware limits:

* :mod:`split_outputs` - split a kernel with N output streams into N
  kernels with one output each (GL ES 2 has a single render target).
* :mod:`scalarize` - replace vector-typed stream parameters with one
  scalar stream per component.
* :mod:`constant_fold` - fold constant arithmetic, which both shrinks the
  generated shaders and helps the loop-bound analysis.
* :mod:`fuse` - merge compatible producer -> consumer kernel pairs into
  a single kernel, turning the intermediate stream into a local variable
  (driven by ``rt.fuse([...])`` and fusing command queues rather than by
  the compiler driver).
"""

from .constant_fold import fold_constants
from .fuse import FusionResult, check_fusable, fuse_compiled, fuse_definitions
from .scalarize import scalarize_kernel
from .split_outputs import split_kernel_outputs

__all__ = [
    "fold_constants",
    "scalarize_kernel",
    "split_kernel_outputs",
    "FusionResult",
    "check_fusable",
    "fuse_definitions",
    "fuse_compiled",
]
