"""Constant folding over Brook kernel ASTs.

Folding is intentionally conservative: only arithmetic between number
literals is evaluated, float/int-ness is preserved where possible, and
division by a literal zero is left untouched so the error surfaces where
the programmer wrote it.
"""

from __future__ import annotations

import copy
import math
from typing import Optional

from .. import ast_nodes as ast

__all__ = ["fold_constants"]

_FOLDABLE_BINOPS = {"+", "-", "*", "/", "%"}
_FOLDABLE_CALLS = {
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "floor": math.floor,
    "ceil": math.ceil,
    "abs": abs,
}


def _literal(value: float, is_float: bool, location) -> ast.NumberLiteral:
    return ast.NumberLiteral(location=location, value=value, is_float=is_float)


def _fold_expr(expr: ast.Expression) -> ast.Expression:
    # Recurse into children first (post-order folding).
    if isinstance(expr, ast.BinaryOp):
        expr.left = _fold_expr(expr.left)
        expr.right = _fold_expr(expr.right)
        if (isinstance(expr.left, ast.NumberLiteral)
                and isinstance(expr.right, ast.NumberLiteral)
                and expr.op in _FOLDABLE_BINOPS):
            left, right = expr.left.value, expr.right.value
            is_float = expr.left.is_float or expr.right.is_float
            try:
                if expr.op == "+":
                    value = left + right
                elif expr.op == "-":
                    value = left - right
                elif expr.op == "*":
                    value = left * right
                elif expr.op == "/":
                    if right == 0:
                        return expr
                    value = left / right if is_float else float(int(left) // int(right))
                else:  # "%"
                    if right == 0:
                        return expr
                    value = math.fmod(left, right) if is_float else float(int(left) % int(right))
            except (ArithmeticError, ValueError):
                return expr
            return _literal(value, is_float, expr.location)
        return expr
    if isinstance(expr, ast.UnaryOp):
        expr.operand = _fold_expr(expr.operand)
        if isinstance(expr.operand, ast.NumberLiteral):
            if expr.op == "-":
                return _literal(-expr.operand.value, expr.operand.is_float, expr.location)
            if expr.op == "!":
                return _literal(float(not expr.operand.value), False, expr.location)
        return expr
    if isinstance(expr, ast.CallExpr):
        expr.args = [_fold_expr(arg) for arg in expr.args]
        if (expr.callee in _FOLDABLE_CALLS and len(expr.args) == 1
                and isinstance(expr.args[0], ast.NumberLiteral)):
            try:
                value = float(_FOLDABLE_CALLS[expr.callee](expr.args[0].value))
            except (ArithmeticError, ValueError):
                return expr
            return _literal(value, True, expr.location)
        return expr
    if isinstance(expr, ast.Assignment):
        expr.value = _fold_expr(expr.value)
        return expr
    if isinstance(expr, ast.Conditional):
        expr.cond = _fold_expr(expr.cond)
        expr.then = _fold_expr(expr.then)
        expr.otherwise = _fold_expr(expr.otherwise)
        if isinstance(expr.cond, ast.NumberLiteral):
            return expr.then if expr.cond.value else expr.otherwise
        return expr
    if isinstance(expr, ast.ConstructorExpr):
        expr.args = [_fold_expr(arg) for arg in expr.args]
        return expr
    if isinstance(expr, ast.IndexExpr):
        expr.base = _fold_expr(expr.base)
        expr.index = _fold_expr(expr.index)
        return expr
    if isinstance(expr, ast.MemberExpr):
        expr.base = _fold_expr(expr.base)
        return expr
    return expr


def _fold_statement(stmt: ast.Statement) -> None:
    if isinstance(stmt, ast.Block):
        for child in stmt.statements:
            _fold_statement(child)
    elif isinstance(stmt, ast.DeclStatement):
        if stmt.init is not None:
            stmt.init = _fold_expr(stmt.init)
    elif isinstance(stmt, ast.ExprStatement):
        stmt.expr = _fold_expr(stmt.expr)
    elif isinstance(stmt, ast.IfStatement):
        stmt.cond = _fold_expr(stmt.cond)
        _fold_statement(stmt.then_branch)
        if stmt.else_branch is not None:
            _fold_statement(stmt.else_branch)
    elif isinstance(stmt, ast.ForStatement):
        if stmt.init is not None:
            _fold_statement(stmt.init)
        if stmt.cond is not None:
            stmt.cond = _fold_expr(stmt.cond)
        if stmt.update is not None:
            stmt.update = _fold_expr(stmt.update)
        _fold_statement(stmt.body)
    elif isinstance(stmt, ast.WhileStatement):
        stmt.cond = _fold_expr(stmt.cond)
        _fold_statement(stmt.body)
    elif isinstance(stmt, ast.DoWhileStatement):
        _fold_statement(stmt.body)
        stmt.cond = _fold_expr(stmt.cond)
    elif isinstance(stmt, ast.ReturnStatement):
        if stmt.value is not None:
            stmt.value = _fold_expr(stmt.value)


def fold_constants(func: ast.FunctionDef, in_place: bool = False) -> ast.FunctionDef:
    """Return a copy of ``func`` with constant arithmetic folded.

    Pass ``in_place=True`` to mutate (and return) the original definition.
    Folding invalidates any type annotations previously attached by the
    semantic analyzer, so callers should re-analyze afterwards.
    """
    target = func if in_place else copy.deepcopy(func)
    _fold_statement(target.body)
    return target
