"""Vector-to-scalar conversion of kernel stream parameters.

The Brook+ reference applications are heavily vectorized (``float4``
streams) because AMD's CAL backend maps them directly onto the VLIW
vector ALUs.  The Brook Auto port of the applications is scalar (paper
section 6.1: "the Brook Auto version on our target platform is scalar"),
both because the RGBA8 storage format packs one float per texel and
because low-end shader cores gain nothing from the source-level
vectorization.

This pass automates the common case of that manual modification: a
vector-typed *stream* or *output stream* parameter is replaced by one
scalar stream per component (``a`` of type ``float4`` becomes ``a_x``,
``a_y``, ``a_z``, ``a_w``) and every single-component swizzle of the
parameter is rewritten to the matching scalar parameter.  Kernels that
use a vector parameter as a whole value (``dot(a, b)``, assignments of
the full vector, multi-component swizzles) are outside the supported
pattern and raise :class:`~repro.errors.CodegenError`, mirroring the
paper's position that such kernels are modified by hand.
"""

from __future__ import annotations

import copy
from typing import Dict, List

from ...errors import CodegenError
from .. import ast_nodes as ast
from ..types import ParamKind, SWIZZLE_COMPONENTS

__all__ = ["scalarize_kernel"]

_COMPONENT_SUFFIX = ["x", "y", "z", "w"]


def _scalarizable(param: ast.KernelParam) -> bool:
    return (
        param.kind in (ParamKind.STREAM, ParamKind.OUT_STREAM)
        and param.type.is_vector
    )


class _Rewriter:
    """Rewrites swizzle accesses of split parameters into scalar names."""

    def __init__(self, split: Dict[str, List[str]]):
        self.split = split

    def rewrite_expr(self, expr: ast.Expression) -> ast.Expression:
        if isinstance(expr, ast.MemberExpr):
            base = expr.base
            if isinstance(base, ast.Identifier) and base.name in self.split:
                if len(expr.member) != 1 or expr.member not in SWIZZLE_COMPONENTS:
                    raise CodegenError(
                        f"cannot scalarize multi-component swizzle "
                        f"{base.name}.{expr.member}; modify the kernel manually"
                    )
                component = SWIZZLE_COMPONENTS[expr.member]
                return ast.Identifier(
                    location=expr.location, name=self.split[base.name][component]
                )
            expr.base = self.rewrite_expr(expr.base)
            return expr
        if isinstance(expr, ast.Identifier):
            if expr.name in self.split:
                raise CodegenError(
                    f"kernel uses vector parameter {expr.name!r} as a whole value; "
                    "automatic scalarization only supports per-component access"
                )
            return expr
        # Generic recursion over expression children.
        if isinstance(expr, ast.UnaryOp):
            expr.operand = self.rewrite_expr(expr.operand)
        elif isinstance(expr, ast.BinaryOp):
            expr.left = self.rewrite_expr(expr.left)
            expr.right = self.rewrite_expr(expr.right)
        elif isinstance(expr, ast.Assignment):
            expr.target = self.rewrite_expr(expr.target)
            expr.value = self.rewrite_expr(expr.value)
        elif isinstance(expr, ast.Conditional):
            expr.cond = self.rewrite_expr(expr.cond)
            expr.then = self.rewrite_expr(expr.then)
            expr.otherwise = self.rewrite_expr(expr.otherwise)
        elif isinstance(expr, (ast.CallExpr, ast.ConstructorExpr)):
            expr.args = [self.rewrite_expr(arg) for arg in expr.args]
        elif isinstance(expr, ast.IndexExpr):
            expr.base = self.rewrite_expr(expr.base)
            expr.index = self.rewrite_expr(expr.index)
        return expr

    def rewrite_stmt(self, stmt: ast.Statement) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.statements:
                self.rewrite_stmt(child)
        elif isinstance(stmt, ast.DeclStatement):
            if stmt.init is not None:
                stmt.init = self.rewrite_expr(stmt.init)
        elif isinstance(stmt, ast.ExprStatement):
            stmt.expr = self.rewrite_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStatement):
            stmt.cond = self.rewrite_expr(stmt.cond)
            self.rewrite_stmt(stmt.then_branch)
            if stmt.else_branch is not None:
                self.rewrite_stmt(stmt.else_branch)
        elif isinstance(stmt, ast.ForStatement):
            if stmt.init is not None:
                self.rewrite_stmt(stmt.init)
            if stmt.cond is not None:
                stmt.cond = self.rewrite_expr(stmt.cond)
            if stmt.update is not None:
                stmt.update = self.rewrite_expr(stmt.update)
            self.rewrite_stmt(stmt.body)
        elif isinstance(stmt, ast.WhileStatement):
            stmt.cond = self.rewrite_expr(stmt.cond)
            self.rewrite_stmt(stmt.body)
        elif isinstance(stmt, ast.DoWhileStatement):
            self.rewrite_stmt(stmt.body)
            stmt.cond = self.rewrite_expr(stmt.cond)
        elif isinstance(stmt, ast.ReturnStatement):
            if stmt.value is not None:
                stmt.value = self.rewrite_expr(stmt.value)


def scalarize_kernel(kernel: ast.FunctionDef) -> ast.FunctionDef:
    """Return a scalarized copy of ``kernel``.

    Vector stream/output parameters are split into one scalar stream per
    component; kernels without vector stream parameters are returned as a
    deep copy unchanged.
    """
    clone = copy.deepcopy(kernel)
    split: Dict[str, List[str]] = {}
    new_params: List[ast.KernelParam] = []
    for param in clone.params:
        if _scalarizable(param):
            names = []
            for component in range(param.type.width):
                name = f"{param.name}_{_COMPONENT_SUFFIX[component]}"
                names.append(name)
                new_params.append(
                    ast.KernelParam(
                        location=param.location,
                        name=name,
                        type=param.type.scalar,
                        kind=param.kind,
                        gather_rank=0,
                    )
                )
            split[param.name] = names
        else:
            new_params.append(param)
    if not split:
        return clone
    clone.params = new_params
    _Rewriter(split).rewrite_stmt(clone.body)
    return clone
