"""Brook Auto certification checker.

This is the heart of the paper's contribution: a *subset* of the Brook
language whose programs can be certified against ISO 26262 (and the
MISRA-C-style guidelines it references).  The checker takes an analyzed
translation unit and verifies every kernel against a fixed catalogue of
rules; the result is a :class:`CertificationReport` listing each rule,
whether it passed, and every violation with its source location.

Rule catalogue (mapping to the paper)
-------------------------------------

======  ===============================================================
Rule    Requirement
======  ===============================================================
BA-001  No pointers (ISO 26262-6 Table 1 / MISRA C restricted pointer
        use; paper section 2 item a).
BA-002  No dynamic memory allocation (paper section 2 item b).
BA-003  No recursion - the call graph must be acyclic.
BA-004  No ``goto`` statements.
BA-005  Every loop must have a statically deducible maximum trip count
        (paper section 4: enforced loop upper bounds).
BA-006  Streams are statically sized; kernels must not use scatter
        (``out`` gather-array) parameters.  Stream sizing is enforced at
        stream-creation time by the runtime; the kernel-side part of the
        rule (no scatter outputs) is checked here.
BA-007  The number of kernel outputs must not exceed the render targets
        of the target platform (1 on OpenGL ES 2) so that no implicit
        multi-kernel emulation is required.
BA-008  The number of kernel inputs (streams + gather arrays) must not
        exceed the texture units of the target platform.
BA-009  Kernel resources (uniforms, temporaries, instruction estimate)
        must fit the target platform without emulation.
BA-010  Only the certifiable language subset is used: no ``switch``,
        ``struct``, ``typedef``, string literals, or integer types wider
        than 32 bits.
BA-011  The worst-case stack depth must be statically bounded.
BA-012  Kernel functions must not produce side effects other than
        writing their ``out``/``reduce`` parameters (fault containment,
        paper section 2 items d/e).
======  ===============================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import CertificationError, SourceLocation
from . import ast_nodes as ast
from .analysis.call_graph import build_call_graph
from .analysis.loop_bounds import analyze_loop_bounds
from .analysis.resources import TargetLimits, estimate_resources
from .analysis.stack_depth import estimate_stack_depth
from .semantic import AnalyzedProgram
from .types import ParamKind, ScalarKind

__all__ = [
    "Severity",
    "Rule",
    "Violation",
    "KernelCertification",
    "CertificationReport",
    "CertificationChecker",
    "RULES",
    "check_program",
]

#: Functions whose presence indicates dynamic memory allocation.
_DYNAMIC_ALLOCATION_CALLS = frozenset(
    {"malloc", "calloc", "realloc", "free", "alloca", "new", "delete",
     "streamRead", "streamWrite"}
)


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One certification rule of the Brook Auto subset."""

    rule_id: str
    title: str
    iso_reference: str
    severity: Severity = Severity.ERROR


RULES: Dict[str, Rule] = {
    rule.rule_id: rule
    for rule in [
        Rule("BA-001", "No pointers", "ISO 26262-6:2011 Table 1 1b / MISRA C:2012 Dir 4.8"),
        Rule("BA-002", "No dynamic memory allocation", "ISO 26262-6:2011 Table 1 1c / MISRA C:2012 Dir 4.12"),
        Rule("BA-003", "No recursion", "ISO 26262-6:2011 Table 1 1e / MISRA C:2012 Rule 17.2"),
        Rule("BA-004", "No goto statements", "MISRA C:2012 Rule 15.1"),
        Rule("BA-005", "Statically bounded loops", "ISO 26262-6:2011 7.4.17 / MISRA C:2012 Rule 14.2"),
        Rule("BA-006", "Statically sized streams, no scatter outputs", "ISO 26262-6:2011 Table 1 1c"),
        Rule("BA-007", "Kernel outputs within target render targets", "ISO 26262-6:2011 7.4.17 (no implicit emulation)"),
        Rule("BA-008", "Kernel inputs within target texture units", "ISO 26262-6:2011 7.4.17 (no implicit emulation)"),
        Rule("BA-009", "Kernel resources fit the target without emulation", "ISO 26262-6:2011 7.4.17"),
        Rule("BA-010", "Certifiable language subset only", "MISRA C:2012 Rule 1.1 (language subset)"),
        Rule("BA-011", "Statically bounded stack depth", "ISO 26262-6:2011 Table 1 1d"),
        Rule("BA-012", "No side effects outside declared outputs", "ISO 26262-6:2011 Table 1 1f (fault containment)"),
    ]
}


@dataclass(frozen=True)
class Violation:
    """A single rule violation with its source location."""

    rule_id: str
    message: str
    kernel: str
    location: Optional[SourceLocation] = None
    severity: Severity = Severity.ERROR

    def __str__(self) -> str:
        where = f"{self.location}: " if self.location else ""
        return f"[{self.rule_id}] {where}{self.kernel}: {self.message}"


@dataclass
class KernelCertification:
    """Certification outcome for a single kernel."""

    kernel_name: str
    violations: List[Violation] = field(default_factory=list)
    max_loop_iterations: Optional[int] = None
    max_stack_bytes: Optional[int] = None
    resource_summary: Optional[object] = None

    @property
    def is_compliant(self) -> bool:
        return not any(v.severity is Severity.ERROR for v in self.violations)


@dataclass
class CertificationReport:
    """Certification outcome for a whole translation unit."""

    target: TargetLimits
    kernels: Dict[str, KernelCertification] = field(default_factory=dict)

    @property
    def violations(self) -> List[Violation]:
        result: List[Violation] = []
        for cert in self.kernels.values():
            result.extend(cert.violations)
        return result

    @property
    def is_compliant(self) -> bool:
        return all(cert.is_compliant for cert in self.kernels.values())

    def violations_for_rule(self, rule_id: str) -> List[Violation]:
        return [v for v in self.violations if v.rule_id == rule_id]

    def rule_status(self) -> Dict[str, bool]:
        """Per-rule pass/fail across the whole unit."""
        status = {rule_id: True for rule_id in RULES}
        for violation in self.violations:
            if violation.severity is Severity.ERROR:
                status[violation.rule_id] = False
        return status

    def raise_if_non_compliant(self) -> None:
        if not self.is_compliant:
            errors = [v for v in self.violations if v.severity is Severity.ERROR]
            summary = "; ".join(str(v) for v in errors[:5])
            if len(errors) > 5:
                summary += f"; ... ({len(errors) - 5} more)"
            raise CertificationError(
                f"Brook Auto certification failed with {len(errors)} violation(s): "
                f"{summary}",
                violations=errors,
            )


class CertificationChecker:
    """Checks an analyzed program against the Brook Auto rule catalogue."""

    def __init__(
        self,
        program: AnalyzedProgram,
        target: Optional[TargetLimits] = None,
        param_bounds: Optional[Dict[str, Dict[str, float]]] = None,
        range_specs: Optional[Dict[str, dict]] = None,
    ):
        """
        Args:
            program: Result of :func:`repro.core.semantic.analyze`.
            target: Hardware limits of the compilation target; defaults to
                the minimal OpenGL ES 2.0 profile.
            param_bounds: Per-kernel mapping of scalar parameter names to
                their declared maximum values, used to bound data-dependent
                loops (``{"kernel_name": {"num_steps": 255}}``).
            range_specs: Per-kernel range specs for the interval analysis
                (:mod:`repro.core.analysis.ranges`); range-deduced loop
                trip counts are min-combined with the syntactic deduction,
                so they can certify loops whose limit lives in a local
                variable but never loosen an existing bound.
        """
        self.program = program
        self.target = target or TargetLimits()
        self.param_bounds = param_bounds or {}
        self.range_specs = range_specs or {}

    def _trip_overrides(self, func: ast.FunctionDef,
                        kernel: ast.FunctionDef) -> Dict[int, int]:
        from .analysis.ranges import range_trip_overrides
        spec = self.range_specs.get(kernel.name) if func is kernel else None
        helpers = {info.name: info.definition
                   for info in self.program.helpers}
        return range_trip_overrides(func, spec, helpers)

    # ------------------------------------------------------------------ #
    def check(self) -> CertificationReport:
        report = CertificationReport(target=self.target)
        call_graph = build_call_graph(self.program)
        recursive = call_graph.recursive_functions()

        for info in self.program.kernels:
            kernel = info.definition
            cert = KernelCertification(kernel_name=kernel.name)
            report.kernels[kernel.name] = cert

            self._check_pointers(kernel, cert)
            self._check_dynamic_allocation(kernel, cert)
            self._check_recursion(kernel, cert, call_graph, recursive)
            self._check_goto(kernel, cert)
            self._check_loops(kernel, cert)
            self._check_streams(kernel, cert)
            self._check_resources(kernel, cert)
            self._check_language_subset(kernel, cert)
            self._check_stack(kernel, cert)
            self._check_side_effects(kernel, cert)
        return report

    # ------------------------------------------------------------------ #
    # Individual rules
    # ------------------------------------------------------------------ #
    def _add(self, cert: KernelCertification, rule_id: str, message: str,
             location: Optional[SourceLocation] = None) -> None:
        rule = RULES[rule_id]
        cert.violations.append(
            Violation(rule_id=rule_id, message=message, kernel=cert.kernel_name,
                      location=location, severity=rule.severity)
        )

    def _functions_reached(self, kernel: ast.FunctionDef) -> List[ast.FunctionDef]:
        """The kernel plus every helper function it can reach."""
        result = [kernel]
        info = self.program.functions.get(kernel.name)
        pending = list(info.callees) if info else []
        seen = {kernel.name}
        while pending:
            name = pending.pop()
            if name in seen:
                continue
            seen.add(name)
            callee_info = self.program.functions.get(name)
            if callee_info is None:
                continue
            result.append(callee_info.definition)
            pending.extend(callee_info.callees)
        return result

    def _check_pointers(self, kernel: ast.FunctionDef, cert: KernelCertification) -> None:
        for func in self._functions_reached(kernel):
            for param in func.params:
                if param.is_pointer:
                    self._add(cert, "BA-001",
                              f"parameter {param.name!r} of {func.name!r} is declared "
                              "as a pointer", param.location)
            for node in func.body.walk():
                if isinstance(node, ast.UnaryOp) and node.op in ("*", "&"):
                    what = "dereference" if node.op == "*" else "address-of"
                    self._add(cert, "BA-001",
                              f"pointer {what} operator used in {func.name!r}",
                              node.location)
                if isinstance(node, ast.DeclStatement) and getattr(node, "is_pointer", False):
                    self._add(cert, "BA-001",
                              f"local variable {node.name!r} in {func.name!r} is a pointer",
                              node.location)

    def _check_dynamic_allocation(self, kernel: ast.FunctionDef,
                                  cert: KernelCertification) -> None:
        for func in self._functions_reached(kernel):
            for node in func.body.walk():
                if isinstance(node, ast.CallExpr) and node.callee in _DYNAMIC_ALLOCATION_CALLS:
                    self._add(cert, "BA-002",
                              f"call to {node.callee!r} in {func.name!r} implies dynamic "
                              "memory management inside a kernel", node.location)

    def _check_recursion(self, kernel: ast.FunctionDef, cert: KernelCertification,
                         call_graph, recursive) -> None:
        reached = {func.name for func in self._functions_reached(kernel)}
        offenders = sorted(reached & recursive)
        if offenders:
            self._add(cert, "BA-003",
                      "recursive call chain involving: " + ", ".join(offenders),
                      kernel.location)

    def _check_goto(self, kernel: ast.FunctionDef, cert: KernelCertification) -> None:
        for func in self._functions_reached(kernel):
            for node in func.body.walk():
                if isinstance(node, ast.GotoStatement):
                    self._add(cert, "BA-004", f"goto statement in {func.name!r}",
                              node.location)

    def _check_loops(self, kernel: ast.FunctionDef, cert: KernelCertification) -> None:
        bounds = self.param_bounds.get(kernel.name, {})
        total = 1
        bounded = True
        for func in self._functions_reached(kernel):
            analysis = analyze_loop_bounds(func, bounds,
                                           self._trip_overrides(func, kernel))
            for loop in analysis.unbounded:
                self._add(cert, "BA-005",
                          f"loop in {func.name!r} has no statically deducible maximum "
                          f"trip count ({loop.reason})", loop.loop.location)
            if analysis.all_bounded:
                total *= max(1, analysis.max_total_iterations or 1)
            else:
                bounded = False
        cert.max_loop_iterations = total if bounded else None

    def _check_streams(self, kernel: ast.FunctionDef, cert: KernelCertification) -> None:
        for param in kernel.params:
            if param.kind is ParamKind.OUT_STREAM and param.gather_rank > 0:
                self._add(cert, "BA-006",
                          f"output parameter {param.name!r} uses scatter (indexed "
                          "output) which cannot be bounded statically on OpenGL ES 2",
                          param.location)

    def _check_resources(self, kernel: ast.FunctionDef, cert: KernelCertification) -> None:
        bounds = self.param_bounds.get(kernel.name, {})
        loop_analysis = analyze_loop_bounds(kernel, bounds,
                                            self._trip_overrides(kernel,
                                                                 kernel))
        resources = estimate_resources(kernel, loop_analysis)
        cert.resource_summary = resources
        problems = resources.fits(self.target)
        for problem in problems:
            if "output" in problem:
                self._add(cert, "BA-007", problem, kernel.location)
            elif "input" in problem or "texture units" in problem:
                self._add(cert, "BA-008", problem, kernel.location)
            else:
                self._add(cert, "BA-009", problem, kernel.location)

    def _check_language_subset(self, kernel: ast.FunctionDef,
                               cert: KernelCertification) -> None:
        for func in self._functions_reached(kernel):
            for node in func.body.walk():
                if isinstance(node, ast.DoWhileStatement):
                    # Reported by BA-005 as unbounded; also a subset issue.
                    self._add(cert, "BA-010",
                              f"do/while loop in {func.name!r} is outside the Brook "
                              "Auto subset", node.location)
            for param in func.params:
                if param.type.kind is ScalarKind.VOID:
                    self._add(cert, "BA-010",
                              f"void-typed parameter {param.name!r}", param.location)

    def _check_stack(self, kernel: ast.FunctionDef, cert: KernelCertification) -> None:
        report = estimate_stack_depth(self.program, kernel.name)
        cert.max_stack_bytes = report.max_stack_bytes
        if report.max_stack_bytes is None:
            self._add(cert, "BA-011",
                      "worst-case stack depth cannot be bounded (recursion present)",
                      kernel.location)

    def _check_side_effects(self, kernel: ast.FunctionDef,
                            cert: KernelCertification) -> None:
        writable = {p.name for p in kernel.params
                    if p.kind in (ParamKind.OUT_STREAM, ParamKind.REDUCE)}
        readable_only = {p.name for p in kernel.params
                         if p.kind in (ParamKind.STREAM, ParamKind.GATHER,
                                       ParamKind.ITERATOR, ParamKind.SCALAR)}
        for node in kernel.body.walk():
            if isinstance(node, ast.Assignment):
                target = node.target
                while isinstance(target, (ast.MemberExpr, ast.IndexExpr)):
                    target = target.base
                if isinstance(target, ast.Identifier) and target.name in readable_only:
                    self._add(cert, "BA-012",
                              f"kernel writes to read-only parameter {target.name!r}; "
                              "only out/reduce parameters may be written",
                              node.location)


def check_program(
    program: AnalyzedProgram,
    target: Optional[TargetLimits] = None,
    param_bounds: Optional[Dict[str, Dict[str, float]]] = None,
    strict: bool = False,
    range_specs: Optional[Dict[str, dict]] = None,
) -> CertificationReport:
    """Run the Brook Auto certification checker.

    Args:
        program: Analyzed translation unit.
        target: Target hardware limits (defaults to minimal OpenGL ES 2.0).
        param_bounds: Per-kernel declared maxima for scalar parameters.
        strict: When True, raise :class:`CertificationError` on any
            error-severity violation instead of returning the report.
        range_specs: Per-kernel range specs feeding interval-analysis
            trip counts into the loop-bound rule (BA-005).
    """
    report = CertificationChecker(program, target, param_bounds,
                                  range_specs).check()
    if strict:
        report.raise_if_non_compliant()
    return report
