"""Built-in function catalogue of the Brook kernel language.

Brook kernels use the Cg/GLSL intrinsic set for arithmetic.  The same
catalogue serves three purposes:

* the semantic analyzer uses it to type-check calls,
* the code generators map each entry to its GLSL ES 1.0 / C spelling,
* the execution engine maps each entry to a NumPy implementation, and
* the performance model charges each entry a floating-point operation
  cost (used to estimate kernel arithmetic intensity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import BrookTypeError
from .types import FLOAT, BrookType, ScalarKind, common_type

__all__ = ["BuiltinFunction", "BUILTINS", "lookup_builtin"]


@dataclass(frozen=True)
class BuiltinFunction:
    """Description of one intrinsic function.

    Attributes:
        name: Brook-side spelling.
        arity: Number of arguments (fixed).
        kind: ``"componentwise"``, ``"reduction"`` (vector -> scalar) or
            ``"special"`` (custom result typing handled in ``result_type``).
        glsl_name: Spelling in GLSL ES 1.0 (``None`` when identical).
        c_name: Spelling in C99 ``math.h`` terms (``None`` when identical).
        flop_cost: Estimated floating point operations charged per call by
            the performance model (transcendental functions cost more than
            an add/mul on both the in-order ARM core and the VideoCore IV
            shader ALUs).
    """

    name: str
    arity: int
    kind: str = "componentwise"
    glsl_name: Optional[str] = None
    c_name: Optional[str] = None
    flop_cost: int = 1

    def result_type(self, arg_types: List[BrookType]) -> BrookType:
        """Compute the call's result type or raise :class:`BrookTypeError`."""
        if len(arg_types) != self.arity:
            raise BrookTypeError(
                f"{self.name}() expects {self.arity} argument(s), got {len(arg_types)}"
            )
        if self.kind == "componentwise":
            result = arg_types[0]
            for other in arg_types[1:]:
                merged = common_type(result, other)
                if merged is None:
                    raise BrookTypeError(
                        f"incompatible argument types for {self.name}(): "
                        f"{result} and {other}"
                    )
                result = merged
            # Math intrinsics always work in floating point.
            if result.kind is not ScalarKind.FLOAT:
                result = BrookType(ScalarKind.FLOAT, result.width)
            return result
        if self.kind == "reduction":
            return FLOAT
        if self.kind == "special":
            return self._special_result(arg_types)
        raise AssertionError(f"unknown builtin kind {self.kind}")

    def _special_result(self, arg_types: List[BrookType]) -> BrookType:
        if self.name == "cross":
            return BrookType(ScalarKind.FLOAT, 3)
        if self.name == "normalize":
            return BrookType(ScalarKind.FLOAT, arg_types[0].width)
        if self.name in ("any", "all"):
            return BrookType(ScalarKind.BOOL, 1)
        raise AssertionError(f"no special typing rule for {self.name}")


def _componentwise(name: str, arity: int, flop_cost: int = 1, glsl: str = None,
                   c_name: str = None) -> BuiltinFunction:
    return BuiltinFunction(
        name=name, arity=arity, kind="componentwise", flop_cost=flop_cost,
        glsl_name=glsl, c_name=c_name,
    )


#: The intrinsic catalogue.  Costs approximate the relative latency of the
#: operation on a scalar in-order FPU; they only need to be *relatively*
#: consistent because the performance model calibrates absolute throughput
#: separately per platform.
BUILTINS: Dict[str, BuiltinFunction] = {
    builtin.name: builtin
    for builtin in [
        # One-argument componentwise math.
        _componentwise("sqrt", 1, flop_cost=4),
        _componentwise("rsqrt", 1, flop_cost=4, glsl="inversesqrt"),
        _componentwise("exp", 1, flop_cost=8),
        _componentwise("exp2", 1, flop_cost=6),
        _componentwise("log", 1, flop_cost=8),
        _componentwise("log2", 1, flop_cost=6),
        _componentwise("sin", 1, flop_cost=8),
        _componentwise("cos", 1, flop_cost=8),
        _componentwise("tan", 1, flop_cost=10),
        _componentwise("asin", 1, flop_cost=10),
        _componentwise("acos", 1, flop_cost=10),
        _componentwise("atan", 1, flop_cost=10),
        _componentwise("floor", 1, flop_cost=1),
        _componentwise("ceil", 1, flop_cost=1),
        _componentwise("round", 1, flop_cost=1),
        _componentwise("frac", 1, flop_cost=1, glsl="fract", c_name="brook_frac"),
        _componentwise("abs", 1, flop_cost=1, c_name="fabsf"),
        _componentwise("sign", 1, flop_cost=1),
        _componentwise("saturate", 1, flop_cost=1, glsl="brook_saturate"),
        # Two-argument componentwise math.
        _componentwise("pow", 2, flop_cost=10, c_name="powf"),
        _componentwise("fmod", 2, flop_cost=4, glsl="mod", c_name="fmodf"),
        _componentwise("min", 2, flop_cost=1, c_name="fminf"),
        _componentwise("max", 2, flop_cost=1, c_name="fmaxf"),
        _componentwise("atan2", 2, flop_cost=12, glsl="atan", c_name="atan2f"),
        _componentwise("step", 2, flop_cost=1),
        # Three-argument componentwise math.
        _componentwise("clamp", 3, flop_cost=2),
        _componentwise("lerp", 3, flop_cost=3, glsl="mix"),
        _componentwise("mix", 3, flop_cost=3),
        _componentwise("smoothstep", 3, flop_cost=6),
        _componentwise("mad", 3, flop_cost=1),
        # Vector reductions and geometry.
        BuiltinFunction("dot", 2, kind="reduction", flop_cost=7),
        BuiltinFunction("length", 1, kind="reduction", flop_cost=8),
        BuiltinFunction("distance", 2, kind="reduction", flop_cost=10),
        BuiltinFunction("cross", 2, kind="special", flop_cost=9),
        BuiltinFunction("normalize", 1, kind="special", flop_cost=10),
        BuiltinFunction("any", 1, kind="special", flop_cost=1),
        BuiltinFunction("all", 1, kind="special", flop_cost=1),
    ]
}


def lookup_builtin(name: str) -> Optional[BuiltinFunction]:
    """Return the builtin description for ``name`` or ``None``."""
    return BUILTINS.get(name)
