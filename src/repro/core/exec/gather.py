"""Gather-array access abstractions for kernel execution.

A gather parameter (``float a[]`` / ``float a[][]``) is a random-access
read-only array.  How an access behaves depends on the backend:

* the CPU backend indexes host memory directly and treats an
  out-of-bounds index as a hard error (this is the behaviour that makes
  CUDA/OpenCL kernels crash drivers, section 2 of the paper);
* the GPU backends go through the texture unit, where the OpenGL ES 2
  sampler clamps the coordinate to the edge of the texture, so an
  out-of-bounds access can never raise an exception or crash the system
  (section 4 of the paper - the availability argument of Brook Auto).

The evaluator only sees the small :class:`GatherSource` interface; each
backend supplies the implementation with the semantics it models.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from ...errors import GatherBoundsError

__all__ = ["GatherSource", "NumpyGatherSource", "ClampingGatherSource"]


class GatherSource:
    """Random-access view of a gather array used during kernel execution."""

    #: Logical (rows, cols) extent of the array; cols is the fastest axis.
    shape: Tuple[int, int]

    def fetch(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Fetch elements at integer (row, col) positions.

        Both index arrays have the same shape; the result has that shape
        (plus a trailing component axis for vector element types).
        """
        raise NotImplementedError

    def dense(self) -> Optional[np.ndarray]:
        """Full 2-d array exactly as in-bounds integer fetches see it.

        The vectorized execution path uses this to serve gathers whose
        indices are proved in-bounds with padded array slices instead of
        per-element fancy indexing.  Sources whose fetch semantics cannot
        be reproduced that way (value transforms, remote tiles) return
        ``None`` and keep the generic ``fetch`` path.
        """
        return None

    def add_fetches(self, count: int) -> None:
        """Account ``count`` element fetches served outside :meth:`fetch`.

        Keeps the statistics truthful when the vectorized path reads the
        array through :meth:`dense` slices rather than ``fetch``.
        """
        raise NotImplementedError

    @property
    def fetch_count(self) -> int:
        """Number of element fetches performed so far (for statistics)."""
        raise NotImplementedError


class NumpyGatherSource(GatherSource):
    """Direct host-memory gather used by the CPU backend.

    Out-of-bounds indices raise :class:`~repro.errors.GatherBoundsError`
    (a :class:`~repro.errors.StreamError` and
    :class:`~repro.errors.KernelLaunchError`), which models the
    unprotected behaviour of CPU (and CUDA/OpenCL) code.
    """

    def __init__(self, data: np.ndarray):
        array = np.asarray(data)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        self._data = array
        self.shape = (array.shape[0], array.shape[1])
        self._fetches = 0

    def fetch(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        rows = np.asarray(np.floor(rows), dtype=np.int64)
        cols = np.asarray(np.floor(cols), dtype=np.int64)
        height, width = self.shape
        if rows.size and (rows.min() < 0 or rows.max() >= height
                          or cols.min() < 0 or cols.max() >= width):
            raise GatherBoundsError(
                "gather access out of bounds on the CPU backend: "
                f"rows in [{rows.min()}, {rows.max()}], cols in "
                f"[{cols.min()}, {cols.max()}] for array of shape {self.shape}"
            )
        self._fetches += int(rows.size)
        return self._data[rows, cols]

    def dense(self) -> Optional[np.ndarray]:
        return self._data

    def add_fetches(self, count: int) -> None:
        self._fetches += int(count)

    @property
    def fetch_count(self) -> int:
        return self._fetches


class ClampingGatherSource(GatherSource):
    """Texture-unit style gather: coordinates are clamped to the edge.

    ``transform`` optionally post-processes fetched values (the GL ES 2
    backend uses it to model the RGBA8 encode/decode round-trip).
    """

    def __init__(self, data: np.ndarray,
                 transform: Optional[Callable[[np.ndarray], np.ndarray]] = None):
        array = np.asarray(data)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        self._data = array
        self.shape = (array.shape[0], array.shape[1])
        self._transform = transform
        self._fetches = 0

    def fetch(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        height, width = self.shape
        rows = np.clip(np.asarray(np.floor(rows), dtype=np.int64), 0, height - 1)
        cols = np.clip(np.asarray(np.floor(cols), dtype=np.int64), 0, width - 1)
        self._fetches += int(rows.size)
        values = self._data[rows, cols]
        if self._transform is not None:
            values = self._transform(values)
        return values

    def dense(self) -> Optional[np.ndarray]:
        # A value transform must run per fetch; the slice path cannot
        # model it, so transformed sources keep the generic path.
        return self._data if self._transform is None else None

    def add_fetches(self, count: int) -> None:
        self._fetches += int(count)

    @property
    def fetch_count(self) -> int:
        return self._fetches
