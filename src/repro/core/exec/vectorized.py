"""Whole-array vectorized execution of brookvec-approved kernels.

The PR-2 fast path (:mod:`repro.core.exec.compiled`) removed the AST
dispatch cost for *straight-line* kernels but kept two per-launch
expenses: gathers run through per-element fancy indexing (a random
access per lane, the dominant cost of stencil kernels) and the
``indexof`` positions are materialised for every launch.  Divergent
kernels got nothing at all.

This module compiles every kernel that brookvec
(:mod:`repro.core.analysis.vectorize`) marks BV-300 or BV-301 into a
whole-array NumPy program:

* straight-line bodies become a flat closure list, with gathers whose
  indices are affine in ``indexof`` and clamped to the array edge served
  by **padded-array slices** - one contiguous strided read instead of a
  million random fetches - and the index columns built lazily only when
  the kernel actually reads them;
* divergent bodies (the BV-301 subset) run through a small region tree
  whose ``if``/loop drivers replay the masked interpreter's algorithm
  verbatim - same mask algebra, same ``np.where`` lane merges, same
  error messages - so results stay bit-identical, while every region's
  flop count is a compile-time constant multiplied by the live-lane
  popcount.

Legality is *not* re-derived here: the caller gates compilation on the
brookvec verdict, whose speculation obligations (masked division,
gather bounds, dead-lane overflow) were discharged against the PR-8
interval engine.  Evaluating a masked region on all lanes is exactly
what the masked interpreter itself does, so a proved obligation
guarantees the whole-array program cannot trap or diverge from it.

``build_vector_path`` keeps verdict and executable consistent: if a
vectorizable kernel uses a construct this backend cannot compile, the
report is downgraded to BV-302 and the kernel keeps the interpreter.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from ...errors import KernelLaunchError, RuntimeBrookError
from .. import ast_nodes as ast
from ..types import ParamKind, ScalarKind, swizzle_indices
from ..analysis.vectorize import (
    VERDICT_FALLBACK,
    VectorizationReport,
    analyze_kernel_vectorization,
)
from .compiled import _Compiler, _Unsupported, is_straight_line
from .evaluator import (
    KernelExecutionStats,
    _Frame,
    _is_int_dtype,
    _LoopRecord,
    _merge_masked,
    as_bool_array,
    materialize,
)
from .gather import GatherSource

__all__ = [
    "VectorizedKernelProgram",
    "build_vector_path",
    "compile_vector_path",
]

_MAX_SIMT_STEPS = 1_000_000
#: Above this extent a float32 ``indexof`` coordinate loses integer
#: exactness, so the slice/fancy-index equivalence argument breaks.
_MAX_EXACT_EXTENT = 1 << 24


# --------------------------------------------------------------------------- #
# Per-launch context
# --------------------------------------------------------------------------- #
class _VCtx:
    """Per-launch execution context shared by every compiled closure.

    Extends the fast path's context with the current activity mask
    (``None`` while execution is un-diverged - the common case that the
    store closures exploit to skip the ``np.where`` merge), a lazily
    built ``indexof`` (per column, so a kernel reading only ``idx.x``
    never pays for the stack), and the padded gather arrays of the
    slice plan.
    """

    __slots__ = ("size", "gathers", "stats", "layout", "pads", "mask",
                 "explicit_index", "_index", "_index_x", "_index_y", "_full")

    def __init__(self, size: int, gathers: Dict[str, GatherSource],
                 stats: KernelExecutionStats,
                 index: Optional[np.ndarray] = None,
                 layout: Optional[Tuple[int, int]] = None):
        self.size = size
        self.gathers = gathers
        self.stats = stats
        self.layout = layout
        self.pads: Dict[str, Tuple[np.ndarray, int]] = {}
        self.mask: Optional[np.ndarray] = None
        self.explicit_index = index is not None
        self._index = None if index is None \
            else np.asarray(index, dtype=np.float32)
        self._index_x: Optional[np.ndarray] = None
        self._index_y: Optional[np.ndarray] = None
        self._full: Optional[np.ndarray] = None

    # The columns reproduce StreamShape.element_positions bitwise:
    # x is the column (fastest axis), y the row, both int-range values
    # converted to float32.
    @property
    def index_x(self) -> np.ndarray:
        if self._index_x is None:
            if self._index is not None:
                self._index_x = self._index[:, 0]
            elif self.layout is not None:
                rows, cols = self.layout
                self._index_x = np.tile(
                    np.arange(cols), rows).astype(np.float32)
            else:
                self._index_x = np.arange(self.size, dtype=np.float32)
        return self._index_x

    @property
    def index_y(self) -> np.ndarray:
        if self._index_y is None:
            if self._index is not None:
                self._index_y = self._index[:, 1]
            elif self.layout is not None:
                rows, cols = self.layout
                self._index_y = np.repeat(
                    np.arange(rows), cols).astype(np.float32)
            else:
                self._index_y = np.zeros(self.size, dtype=np.float32)
        return self._index_y

    @property
    def index(self) -> np.ndarray:
        if self._index is None:
            self._index = np.stack([self.index_x, self.index_y], axis=1)
        return self._index

    @property
    def full_mask(self) -> np.ndarray:
        """Cached all-true mask; read-only (merges only)."""
        if self._full is None:
            self._full = np.ones(self.size, dtype=bool)
        return self._full

    def ones(self) -> np.ndarray:
        """A fresh, writable all-true mask."""
        return np.ones(self.size, dtype=bool)


def _popcount(ctx: _VCtx, mask: Optional[np.ndarray]) -> int:
    return ctx.size if mask is None else int(mask.sum())


# --------------------------------------------------------------------------- #
# Region tree
# --------------------------------------------------------------------------- #
def _run_nodes(nodes: List, env: Dict[str, np.ndarray], ctx: _VCtx,
               mask: Optional[np.ndarray], frame: _Frame
               ) -> Optional[np.ndarray]:
    """Execute a node list; returns the fall-through mask (None = full)."""
    current = mask
    for node in nodes:
        if current is not None and not current.any():
            return current
        current = node.exec(env, ctx, current, frame)
    return current


class _Seq:
    """A maximal run of straight-line statements under one mask."""

    __slots__ = ("steps", "cost")

    def __init__(self, steps: List[Callable], cost: int):
        self.steps = steps
        self.cost = cost

    def exec(self, env, ctx, mask, frame):
        ctx.mask = mask
        if self.cost:
            ctx.stats.flops += self.cost * _popcount(ctx, mask)
        for step in self.steps:
            step(env, ctx)
        return mask


class _IfNode:
    __slots__ = ("cond_fn", "cond_cost", "then_nodes", "else_nodes")

    def __init__(self, cond_fn, cond_cost, then_nodes, else_nodes):
        self.cond_fn = cond_fn
        self.cond_cost = cond_cost
        self.then_nodes = then_nodes
        self.else_nodes = else_nodes

    def exec(self, env, ctx, mask, frame):
        ctx.mask = mask
        ctx.stats.flops += self.cond_cost * _popcount(ctx, mask)
        raw = np.asarray(self.cond_fn(env, ctx))
        if raw.ndim == 0:
            # Uniform condition: the interpreter's broadcast mask algebra
            # degenerates to taking one branch with the mask unchanged
            # (and never counts a divergent branch).
            taken = bool(raw) if raw.dtype == np.bool_ else bool(raw != 0)
            if taken:
                return _run_nodes(self.then_nodes, env, ctx, mask, frame)
            if self.else_nodes is not None:
                return _run_nodes(self.else_nodes, env, ctx, mask, frame)
            return mask
        cond = as_bool_array(raw, ctx.size)
        base = mask if mask is not None else ctx.full_mask
        then_mask = base & cond
        else_mask = base & ~cond
        if then_mask.any() and else_mask.any():
            ctx.stats.divergent_branches += 1
        after_then = then_mask
        if then_mask.any():
            after_then = _run_nodes(self.then_nodes, env, ctx, then_mask, frame)
        after_else = else_mask
        if self.else_nodes is not None and else_mask.any():
            after_else = _run_nodes(self.else_nodes, env, ctx, else_mask, frame)
        return after_then | after_else


class _LoopNode:
    """Replays KernelEvaluator._run_loop verbatim over compiled closures."""

    __slots__ = ("kernel_name", "init_nodes", "cond_fn", "cond_cost",
                 "body_nodes", "update_fn", "update_cost", "check_before")

    def __init__(self, kernel_name, init_nodes, cond_fn, cond_cost,
                 body_nodes, update_fn, update_cost, check_before):
        self.kernel_name = kernel_name
        self.init_nodes = init_nodes
        self.cond_fn = cond_fn
        self.cond_cost = cond_cost
        self.body_nodes = body_nodes
        self.update_fn = update_fn
        self.update_cost = update_cost
        self.check_before = check_before

    def exec(self, env, ctx, mask, frame):
        if self.init_nodes is not None:
            _run_nodes(self.init_nodes, env, ctx, mask, frame)
        stats = ctx.stats
        record = _LoopRecord(ctx.size)
        frame.loops.append(record)
        base = mask if mask is not None else ctx.ones()
        entered = base.copy()
        iter_mask = base.copy()
        steps = 0
        try:
            while True:
                if self.check_before or steps > 0:
                    if self.cond_fn is not None:
                        ctx.mask = iter_mask
                        stats.flops += self.cond_cost * int(iter_mask.sum())
                        cond = as_bool_array(self.cond_fn(env, ctx), ctx.size)
                        iter_mask = iter_mask & cond
                if not iter_mask.any():
                    break
                steps += 1
                stats.simt_loop_steps += 1
                if steps > _MAX_SIMT_STEPS:
                    raise RuntimeBrookError(
                        f"kernel {self.kernel_name!r} exceeded "
                        f"{_MAX_SIMT_STEPS} loop steps; the loop is unbounded "
                        "or the bound is too large for simulation"
                    )
                record.continued[:] = False
                fall = _run_nodes(self.body_nodes, env, ctx, iter_mask, frame)
                alive = fall | (record.continued & iter_mask)
                alive = alive & ~record.broke & ~frame.returned
                if self.update_fn is not None and alive.any():
                    ctx.mask = alive
                    stats.flops += self.update_cost * int(alive.sum())
                    self.update_fn(env, ctx)
                iter_mask = alive
                if not self.check_before and self.cond_fn is not None:
                    ctx.mask = iter_mask
                    stats.flops += self.cond_cost * int(iter_mask.sum())
                    cond = as_bool_array(self.cond_fn(env, ctx), ctx.size)
                    iter_mask = iter_mask & cond
        finally:
            frame.loops.pop()
        return entered & ~frame.returned


class _ReturnNode:
    __slots__ = ("value_fn", "cost")

    def __init__(self, value_fn, cost):
        self.value_fn = value_fn
        self.cost = cost

    def exec(self, env, ctx, mask, frame):
        ctx.mask = mask
        base = mask if mask is not None else ctx.full_mask
        if self.value_fn is not None:
            ctx.stats.flops += self.cost * _popcount(ctx, mask)
            value = self.value_fn(env, ctx)
            if frame.return_value is None:
                arr = np.asarray(value)
                frame.return_value = (
                    np.zeros(ctx.size, dtype=np.float32) if arr.ndim <= 1
                    else np.zeros((ctx.size, arr.shape[-1]), dtype=np.float32))
            frame.return_value = _merge_masked(frame.return_value, value, base)
        frame.returned = frame.returned | base
        return np.zeros(ctx.size, dtype=bool)


class _BreakNode:
    __slots__ = ()

    def exec(self, env, ctx, mask, frame):
        if not frame.loops:
            raise RuntimeBrookError("break outside of a loop")
        frame.loops[-1].broke |= mask if mask is not None else ctx.full_mask
        return np.zeros(ctx.size, dtype=bool)


class _ContinueNode:
    __slots__ = ()

    def exec(self, env, ctx, mask, frame):
        if not frame.loops:
            raise RuntimeBrookError("continue outside of a loop")
        frame.loops[-1].continued |= mask if mask is not None else ctx.full_mask
        return np.zeros(ctx.size, dtype=bool)


# --------------------------------------------------------------------------- #
# Slice-gather planning
# --------------------------------------------------------------------------- #
class _Affine:
    """``indexof`` column plus integer offset, optionally edge-clamped."""

    __slots__ = ("axis", "offset", "lo", "hi_fn")

    def __init__(self, axis: str, offset: int = 0,
                 lo: Optional[float] = None, hi_fn=None):
        self.axis = axis
        self.offset = offset
        self.lo = lo
        self.hi_fn = hi_fn


class _SlicePlan:
    """One gather site proved servable by a padded-array slice.

    Validity that depends only on the kernel text (clamp presence vs
    offset sign, clamp-to-zero constants) is checked at compile time;
    everything that depends on the launch (layout matches the array
    shape, the upper clamp equals ``extent - 1``) is re-checked per
    launch by :meth:`VectorizedKernelProgram._validate_slices`.
    """

    __slots__ = ("name", "dy", "dx", "row_hi_fn", "col_hi_fn")

    def __init__(self, name: str, dy: int, dx: int, row_hi_fn, col_hi_fn):
        self.name = name
        self.dy = dy
        self.dx = dx
        self.row_hi_fn = row_hi_fn
        self.col_hi_fn = col_hi_fn


def _literal_value(expr: ast.Expression) -> Optional[float]:
    if isinstance(expr, ast.NumberLiteral):
        return float(expr.value)
    return None


# --------------------------------------------------------------------------- #
# Compiler
# --------------------------------------------------------------------------- #
class _VCompiler(_Compiler):
    """Extends the fast-path expression compiler with mask-aware stores,
    fully general helper calls, lazy ``indexof`` columns and (in slice
    mode) padded-slice gathers."""

    def __init__(self, kernel: ast.FunctionDef,
                 helpers: Dict[str, ast.FunctionDef],
                 slice_mode: bool = False):
        super().__init__(helpers)
        self.kernel = kernel
        self.slice_mode = slice_mode
        self.slice_plans: List[_SlicePlan] = []
        self._affine: Dict[str, _Affine] = {}
        #: Locals bound to ``indexof(...)`` (``float2 idx = indexof(o)``),
        #: so ``idx.x`` resolves to an affine index column.
        self._index_locals: Set[str] = set()
        #: Names each compiled fast-mode statement actually reads at
        #: runtime (slice-served index locals excluded) - feeds the
        #: dead-decl sweep.
        self._stmt_reads: Optional[Set[str]] = None
        #: Width-1 scalar params: provably 0-d at runtime, so a stencil
        #: weight multiplying a 2-d slice broadcasts like the 1-d path.
        self._uniform_scalars: Set[str] = {
            param.name for param in kernel.params
            if param.kind is ParamKind.SCALAR and param.type.width == 1
        }
        #: Locals declared ``float`` (width 1) in the fast body - the only
        #: accumulators the stencil fuser may bypass the store path for
        #: (no int truncation, value shape () or (n,)).
        self._float_locals: Set[str] = set()

    # -- statement/region compilation ---------------------------------- #
    def compile_nodes(self, body: ast.Statement, defined: Set[str]) -> List:
        nodes: List = []
        steps: List[Callable] = []
        cost = 0

        def flush():
            nonlocal steps, cost
            if steps or cost:
                nodes.append(_Seq(steps, cost))
                steps, cost = [], 0

        for stmt in self._flatten(body):
            if isinstance(stmt, ast.DeclStatement):
                step, step_cost = self._compile_decl(stmt, defined)
                steps.append(step)
                cost += step_cost
            elif isinstance(stmt, ast.ExprStatement):
                fn, step_cost = self.compile_expr(stmt.expr, defined)
                def step(env, ctx, _fn=fn):
                    _fn(env, ctx)
                steps.append(step)
                cost += step_cost
            elif isinstance(stmt, ast.IfStatement):
                flush()
                cond_fn, cond_cost = self.compile_expr(stmt.cond, defined)
                then_nodes = self.compile_nodes(stmt.then_branch, defined)
                else_nodes = None
                if stmt.else_branch is not None:
                    else_nodes = self.compile_nodes(stmt.else_branch, defined)
                nodes.append(_IfNode(cond_fn, cond_cost, then_nodes, else_nodes))
            elif isinstance(stmt, ast.ForStatement):
                flush()
                init_nodes = None
                if stmt.init is not None:
                    init_nodes = self.compile_nodes(stmt.init, defined)
                nodes.append(self._compile_loop(
                    stmt.cond, stmt.body, stmt.update, True, init_nodes,
                    defined))
            elif isinstance(stmt, ast.WhileStatement):
                flush()
                nodes.append(self._compile_loop(
                    stmt.cond, stmt.body, None, True, None, defined))
            elif isinstance(stmt, ast.DoWhileStatement):
                flush()
                nodes.append(self._compile_loop(
                    stmt.cond, stmt.body, None, False, None, defined))
            elif isinstance(stmt, ast.ReturnStatement):
                flush()
                if stmt.value is not None:
                    value_fn, value_cost = self.compile_expr(stmt.value, defined)
                else:
                    value_fn, value_cost = None, 0
                nodes.append(_ReturnNode(value_fn, value_cost))
            elif isinstance(stmt, ast.BreakStatement):
                flush()
                nodes.append(_BreakNode())
            elif isinstance(stmt, ast.ContinueStatement):
                flush()
                nodes.append(_ContinueNode())
            else:
                raise _Unsupported(type(stmt).__name__)
        flush()
        return nodes

    def _compile_loop(self, cond_expr, body, update_expr, check_before,
                      init_nodes, defined: Set[str]) -> _LoopNode:
        if cond_expr is not None:
            cond_fn, cond_cost = self.compile_expr(cond_expr, defined)
        else:
            cond_fn, cond_cost = None, 0
        body_nodes = self.compile_nodes(body, defined)
        if update_expr is not None:
            update_fn, update_cost = self.compile_expr(update_expr, defined)
        else:
            update_fn, update_cost = None, 0
        return _LoopNode(self.kernel.name, init_nodes, cond_fn, cond_cost,
                         body_nodes, update_fn, update_cost, check_before)

    # -- fast (straight-line) compilation ------------------------------ #
    def compile_fast_body(self, body: ast.Statement, defined: Set[str]
                          ) -> Tuple[List[Callable], List[Optional[str]],
                                     List[Set[str]], List[bool], int,
                                     List[Optional[tuple]]]:
        """Compile a straight-line body for the slice-enabled fast list.

        Returns ``(steps, decl_names, read_sets, removable, flops,
        stencils)`` aligned per statement; ``decl_names[i]`` is the
        declared name for removable declarations (None otherwise),
        ``read_sets[i]`` the names the compiled statement reads at
        runtime, and ``stencils[i]`` the fusion record for statements of
        the shape ``acc = acc + w * gather`` whose gather is slice-served
        (see :func:`_make_stencil_step`).
        """
        steps: List[Callable] = []
        decl_names: List[Optional[str]] = []
        read_sets: List[Set[str]] = []
        removable: List[bool] = []
        stencils: List[Optional[tuple]] = []
        flops = 0
        for stmt in self._flatten(body):
            self._stmt_reads = set()
            stencil: Optional[tuple] = None
            if isinstance(stmt, ast.DeclStatement):
                # Track clamped-affine index locals before compiling, so
                # later gathers can resolve them to slice plans; any
                # reassignment kills the binding.
                affine = None
                if self.slice_mode and stmt.decl_type.width == 1 \
                        and stmt.init is not None:
                    affine = self._extract_affine(stmt.init, defined)
                step, cost = self._compile_decl(stmt, defined)
                self._index_locals.discard(stmt.name)
                self._uniform_scalars.discard(stmt.name)
                if stmt.decl_type.width == 1 \
                        and stmt.decl_type.kind is ScalarKind.FLOAT:
                    self._float_locals.add(stmt.name)
                else:
                    self._float_locals.discard(stmt.name)
                if affine is not None:
                    self._affine[stmt.name] = affine
                else:
                    self._affine.pop(stmt.name, None)
                if self.slice_mode \
                        and isinstance(stmt.init, ast.IndexOfExpr):
                    self._index_locals.add(stmt.name)
                pure = stmt.init is None or not any(
                    isinstance(node, (ast.Assignment, ast.IndexExpr))
                    for node in stmt.init.walk())
                decl_names.append(stmt.name)
                removable.append(pure)
            elif isinstance(stmt, ast.ExprStatement):
                for node in stmt.expr.walk():
                    if not isinstance(node, ast.Assignment):
                        continue
                    target = node.target
                    # A member store (``p.y = ...``) mutates the base
                    # vector, so the indexof-derived binding dies too.
                    if isinstance(target, ast.MemberExpr) \
                            and isinstance(target.base, ast.Identifier):
                        target = target.base
                    if isinstance(target, ast.Identifier):
                        self._affine.pop(target.name, None)
                        self._index_locals.discard(target.name)
                        self._uniform_scalars.discard(target.name)
                match = self._match_stencil(stmt.expr) if self.slice_mode \
                    else None
                plans_before = len(self.slice_plans)
                fn, cost = self.compile_expr(stmt.expr, defined)
                if match is not None \
                        and len(self.slice_plans) == plans_before + 1:
                    acc_name, weight_expr, gather_left = match
                    weight_fn = None
                    if weight_expr is not None:
                        weight_fn, _ = self.compile_expr(weight_expr, defined)
                    stencil = (acc_name, weight_fn, gather_left,
                               self.slice_plans[-1])
                def step(env, ctx, _fn=fn):
                    _fn(env, ctx)
                decl_names.append(None)
                removable.append(False)
            else:
                raise _Unsupported(type(stmt).__name__)
            steps.append(step)
            flops += cost
            read_sets.append(self._stmt_reads)
            stencils.append(stencil)
            self._stmt_reads = None
        return steps, decl_names, read_sets, removable, flops, stencils

    def _match_stencil(self, expr: ast.Expression
                       ) -> Optional[Tuple[str, Optional[ast.Expression],
                                           bool]]:
        """Match ``acc = acc + [w *] gather`` for the stencil fuser.

        ``acc`` must be a width-1 float local (so bypassing the scalar
        store path loses no int truncation and the value shape is () or
        (n,)), and the weight a literal or width-1 scalar param (provably
        0-d, so multiplying the 2-d slice broadcasts like the 1-d path).
        Returns ``(acc_name, weight_expr, gather_on_left)`` -
        ``gather_on_left`` preserves the operand order of the multiply so
        NaN-payload propagation stays bit-identical.
        """
        if not isinstance(expr, ast.Assignment) or expr.op != "=":
            return None
        if not isinstance(expr.target, ast.Identifier):
            return None
        acc = expr.target.name
        if acc not in self._float_locals:
            return None
        value = expr.value
        if not isinstance(value, ast.BinaryOp) or value.op != "+":
            return None
        if not isinstance(value.left, ast.Identifier) \
                or value.left.name != acc:
            return None
        term = value.right
        if isinstance(term, ast.IndexExpr):
            return acc, None, True
        if isinstance(term, ast.BinaryOp) and term.op == "*":
            if isinstance(term.right, ast.IndexExpr) \
                    and self._is_uniform_weight(term.left):
                return acc, term.left, False
            if isinstance(term.left, ast.IndexExpr) \
                    and self._is_uniform_weight(term.right):
                return acc, term.right, True
        return None

    def _is_uniform_weight(self, expr: ast.Expression) -> bool:
        if isinstance(expr, ast.NumberLiteral):
            return True
        return isinstance(expr, ast.Identifier) \
            and expr.name in self._uniform_scalars

    def _extract_affine(self, expr: ast.Expression, defined: Set[str]
                        ) -> Optional[_Affine]:
        if isinstance(expr, ast.MemberExpr) and expr.member in ("x", "y"):
            if isinstance(expr.base, ast.IndexOfExpr):
                return _Affine(expr.member)
            if isinstance(expr.base, ast.Identifier) \
                    and expr.base.name in self._index_locals:
                return _Affine(expr.member)
        if isinstance(expr, ast.Identifier):
            return self._affine.get(expr.name)
        if isinstance(expr, ast.BinaryOp) and expr.op in ("+", "-"):
            left_lit = _literal_value(expr.left)
            right_lit = _literal_value(expr.right)
            if right_lit is not None and right_lit == int(right_lit):
                base = self._extract_affine(expr.left, defined)
                if base is not None and base.lo is None and base.hi_fn is None:
                    delta = int(right_lit) if expr.op == "+" else -int(right_lit)
                    return _Affine(base.axis, base.offset + delta)
            if expr.op == "+" and left_lit is not None \
                    and left_lit == int(left_lit):
                base = self._extract_affine(expr.right, defined)
                if base is not None and base.lo is None and base.hi_fn is None:
                    return _Affine(base.axis, base.offset + int(left_lit))
            return None
        if isinstance(expr, ast.CallExpr) and expr.callee in ("max", "min") \
                and len(expr.args) == 2:
            for affine_arg, other in ((expr.args[0], expr.args[1]),
                                      (expr.args[1], expr.args[0])):
                base = self._extract_affine(affine_arg, defined)
                if base is None:
                    continue
                if expr.callee == "max":
                    # Only clamp-to-zero matches the edge-padding clip.
                    if base.lo is not None or _literal_value(other) != 0.0:
                        return None
                    return _Affine(base.axis, base.offset, 0.0, base.hi_fn)
                if base.hi_fn is not None:
                    return None
                if any(isinstance(node, (ast.Assignment, ast.IndexExpr))
                       for node in other.walk()):
                    return None
                try:
                    hi_fn, _ = self.compile_expr(other, defined)
                except _Unsupported:
                    return None
                return _Affine(base.axis, base.offset, base.lo, hi_fn)
            return None
        return None

    # -- expression overrides ------------------------------------------ #
    def compile_expr(self, expr: ast.Expression, defined: Set[str]):
        if isinstance(expr, ast.Identifier) and self._stmt_reads is not None:
            self._stmt_reads.add(expr.name)
        return super().compile_expr(expr, defined)

    def _compile_member(self, expr: ast.MemberExpr, defined: Set[str]):
        # Lazy indexof columns: idx.x / idx.y never build the stacked
        # (n, 2) positions array.
        if isinstance(expr.base, ast.IndexOfExpr):
            if expr.member == "x":
                return (lambda env, ctx: ctx.index_x), 0
            if expr.member == "y":
                return (lambda env, ctx: ctx.index_y), 0
        return super()._compile_member(expr, defined)

    def _compile_store(self, target: ast.Expression, defined: Set[str]):
        if isinstance(target, ast.Identifier):
            name = target.name
            defined.add(name)

            def store(env, ctx, value):
                old = env.get(name)
                if old is None:
                    env[name] = materialize(value, ctx.size)
                    return
                value_arr = np.asarray(value)
                if _is_int_dtype(old) and not _is_int_dtype(value_arr):
                    value_arr = np.asarray(np.trunc(value_arr), dtype=np.int32)
                mask = ctx.mask
                old_arr = np.asarray(old)
                if mask is None:
                    # Full-mask merge elision: np.where(all-true, new, old)
                    # is ``new`` promoted against ``old``'s dtype.  A 0-d
                    # ``old`` materializes to an (n,) broadcast of the same
                    # dtype, so the promotion rule is identical.
                    if value_arr.ndim == 1 \
                            and value_arr.shape[0] == ctx.size \
                            and (old_arr.ndim == 0
                                 or (old_arr.ndim == 1
                                     and old_arr.shape[0] == ctx.size)):
                        result_type = np.result_type(value_arr.dtype,
                                                     old_arr.dtype)
                        env[name] = value_arr \
                            if value_arr.dtype == result_type \
                            else value_arr.astype(result_type)
                        return
                    mask = ctx.full_mask
                env[name] = _merge_masked(materialize(old, ctx.size),
                                          materialize(value_arr, ctx.size),
                                          mask)

            return store
        if isinstance(target, ast.MemberExpr) \
                and isinstance(target.base, ast.Identifier):
            name = target.base.name
            indices = swizzle_indices(target.member)
            member = target.member

            def store(env, ctx, value):
                mask = ctx.mask if ctx.mask is not None else ctx.full_mask
                old = env.get(name)
                if old is None:
                    raise RuntimeBrookError(
                        f"assignment to undeclared vector {name!r}")
                old = materialize(old, ctx.size)
                if old.ndim != 2:
                    raise RuntimeBrookError(
                        f"cannot assign component .{member} of non-vector "
                        f"{name!r}")
                new = old.copy()
                value_arr = materialize(value, ctx.size)
                for position, component in enumerate(indices):
                    if value_arr.ndim == 2:
                        component_value = value_arr[:, position]
                    else:
                        component_value = value_arr
                    new[:, component] = np.where(mask, component_value,
                                                 old[:, component])
                env[name] = new

            return store
        raise _Unsupported("unsupported assignment target")

    def _compile_helper(self, name: str):
        # Fully general helpers: the body compiles to the same region
        # tree and runs with a fresh frame under a copy of the caller's
        # mask, exactly like KernelEvaluator._call_helper.  Flops are
        # counted dynamically by the helper's own region nodes, so the
        # static call-site cost is zero.
        if name in self._helper_cache:
            return self._helper_cache[name]
        helper = self.helpers.get(name)
        if helper is None:
            raise _Unsupported(f"call to unknown function {name!r}")
        if name in self._compiling:
            raise _Unsupported(f"recursive helper {name!r}")
        self._compiling.add(name)
        saved_reads = self._stmt_reads
        self._stmt_reads = None
        try:
            param_names = [param.name for param in helper.params]
            nodes = self.compile_nodes(helper.body, set(param_names))
        finally:
            self._compiling.discard(name)
            self._stmt_reads = saved_reads

        def call(args, ctx):
            env = {pname: materialize(value, ctx.size).copy()
                   for pname, value in zip(param_names, args)}
            frame = _Frame(ctx.size)
            caller_mask = ctx.mask
            mask = caller_mask.copy() if caller_mask is not None \
                else np.ones(ctx.size, dtype=bool)
            _run_nodes(nodes, env, ctx, mask, frame)
            ctx.mask = caller_mask
            if frame.return_value is None:
                return np.float32(0.0)
            return frame.return_value

        self._helper_cache[name] = (call, 0)
        return call, 0

    def _compile_gather(self, expr: ast.IndexExpr, defined: Set[str]):
        if self.slice_mode:
            plan_closure = self._try_slice_gather(expr, defined)
            if plan_closure is not None:
                return plan_closure
        return super()._compile_gather(expr, defined)

    def _try_slice_gather(self, expr: ast.IndexExpr, defined: Set[str]):
        index_exprs: List[ast.Expression] = []
        node: ast.Expression = expr
        while isinstance(node, ast.IndexExpr):
            index_exprs.append(node.index)
            node = node.base
        index_exprs.reverse()
        if len(index_exprs) != 2:
            return None
        if not isinstance(node, ast.Identifier) or node.name in defined:
            return None
        row_aff = self._extract_affine(index_exprs[0], defined)
        col_aff = self._extract_affine(index_exprs[1], defined)
        if row_aff is None or col_aff is None:
            return None
        if row_aff.axis != "y" or col_aff.axis != "x":
            return None
        for aff in (row_aff, col_aff):
            if aff.offset < 0 and aff.lo != 0.0:
                return None
            if aff.offset > 0 and aff.hi_fn is None:
                return None
            if aff.lo is not None and aff.lo != 0.0:
                return None
        # Keep the static flop cost identical to the generic path, which
        # compiles (and charges) the index expressions.  The cost-only
        # recompile must not register runtime reads, or the slice-served
        # index locals would never become dead.
        saved_reads = self._stmt_reads
        self._stmt_reads = None
        try:
            cost = 0
            for index_expr in index_exprs:
                _, index_cost = self.compile_expr(index_expr, defined)
                cost += index_cost
        finally:
            self._stmt_reads = saved_reads
        name = node.name
        dy, dx = row_aff.offset, col_aff.offset
        plan = _SlicePlan(name, dy, dx, row_aff.hi_fn, col_aff.hi_fn)
        self.slice_plans.append(plan)

        def gather(env, ctx):
            padded, pad = ctx.pads[name]
            rows, cols = ctx.layout
            view = padded[pad + dy: pad + dy + rows,
                          pad + dx: pad + dx + cols]
            ctx.gathers[name].add_fetches(ctx.size)
            return view.reshape(-1)

        return gather, cost


def _make_stencil_step(acc_name: str, terms: List[tuple]) -> Callable:
    """Fuse a run of ``acc = acc + w * gather`` statements into one step.

    The interpreter evaluates the run as the left-associated chain
    ``((acc + w1*g1) + w2*g2) + ...`` over (n,) arrays; this step keeps
    the same operand order and op sequence over the 2-d padded slices and
    flattens once at the end.  Elementwise IEEE ops commute with reshape,
    so the result is bit-identical while skipping one strided-view copy
    per gather.  The in-place accumulate is guarded to identical
    dtype/shape, where ``+=`` and ``+`` produce the same bits.
    """

    def step(env, ctx):
        rows, cols = ctx.layout
        total = None
        for weight_fn, gather_left, plan in terms:
            padded, pad = ctx.pads[plan.name]
            view = padded[pad + plan.dy: pad + plan.dy + rows,
                          pad + plan.dx: pad + plan.dx + cols]
            ctx.gathers[plan.name].add_fetches(ctx.size)
            if weight_fn is None:
                term = view
            else:
                weight = weight_fn(env, ctx)
                term = view * weight if gather_left else weight * view
            if total is None:
                old = np.asarray(env[acc_name])
                base = old if old.ndim == 0 else old.reshape(rows, cols)
                total = base + term
            elif total.dtype == term.dtype and total.shape == term.shape:
                total += term
            else:
                total = total + term
        env[acc_name] = total.reshape(-1)

    return step


def _fuse_stencil_runs(steps_with_meta: List[Tuple[Callable, Optional[tuple]]]
                       ) -> List[Callable]:
    """Replace runs of >= 2 consecutive same-accumulator stencil
    statements with one fused step; everything else passes through."""
    out: List[Callable] = []
    run_acc: Optional[str] = None
    run_terms: List[tuple] = []
    run_steps: List[Callable] = []

    def flush():
        nonlocal run_acc, run_terms, run_steps
        if len(run_terms) >= 2:
            out.append(_make_stencil_step(run_acc, run_terms))
        else:
            out.extend(run_steps)
        run_acc, run_terms, run_steps = None, [], []

    for step, stencil in steps_with_meta:
        if stencil is None:
            flush()
            out.append(step)
            continue
        acc_name, weight_fn, gather_left, plan = stencil
        if run_terms and acc_name != run_acc:
            flush()
        run_acc = acc_name
        run_terms.append((weight_fn, gather_left, plan))
        run_steps.append(step)
    flush()
    return out


# --------------------------------------------------------------------------- #
# Program
# --------------------------------------------------------------------------- #
class VectorizedKernelProgram:
    """A brookvec-approved kernel compiled to a whole-array program.

    Immutable after construction and free of per-launch state, so one
    program is shared by every launch of its kernel (the compiler caches
    it on the :class:`~repro.core.compiler.CompiledKernel`).

    ``run`` mirrors :meth:`KernelEvaluator.run` - same argument
    validation, same error messages, bit-identical outputs and
    statistics - and returns ``(outputs, stats)``.
    """

    def __init__(self, kernel: ast.FunctionDef, nodes: List,
                 flops_per_element: int,
                 fast_steps: Optional[List[Callable]] = None,
                 slice_plans: Optional[List[_SlicePlan]] = None):
        self.kernel = kernel
        self._nodes = nodes
        #: Static per-element flop cost of the top-level straight-line
        #: regions (the planner prices the vector path with this).
        self.flops_per_element = flops_per_element
        self._fast_steps = fast_steps
        self._slice_plans = slice_plans or []

    @property
    def uses_slices(self) -> bool:
        return bool(self._slice_plans)

    # ------------------------------------------------------------------ #
    def run(
        self,
        element_count: int,
        stream_inputs: Optional[Dict[str, np.ndarray]] = None,
        scalar_args: Optional[Dict[str, float]] = None,
        gathers: Optional[Dict[str, GatherSource]] = None,
        index: Optional[np.ndarray] = None,
        layout: Optional[Tuple[int, int]] = None,
    ) -> Tuple[Dict[str, np.ndarray], KernelExecutionStats]:
        """Execute the vector program over ``element_count`` threads."""
        stream_inputs = dict(stream_inputs or {})
        scalar_args = dict(scalar_args or {})
        gathers = dict(gathers or {})
        size = int(element_count)
        stats = KernelExecutionStats(elements=size)
        ctx = _VCtx(size, gathers, stats, index=index, layout=layout)

        env: Dict[str, np.ndarray] = {}
        input_ids = set()
        kernel = self.kernel
        for param in kernel.params:
            if param.kind in (ParamKind.STREAM, ParamKind.ITERATOR):
                if param.name not in stream_inputs:
                    raise KernelLaunchError(
                        f"missing input stream {param.name!r} for kernel "
                        f"{kernel.name!r}"
                    )
                value = np.asarray(stream_inputs[param.name], dtype=np.float32)
                env[param.name] = value
                input_ids.add(id(value))
                stats.stream_reads += size
            elif param.kind is ParamKind.SCALAR:
                if param.name not in scalar_args:
                    raise KernelLaunchError(
                        f"missing scalar argument {param.name!r} for kernel "
                        f"{kernel.name!r}"
                    )
                dtype = np.int32 if param.type.kind is ScalarKind.INT \
                    else np.float32
                env[param.name] = np.asarray(scalar_args[param.name],
                                             dtype=dtype)
            elif param.kind is ParamKind.GATHER:
                if param.name not in gathers:
                    raise KernelLaunchError(
                        f"missing gather array {param.name!r} for kernel "
                        f"{kernel.name!r}"
                    )
            elif param.kind is ParamKind.OUT_STREAM:
                width = param.type.width
                shape = (size,) if width == 1 else (size, width)
                env[param.name] = np.zeros(shape, dtype=np.float32)

        fetch_before = {name: source.fetch_count
                        for name, source in gathers.items()}
        frame = _Frame(size)
        with np.errstate(all="ignore"):
            if self._fast_steps is not None \
                    and self._validate_slices(env, ctx):
                stats.flops += self.flops_per_element * size
                for step in self._fast_steps:
                    step(env, ctx)
            else:
                _run_nodes(self._nodes, env, ctx, None, frame)
        stats.gather_fetches = sum(
            source.fetch_count - fetch_before[name]
            for name, source in gathers.items()
        )

        outputs: Dict[str, np.ndarray] = {}
        for param in kernel.params:
            if param.kind is ParamKind.OUT_STREAM:
                value = env[param.name]
                # The interpreter's np.where merges always produce fresh
                # arrays; the elided stores may hand back an input array
                # or a slice view, so restore freshness here.
                if id(value) in input_ids or value.base is not None \
                        or not value.flags.owndata:
                    value = value.copy()
                outputs[param.name] = value
                stats.stream_writes += size
        return outputs, stats

    # ------------------------------------------------------------------ #
    def _validate_slices(self, env: Dict[str, np.ndarray], ctx: _VCtx) -> bool:
        """Per-launch validity of the slice plans (see _SlicePlan)."""
        if not self._slice_plans:
            return True
        if ctx.layout is None or ctx.explicit_index:
            return False
        rows, cols = ctx.layout
        if rows * cols != ctx.size:
            return False
        if rows > _MAX_EXACT_EXTENT or cols > _MAX_EXACT_EXTENT:
            return False
        try:
            dense_by_name: Dict[str, np.ndarray] = {}
            pad_by_name: Dict[str, int] = {}
            for plan in self._slice_plans:
                source = ctx.gathers.get(plan.name)
                if source is None:
                    return False
                if plan.name not in dense_by_name:
                    dense_method = getattr(source, "dense", None)
                    dense = dense_method() if dense_method is not None else None
                    if dense is None or dense.ndim != 2 \
                            or dense.shape != (rows, cols):
                        return False
                    dense_by_name[plan.name] = dense
                    pad_by_name[plan.name] = 0
                for hi_fn, extent in ((plan.row_hi_fn, rows),
                                      (plan.col_hi_fn, cols)):
                    if hi_fn is None:
                        continue
                    bound = np.asarray(hi_fn(env, ctx))
                    if bound.ndim != 0 or float(bound) != float(extent - 1):
                        return False
                pad_by_name[plan.name] = max(pad_by_name[plan.name],
                                             abs(plan.dy), abs(plan.dx))
        except Exception:
            return False
        for name, dense in dense_by_name.items():
            pad = pad_by_name[name]
            padded = np.pad(dense, pad, mode="edge") if pad else dense
            ctx.pads[name] = (padded, pad)
        return True


# --------------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------------- #
def _compile_program(kernel: ast.FunctionDef,
                     helpers: Dict[str, ast.FunctionDef]
                     ) -> VectorizedKernelProgram:
    defined = {
        param.name for param in kernel.params
        if param.kind is not ParamKind.GATHER
    }
    compiler = _VCompiler(kernel, helpers)
    nodes = compiler.compile_nodes(kernel.body, set(defined))
    flops = sum(node.cost for node in nodes if isinstance(node, _Seq))

    fast_steps = None
    slice_plans: List[_SlicePlan] = []
    if is_straight_line(kernel.body):
        fast_compiler = _VCompiler(kernel, helpers, slice_mode=True)
        try:
            steps, decl_names, read_sets, removable, fast_flops, stencils = \
                fast_compiler.compile_fast_body(kernel.body, set(defined))
        except _Unsupported:
            steps = None
        if steps is not None:
            keep = _sweep_dead_decls(decl_names, read_sets, removable)
            fast_steps = _fuse_stencil_runs(
                [(step, stencil) for step, stencil, live
                 in zip(steps, stencils, keep) if live])
            slice_plans = fast_compiler.slice_plans
            # Both compilations walk the same statements, so the static
            # cost must agree; fall back to the node list if not.
            if fast_flops != flops:
                fast_steps, slice_plans = None, []
    return VectorizedKernelProgram(kernel, nodes, flops,
                                   fast_steps=fast_steps,
                                   slice_plans=slice_plans)


def _sweep_dead_decls(decl_names: List[Optional[str]],
                      read_sets: List[Set[str]],
                      removable: List[bool]) -> List[bool]:
    """Iteratively drop pure declarations nothing later reads.

    The flop cost of a dropped declaration is still charged (the
    interpreter would have computed it); only the runtime work goes.
    """
    count = len(decl_names)
    keep = [True] * count
    changed = True
    while changed:
        changed = False
        # suffix_reads[i]: names read at runtime by kept statements > i.
        suffix_reads: List[Set[str]] = [set()] * count
        trailing: Set[str] = set()
        for index in range(count - 1, -1, -1):
            suffix_reads[index] = trailing
            if keep[index]:
                trailing = trailing | read_sets[index]
        for index, name in enumerate(decl_names):
            if not keep[index] or not removable[index] or name is None:
                continue
            if name not in suffix_reads[index]:
                keep[index] = False
                changed = True
    return keep


def build_vector_path(
    kernel: ast.FunctionDef,
    helpers: Optional[Dict[str, ast.FunctionDef]] = None,
    spec: Optional[dict] = None,
    param_bounds: Optional[Dict[str, float]] = None,
    report: Optional[VectorizationReport] = None,
) -> Tuple[Optional[VectorizedKernelProgram], VectorizationReport]:
    """Compile ``kernel``'s vector path, gated by its brookvec verdict.

    Returns ``(program, report)``.  The pair is always consistent: a
    BV-300/BV-301 report comes with a runnable program, and a kernel the
    analysis approves but this backend cannot compile has its report
    downgraded to BV-302 naming the construct, so diagnostics never
    promise a path that will not actually run.
    """
    helpers = dict(helpers or {})
    if report is None:
        report = analyze_kernel_vectorization(kernel, helpers, spec=spec,
                                              param_bounds=param_bounds)
    if not report.vectorizable:
        return None, report
    if kernel.is_reduction or not kernel.is_kernel:
        return None, replace(
            report, verdict=VERDICT_FALLBACK,
            reason="reduction kernels run through the multipass reducer")
    try:
        program = _compile_program(kernel, helpers)
    except _Unsupported as exc:
        return None, replace(
            report, verdict=VERDICT_FALLBACK,
            reason=f"construct unsupported by the vector backend: {exc}")
    return program, report


def compile_vector_path(
    kernel: ast.FunctionDef,
    helpers: Optional[Dict[str, ast.FunctionDef]] = None,
    spec: Optional[dict] = None,
    param_bounds: Optional[Dict[str, float]] = None,
) -> Optional[VectorizedKernelProgram]:
    """Convenience wrapper over :func:`build_vector_path`."""
    return build_vector_path(kernel, helpers, spec=spec,
                             param_bounds=param_bounds)[0]
