"""Kernel execution engine.

Brook kernels are executed by a vectorized, SIMT-style evaluator: every
element of the output domain is a "thread", all threads execute the same
statement at the same time over NumPy arrays, and divergent control flow
is handled with per-thread activity masks exactly like a GPU handles
branch divergence.  The same evaluator powers the CPU backend (operating
on raw stream data) and the simulated GPU backends (operating on values
fetched from simulated textures, including the RGBA8 round-trip of the
OpenGL ES 2 path).

Divergence-free (straight-line) kernel bodies additionally get an
ahead-of-time *compiled fast path* (:mod:`repro.core.exec.compiled`):
the AST is compiled once into a closure program over the same NumPy
primitives, bypassing per-launch tree interpretation while remaining
bit-identical to the interpreter.  Divergent kernels keep using the
masked interpreter.
"""

from .compiled import CompiledKernelProgram, compile_fast_path, is_straight_line
from .evaluator import KernelEvaluator, KernelExecutionStats
from .gather import ClampingGatherSource, GatherSource, NumpyGatherSource

__all__ = [
    "KernelEvaluator",
    "KernelExecutionStats",
    "CompiledKernelProgram",
    "compile_fast_path",
    "is_straight_line",
    "GatherSource",
    "NumpyGatherSource",
    "ClampingGatherSource",
]
