"""Kernel execution engine.

Brook kernels are executed by a vectorized, SIMT-style evaluator: every
element of the output domain is a "thread", all threads execute the same
statement at the same time over NumPy arrays, and divergent control flow
is handled with per-thread activity masks exactly like a GPU handles
branch divergence.  The same evaluator powers the CPU backend (operating
on raw stream data) and the simulated GPU backends (operating on values
fetched from simulated textures, including the RGBA8 round-trip of the
OpenGL ES 2 path).
"""

from .evaluator import KernelEvaluator, KernelExecutionStats
from .gather import ClampingGatherSource, GatherSource, NumpyGatherSource

__all__ = [
    "KernelEvaluator",
    "KernelExecutionStats",
    "GatherSource",
    "NumpyGatherSource",
    "ClampingGatherSource",
]
