"""Vectorized SIMT-style evaluator for Brook kernels.

Every element of the launch domain is a logical thread.  The evaluator
executes the kernel body once, statement by statement, with each value
held as a NumPy array carrying one entry per thread; divergent control
flow (``if``, data-dependent loop exits, ``break``/``continue``/
``return``) is handled with per-thread activity masks, the same way a
real GPU handles warp divergence.

The evaluator is backend-agnostic: the backend decides what the stream
inputs contain (raw host data for the CPU backend, values that went
through the RGBA8 texture round-trip for the OpenGL ES 2 backend) and
how gather arrays are fetched (see :mod:`repro.core.exec.gather`).

Besides producing the outputs, the evaluator counts the work it performs
(floating-point operations, gather fetches, SIMT loop steps).  These
counts feed the analytic performance model and are cross-checked against
the closed-form workload models of the benchmark applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...errors import KernelLaunchError, RuntimeBrookError
from .. import ast_nodes as ast
from ..builtins import lookup_builtin
from ..types import ParamKind, ScalarKind, swizzle_indices
from .gather import GatherSource

__all__ = [
    "KernelExecutionStats",
    "KernelEvaluator",
    "align_pair",
    "as_bool_array",
    "where_select",
    "materialize",
    "apply_builtin",
]


@dataclass
class KernelExecutionStats:
    """Work counters accumulated while executing one kernel launch."""

    elements: int = 0
    flops: int = 0
    gather_fetches: int = 0
    stream_reads: int = 0
    stream_writes: int = 0
    simt_loop_steps: int = 0
    divergent_branches: int = 0

    def merge(self, other: "KernelExecutionStats") -> None:
        self.elements += other.elements
        self.flops += other.flops
        self.gather_fetches += other.gather_fetches
        self.stream_reads += other.stream_reads
        self.stream_writes += other.stream_writes
        self.simt_loop_steps += other.simt_loop_steps
        self.divergent_branches += other.divergent_branches


class _LoopRecord:
    """Break/continue bookkeeping for the innermost loop."""

    def __init__(self, size: int):
        self.broke = np.zeros(size, dtype=bool)
        self.continued = np.zeros(size, dtype=bool)


class _Frame:
    """One function invocation (the kernel itself or an inlined helper)."""

    def __init__(self, size: int):
        self.env: Dict[str, np.ndarray] = {}
        self.returned = np.zeros(size, dtype=bool)
        self.return_value: Optional[np.ndarray] = None
        self.loops: List[_LoopRecord] = []


def _is_int_dtype(array: np.ndarray) -> bool:
    return np.issubdtype(np.asarray(array).dtype, np.integer)


def _merge_masked(old: np.ndarray, new: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Select ``new`` where ``mask`` is set, ``old`` elsewhere (mask is 1-D)."""
    old_arr = np.asarray(old)
    new_arr = np.asarray(new)
    if old_arr.ndim == 2 or new_arr.ndim == 2:
        width = max(old_arr.shape[-1] if old_arr.ndim == 2 else 1,
                    new_arr.shape[-1] if new_arr.ndim == 2 else 1)
        if old_arr.ndim == 1:
            old_arr = old_arr[:, None] if old_arr.shape[0] == mask.shape[0] \
                else np.broadcast_to(old_arr, (mask.shape[0], width))
        if new_arr.ndim == 1 and new_arr.shape[:1] == mask.shape:
            new_arr = new_arr[:, None]
        return np.where(mask[:, None], new_arr, old_arr)
    return np.where(mask, new_arr, old_arr)


def materialize(value, size: int) -> np.ndarray:
    """Expand a uniform value to one entry per thread (``size`` threads)."""
    array = np.asarray(value)
    if array.ndim == 0:
        return np.broadcast_to(array, (size,)).copy()
    if array.ndim == 1 and array.shape[0] != size and array.shape[0] in (2, 3, 4):
        return np.broadcast_to(array, (size, array.shape[0])).copy()
    return array


def as_bool_array(value, size: int) -> np.ndarray:
    """Per-thread truth value of ``value`` (vectors are all-components-true)."""
    array = np.asarray(value)
    if array.dtype == bool:
        result = array
    else:
        result = array != 0
    if result.ndim == 0:
        result = np.broadcast_to(result, (size,))
    if result.ndim == 2:
        result = result.all(axis=1)
    return result


def align_pair(left: np.ndarray, right: np.ndarray):
    """Broadcast a scalar/per-thread pair against a vector operand."""
    left = np.asarray(left)
    right = np.asarray(right)
    if left.ndim == 2 and right.ndim == 1 and right.shape[0] == left.shape[0]:
        right = right[:, None]
    elif right.ndim == 2 and left.ndim == 1 and left.shape[0] == right.shape[0]:
        left = left[:, None]
    return left, right


def where_select(cond: np.ndarray, then, other):
    """Elementwise select with the evaluator's vector broadcasting rules."""
    then_arr, other_arr = align_pair(np.asarray(then), np.asarray(other))
    if then_arr.ndim == 2 or other_arr.ndim == 2:
        cond = cond[:, None] if cond.ndim == 1 else cond
    return np.where(cond, then_arr, other_arr)


def apply_builtin(name: str, args: List, size: int):
    """Apply a Brook builtin to evaluated arguments.

    Shared by the tree-walking interpreter and the compiled fast path so
    both produce bit-identical results for every builtin.
    """
    arrays = [np.asarray(a, dtype=np.float32) if not np.issubdtype(
        np.asarray(a).dtype, np.bool_) else np.asarray(a) for a in args]
    if name in ("min",):
        return np.minimum(*align_pair(arrays[0], arrays[1]))
    if name in ("max",):
        return np.maximum(*align_pair(arrays[0], arrays[1]))
    if name == "clamp":
        low, _ = align_pair(arrays[1], arrays[0])
        high, _ = align_pair(arrays[2], arrays[0])
        return np.minimum(np.maximum(arrays[0], low), high)
    if name in ("lerp", "mix"):
        a, b = align_pair(arrays[0], arrays[1])
        t, _ = align_pair(arrays[2], a)
        return a + t * (b - a)
    if name == "mad":
        a, b = align_pair(arrays[0], arrays[1])
        c, _ = align_pair(arrays[2], a)
        return a * b + c
    if name == "saturate":
        return np.clip(arrays[0], 0.0, 1.0)
    if name == "step":
        edge, x = align_pair(arrays[0], arrays[1])
        return (x >= edge).astype(np.float32)
    if name == "smoothstep":
        edge0, edge1 = align_pair(arrays[0], arrays[1])
        x, _ = align_pair(arrays[2], edge0)
        t = np.clip((x - edge0) / np.where(edge1 == edge0, 1.0, edge1 - edge0),
                    0.0, 1.0)
        return t * t * (3.0 - 2.0 * t)
    if name == "dot":
        a, b = align_pair(arrays[0], arrays[1])
        return np.sum(a * b, axis=-1)
    if name == "length":
        return np.sqrt(np.sum(arrays[0] * arrays[0], axis=-1))
    if name == "distance":
        a, b = align_pair(arrays[0], arrays[1])
        diff = a - b
        return np.sqrt(np.sum(diff * diff, axis=-1))
    if name == "normalize":
        norm = np.sqrt(np.sum(arrays[0] * arrays[0], axis=-1, keepdims=True))
        return arrays[0] / np.where(norm == 0, 1.0, norm)
    if name == "cross":
        return np.cross(arrays[0], arrays[1])
    if name == "frac":
        return arrays[0] - np.floor(arrays[0])
    if name == "rsqrt":
        return 1.0 / np.sqrt(arrays[0])
    if name == "sign":
        return np.sign(arrays[0])
    if name == "atan2":
        return np.arctan2(*align_pair(arrays[0], arrays[1]))
    if name == "pow":
        return np.power(*align_pair(arrays[0], arrays[1]))
    if name == "fmod":
        return np.fmod(*align_pair(arrays[0], arrays[1]))
    if name in ("any", "all"):
        reducer = np.any if name == "any" else np.all
        return reducer(as_bool_array(arrays[0], size), axis=-1)
    simple = {
        "sqrt": np.sqrt, "exp": np.exp, "exp2": np.exp2, "log": np.log,
        "log2": np.log2, "sin": np.sin, "cos": np.cos, "tan": np.tan,
        "asin": np.arcsin, "acos": np.arccos, "atan": np.arctan,
        "floor": np.floor, "ceil": np.ceil, "round": np.round, "abs": np.abs,
    }
    if name in simple:
        return simple[name](arrays[0])
    raise RuntimeBrookError(f"builtin {name!r} has no evaluator implementation")


class KernelEvaluator:
    """Executes one Brook kernel over a launch domain."""

    def __init__(
        self,
        kernel: ast.FunctionDef,
        helpers: Optional[Dict[str, ast.FunctionDef]] = None,
        max_simt_steps: int = 1_000_000,
    ):
        """
        Args:
            kernel: Kernel definition (semantic analysis recommended but the
                evaluator only relies on the syntactic structure).
            helpers: Non-kernel helper functions callable from the kernel,
                keyed by name.
            max_simt_steps: Safety bound on loop iterations executed by the
                evaluator; guards the simulation against unbounded loops
                (which Brook Auto rejects statically anyway).
        """
        self.kernel = kernel
        self.helpers = dict(helpers or {})
        self.max_simt_steps = max_simt_steps
        self.stats = KernelExecutionStats()
        self._size = 0
        self._index: Optional[np.ndarray] = None
        self._gathers: Dict[str, GatherSource] = {}

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        element_count: int,
        stream_inputs: Optional[Dict[str, np.ndarray]] = None,
        scalar_args: Optional[Dict[str, float]] = None,
        gathers: Optional[Dict[str, GatherSource]] = None,
        index: Optional[np.ndarray] = None,
        reduce_inputs: Optional[Dict[str, np.ndarray]] = None,
    ) -> Dict[str, np.ndarray]:
        """Execute the kernel over ``element_count`` threads.

        Args:
            element_count: Number of output elements (threads).
            stream_inputs: Per-thread values of every positional input
                stream parameter, each of shape ``(element_count,)`` or
                ``(element_count, width)``.
            scalar_args: Values of the scalar (uniform) parameters.
            gathers: :class:`GatherSource` per gather-array parameter.
            index: Optional ``(element_count, 2)`` array with the (x, y)
                position of every thread, used by ``indexof``.
            reduce_inputs: Initial accumulator values for ``reduce``
                parameters (reduction kernels only).

        Returns:
            Mapping from output parameter name (``out`` and ``reduce``)
            to the computed per-thread values.
        """
        stream_inputs = dict(stream_inputs or {})
        scalar_args = dict(scalar_args or {})
        reduce_inputs = dict(reduce_inputs or {})
        self._gathers = dict(gathers or {})
        self._size = int(element_count)
        self.stats = KernelExecutionStats(elements=self._size)
        if index is None:
            linear = np.arange(self._size, dtype=np.float32)
            index = np.stack([linear, np.zeros_like(linear)], axis=1)
        self._index = np.asarray(index, dtype=np.float32)

        frame = _Frame(self._size)
        outputs: Dict[str, np.ndarray] = {}
        for param in self.kernel.params:
            if param.kind in (ParamKind.STREAM, ParamKind.ITERATOR):
                if param.name not in stream_inputs:
                    raise KernelLaunchError(
                        f"missing input stream {param.name!r} for kernel "
                        f"{self.kernel.name!r}"
                    )
                value = np.asarray(stream_inputs[param.name], dtype=np.float32)
                frame.env[param.name] = value
                self.stats.stream_reads += self._size
            elif param.kind is ParamKind.SCALAR:
                if param.name not in scalar_args:
                    raise KernelLaunchError(
                        f"missing scalar argument {param.name!r} for kernel "
                        f"{self.kernel.name!r}"
                    )
                raw = scalar_args[param.name]
                dtype = np.int32 if param.type.kind is ScalarKind.INT else np.float32
                frame.env[param.name] = np.asarray(raw, dtype=dtype)
            elif param.kind is ParamKind.GATHER:
                if param.name not in self._gathers:
                    raise KernelLaunchError(
                        f"missing gather array {param.name!r} for kernel "
                        f"{self.kernel.name!r}"
                    )
            elif param.kind is ParamKind.OUT_STREAM:
                width = param.type.width
                shape = (self._size,) if width == 1 else (self._size, width)
                frame.env[param.name] = np.zeros(shape, dtype=np.float32)
            elif param.kind is ParamKind.REDUCE:
                if param.name not in reduce_inputs:
                    raise KernelLaunchError(
                        f"missing reduce accumulator {param.name!r} for kernel "
                        f"{self.kernel.name!r}"
                    )
                frame.env[param.name] = np.array(
                    reduce_inputs[param.name], dtype=np.float32, copy=True
                )

        mask = np.ones(self._size, dtype=bool)
        with np.errstate(all="ignore"):
            self._exec_statement(self.kernel.body, mask, frame)

        for param in self.kernel.params:
            if param.kind in (ParamKind.OUT_STREAM, ParamKind.REDUCE):
                outputs[param.name] = frame.env[param.name]
                self.stats.stream_writes += self._size
        return outputs

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def _exec_statement(self, stmt: ast.Statement, mask: np.ndarray,
                        frame: _Frame) -> np.ndarray:
        """Execute one statement; return the fall-through mask."""
        if not mask.any():
            return mask
        if isinstance(stmt, ast.Block):
            current = mask
            for child in stmt.statements:
                current = self._exec_statement(child, current, frame)
                if not current.any():
                    break
            return current
        if isinstance(stmt, ast.DeclStatement):
            if stmt.init is not None:
                value = self._eval(stmt.init, mask, frame)
            else:
                width = stmt.decl_type.width
                shape = (self._size,) if width == 1 else (self._size, width)
                dtype = np.int32 if stmt.decl_type.kind is ScalarKind.INT else np.float32
                value = np.zeros(shape, dtype=dtype)
            if stmt.decl_type.kind is ScalarKind.INT and not _is_int_dtype(value):
                value = np.asarray(np.floor(value), dtype=np.int32) \
                    if not np.issubdtype(np.asarray(value).dtype, np.bool_) \
                    else np.asarray(value, dtype=np.int32)
            frame.env[stmt.name] = np.asarray(value)
            return mask
        if isinstance(stmt, ast.ExprStatement):
            self._eval(stmt.expr, mask, frame)
            return mask
        if isinstance(stmt, ast.IfStatement):
            return self._exec_if(stmt, mask, frame)
        if isinstance(stmt, ast.ForStatement):
            return self._exec_for(stmt, mask, frame)
        if isinstance(stmt, ast.WhileStatement):
            return self._exec_while(stmt, mask, frame)
        if isinstance(stmt, ast.DoWhileStatement):
            return self._exec_do_while(stmt, mask, frame)
        if isinstance(stmt, ast.ReturnStatement):
            if stmt.value is not None:
                value = self._eval(stmt.value, mask, frame)
                if frame.return_value is None:
                    frame.return_value = np.zeros(self._size, dtype=np.float32) \
                        if np.asarray(value).ndim <= 1 else \
                        np.zeros((self._size, np.asarray(value).shape[-1]), dtype=np.float32)
                frame.return_value = _merge_masked(frame.return_value, value, mask)
            frame.returned = frame.returned | mask
            return np.zeros_like(mask)
        if isinstance(stmt, ast.BreakStatement):
            if not frame.loops:
                raise RuntimeBrookError("break outside of a loop")
            frame.loops[-1].broke |= mask
            return np.zeros_like(mask)
        if isinstance(stmt, ast.ContinueStatement):
            if not frame.loops:
                raise RuntimeBrookError("continue outside of a loop")
            frame.loops[-1].continued |= mask
            return np.zeros_like(mask)
        if isinstance(stmt, ast.GotoStatement):
            raise RuntimeBrookError("goto cannot be executed by any Brook backend")
        raise RuntimeBrookError(f"cannot execute statement {type(stmt).__name__}")

    def _exec_if(self, stmt: ast.IfStatement, mask: np.ndarray,
                 frame: _Frame) -> np.ndarray:
        cond = self._as_bool(self._eval(stmt.cond, mask, frame))
        then_mask = mask & cond
        else_mask = mask & ~cond
        if then_mask.any() and else_mask.any():
            self.stats.divergent_branches += 1
        after_then = then_mask
        if then_mask.any():
            after_then = self._exec_statement(stmt.then_branch, then_mask, frame)
        after_else = else_mask
        if stmt.else_branch is not None and else_mask.any():
            after_else = self._exec_statement(stmt.else_branch, else_mask, frame)
        return after_then | after_else

    def _run_loop(self, mask: np.ndarray, frame: _Frame, cond_expr,
                  body: ast.Statement, update_expr, check_before: bool) -> np.ndarray:
        record = _LoopRecord(self._size)
        frame.loops.append(record)
        entered = mask.copy()
        iter_mask = mask.copy()
        steps = 0
        try:
            while True:
                if check_before or steps > 0:
                    if cond_expr is not None:
                        cond = self._as_bool(self._eval(cond_expr, iter_mask, frame))
                        iter_mask = iter_mask & cond
                if not iter_mask.any():
                    break
                steps += 1
                self.stats.simt_loop_steps += 1
                if steps > self.max_simt_steps:
                    raise RuntimeBrookError(
                        f"kernel {self.kernel.name!r} exceeded {self.max_simt_steps} "
                        "loop steps; the loop is unbounded or the bound is too large "
                        "for simulation"
                    )
                record.continued[:] = False
                fall = self._exec_statement(body, iter_mask, frame)
                alive = fall | (record.continued & iter_mask)
                alive = alive & ~record.broke & ~frame.returned
                if update_expr is not None and alive.any():
                    self._eval(update_expr, alive, frame)
                iter_mask = alive
                if not check_before and cond_expr is not None:
                    cond = self._as_bool(self._eval(cond_expr, iter_mask, frame))
                    iter_mask = iter_mask & cond
        finally:
            frame.loops.pop()
        return entered & ~frame.returned

    def _exec_for(self, stmt: ast.ForStatement, mask: np.ndarray,
                  frame: _Frame) -> np.ndarray:
        if stmt.init is not None:
            self._exec_statement(stmt.init, mask, frame)
        return self._run_loop(mask, frame, stmt.cond, stmt.body, stmt.update, True)

    def _exec_while(self, stmt: ast.WhileStatement, mask: np.ndarray,
                    frame: _Frame) -> np.ndarray:
        return self._run_loop(mask, frame, stmt.cond, stmt.body, None, True)

    def _exec_do_while(self, stmt: ast.DoWhileStatement, mask: np.ndarray,
                       frame: _Frame) -> np.ndarray:
        return self._run_loop(mask, frame, stmt.cond, stmt.body, None, False)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _eval(self, expr: ast.Expression, mask: np.ndarray, frame: _Frame):
        if isinstance(expr, ast.NumberLiteral):
            if expr.is_float:
                return np.float32(expr.value)
            return np.int32(int(expr.value))
        if isinstance(expr, ast.BoolLiteral):
            return np.bool_(expr.value)
        if isinstance(expr, ast.Identifier):
            if expr.name in frame.env:
                return frame.env[expr.name]
            raise RuntimeBrookError(f"undefined name {expr.name!r} during execution")
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr, mask, frame)
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, mask, frame)
        if isinstance(expr, ast.Assignment):
            return self._eval_assignment(expr, mask, frame)
        if isinstance(expr, ast.Conditional):
            cond = self._as_bool(self._eval(expr.cond, mask, frame))
            then = self._eval(expr.then, mask, frame)
            other = self._eval(expr.otherwise, mask, frame)
            self._count_flops(mask, 1)
            return self._where(cond, then, other)
        if isinstance(expr, ast.CallExpr):
            return self._eval_call(expr, mask, frame)
        if isinstance(expr, ast.ConstructorExpr):
            return self._eval_constructor(expr, mask, frame)
        if isinstance(expr, ast.IndexExpr):
            return self._eval_gather(expr, mask, frame)
        if isinstance(expr, ast.MemberExpr):
            base = self._eval(expr.base, mask, frame)
            indices = swizzle_indices(expr.member)
            base = np.asarray(base)
            if base.ndim == 0:
                raise RuntimeBrookError(
                    f"cannot swizzle scalar value with .{expr.member}"
                )
            if base.ndim == 1 and base.shape[0] in (2, 3, 4) and base.shape[0] != self._size:
                # A uniform vector (shape (width,)).
                selected = base[list(indices)]
                return selected[0] if len(indices) == 1 else selected
            if base.ndim == 1:
                raise RuntimeBrookError(
                    f"cannot swizzle scalar per-thread value with .{expr.member}"
                )
            if len(indices) == 1:
                return base[:, indices[0]]
            return base[:, list(indices)]
        if isinstance(expr, ast.IndexOfExpr):
            return self._index
        raise RuntimeBrookError(f"cannot evaluate expression {type(expr).__name__}")

    # -- operators ------------------------------------------------------- #
    def _eval_unary(self, expr: ast.UnaryOp, mask: np.ndarray, frame: _Frame):
        value = self._eval(expr.operand, mask, frame)
        self._count_flops(mask, 1)
        if expr.op == "-":
            return -np.asarray(value)
        if expr.op == "!":
            return ~self._as_bool(value)
        if expr.op == "~":
            return ~np.asarray(value, dtype=np.int32)
        if expr.op in ("*", "&"):
            raise RuntimeBrookError(
                "pointer operators cannot be executed; Brook Auto rejects them "
                "statically (rule BA-001)"
            )
        raise RuntimeBrookError(f"unknown unary operator {expr.op!r}")

    def _eval_binary(self, expr: ast.BinaryOp, mask: np.ndarray, frame: _Frame):
        left = np.asarray(self._eval(expr.left, mask, frame))
        right = np.asarray(self._eval(expr.right, mask, frame))
        left, right = self._align(left, right)
        op = expr.op
        self._count_flops(mask, 1)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if _is_int_dtype(left) and _is_int_dtype(right):
                return np.where(right != 0, left // np.where(right == 0, 1, right), 0)
            return left / np.asarray(right, dtype=np.float32)
        if op == "%":
            if _is_int_dtype(left) and _is_int_dtype(right):
                return np.where(right != 0, left % np.where(right == 0, 1, right), 0)
            return np.fmod(left, right)
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "&&":
            return self._as_bool(left) & self._as_bool(right)
        if op == "||":
            return self._as_bool(left) | self._as_bool(right)
        raise RuntimeBrookError(f"unknown binary operator {op!r}")

    def _eval_assignment(self, expr: ast.Assignment, mask: np.ndarray, frame: _Frame):
        value = self._eval(expr.value, mask, frame)
        if expr.op != "=":
            binop = ast.BinaryOp(
                location=expr.location, op=expr.op[:-1], left=expr.target,
                right=expr.value,
            )
            value = self._eval_binary(binop, mask, frame)
        self._store(expr.target, value, mask, frame)
        return value

    def _store(self, target: ast.Expression, value, mask: np.ndarray,
               frame: _Frame) -> None:
        if isinstance(target, ast.Identifier):
            name = target.name
            old = frame.env.get(name)
            if old is None:
                frame.env[name] = self._materialize(value)
                return
            if _is_int_dtype(old) and not _is_int_dtype(np.asarray(value)):
                value = np.asarray(np.trunc(np.asarray(value)), dtype=np.int32)
            frame.env[name] = _merge_masked(self._materialize(old),
                                            self._materialize(value), mask)
            return
        if isinstance(target, ast.MemberExpr) and isinstance(target.base, ast.Identifier):
            name = target.base.name
            old = frame.env.get(name)
            if old is None:
                raise RuntimeBrookError(f"assignment to undeclared vector {name!r}")
            old = self._materialize(old)
            if old.ndim != 2:
                raise RuntimeBrookError(
                    f"cannot assign component .{target.member} of non-vector {name!r}"
                )
            new = old.copy()
            indices = swizzle_indices(target.member)
            value_arr = self._materialize(value)
            for position, component in enumerate(indices):
                if value_arr.ndim == 2:
                    component_value = value_arr[:, position]
                else:
                    component_value = value_arr
                new[:, component] = np.where(mask, component_value, old[:, component])
            frame.env[name] = new
            return
        raise RuntimeBrookError(
            "assignment target must be a variable or a component of a vector "
            "variable (scatter writes are not part of Brook Auto)"
        )

    # -- calls ------------------------------------------------------------ #
    def _eval_call(self, expr: ast.CallExpr, mask: np.ndarray, frame: _Frame):
        args = [self._eval(arg, mask, frame) for arg in expr.args]
        builtin = lookup_builtin(expr.callee)
        if builtin is not None:
            self._count_flops(mask, builtin.flop_cost)
            return self._apply_builtin(expr.callee, args)
        helper = self.helpers.get(expr.callee)
        if helper is None:
            raise RuntimeBrookError(f"call to unknown function {expr.callee!r}")
        return self._call_helper(helper, args, mask)

    def _call_helper(self, helper: ast.FunctionDef, args: Sequence, mask: np.ndarray):
        frame = _Frame(self._size)
        for param, value in zip(helper.params, args):
            frame.env[param.name] = self._materialize(value).copy()
        with np.errstate(all="ignore"):
            self._exec_statement(helper.body, mask.copy(), frame)
        if frame.return_value is None:
            return np.float32(0.0)
        return frame.return_value

    def _apply_builtin(self, name: str, args: List):
        return apply_builtin(name, args, self._size)

    def _eval_constructor(self, expr: ast.ConstructorExpr, mask: np.ndarray,
                          frame: _Frame):
        args = [np.asarray(self._eval(arg, mask, frame)) for arg in expr.args]
        target = expr.target_type
        if target.width == 1:
            value = args[0]
            if target.kind is ScalarKind.INT:
                return np.asarray(np.trunc(value), dtype=np.int32)
            if target.kind is ScalarKind.FLOAT:
                return np.asarray(value, dtype=np.float32)
            return self._as_bool(value)
        columns: List[np.ndarray] = []
        for arg in args:
            arg = np.asarray(arg, dtype=np.float32)
            if arg.ndim == 2:
                for component in range(arg.shape[1]):
                    columns.append(arg[:, component])
            else:
                columns.append(arg)
        if len(columns) == 1:
            columns = columns * target.width
        columns = [np.broadcast_to(np.asarray(c, dtype=np.float32), (self._size,))
                   for c in columns]
        return np.stack(columns, axis=1)

    def _eval_gather(self, expr: ast.IndexExpr, mask: np.ndarray, frame: _Frame):
        indices: List[ast.Expression] = []
        node: ast.Expression = expr
        while isinstance(node, ast.IndexExpr):
            indices.append(node.index)
            node = node.base
        indices.reverse()
        if not isinstance(node, ast.Identifier) or node.name not in self._gathers:
            raise RuntimeBrookError(
                "only gather-array parameters can be indexed during execution"
            )
        source = self._gathers[node.name]
        before = source.fetch_count
        if len(indices) == 1:
            index_value = np.asarray(self._eval(indices[0], mask, frame))
            if index_value.ndim == 2 and index_value.shape[1] >= 2:
                cols = index_value[:, 0]
                rows = index_value[:, 1]
            else:
                cols = index_value
                rows = np.zeros_like(np.asarray(cols, dtype=np.float32))
        else:
            rows = np.asarray(self._eval(indices[0], mask, frame))
            cols = np.asarray(self._eval(indices[1], mask, frame))
        rows = np.broadcast_to(np.asarray(rows, dtype=np.float32), (self._size,))
        cols = np.broadcast_to(np.asarray(cols, dtype=np.float32), (self._size,))
        values = source.fetch(rows, cols)
        self.stats.gather_fetches += source.fetch_count - before
        return values

    # ------------------------------------------------------------------ #
    # Small helpers
    # ------------------------------------------------------------------ #
    def _materialize(self, value) -> np.ndarray:
        return materialize(value, self._size)

    def _as_bool(self, value) -> np.ndarray:
        return as_bool_array(value, self._size)

    @staticmethod
    def _align(left: np.ndarray, right: np.ndarray):
        return align_pair(left, right)

    def _where(self, cond: np.ndarray, then, other):
        return where_select(cond, then, other)

    def _count_flops(self, mask: np.ndarray, cost: int) -> None:
        self.stats.flops += cost * int(mask.sum())
