"""Ahead-of-time compiled evaluator fast path for straight-line kernels.

The tree-walking interpreter in :mod:`repro.core.exec.evaluator` re-walks
the kernel AST on every launch: each node pays Python ``isinstance``
dispatch, per-operation flop accounting (an ``O(n)`` mask reduction per
arithmetic op) and per-statement mask liveness checks.  For kernels whose
body is *straight-line* - no ``if``/``for``/``while``/``do``, no
``break``/``continue``/``return`` in the kernel itself - none of that
masking machinery does anything: every thread executes every statement.

This module compiles such kernels **once** into a closure program: each
statement and expression becomes a specialised Python closure over the
same NumPy primitives the interpreter uses (:func:`align_pair`,
:func:`apply_builtin`, :func:`where_select`, ``_merge_masked``), so the
compiled program is bit-identical to the interpreter while skipping AST
dispatch entirely and replacing dynamic flop counting with a static
per-element cost computed at compile time.

Helpers qualify when their own bodies are straight-line (declarations and
assignments followed by at most one ``return``); ternary conditionals
(``cond ? a : b``) are selects, not divergence, and always qualify.
Kernels that do diverge - or use any construct outside the supported
subset - simply get no fast path (:func:`compile_fast_path` returns
``None``) and keep running through the masked interpreter.

The compiled program is cached on the
:class:`~repro.core.compiler.CompiledKernel` by the compiler driver and
picked up by every backend (see :meth:`repro.backends.base.Backend._evaluate`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from ...errors import KernelLaunchError, RuntimeBrookError
from .. import ast_nodes as ast
from ..builtins import lookup_builtin
from ..types import ParamKind, ScalarKind, swizzle_indices
from .evaluator import (
    KernelExecutionStats,
    _is_int_dtype,
    _merge_masked,
    align_pair,
    apply_builtin,
    as_bool_array,
    materialize,
    where_select,
)
from .gather import GatherSource

__all__ = ["CompiledKernelProgram", "compile_fast_path", "is_straight_line"]


class _Unsupported(Exception):
    """Internal: the kernel is outside the fast-path subset."""


class _Ctx:
    """Per-launch execution context shared by every compiled closure."""

    __slots__ = ("size", "index", "gathers", "full_mask")

    def __init__(self, size: int, index: np.ndarray,
                 gathers: Dict[str, GatherSource]):
        self.size = size
        self.index = index
        self.gathers = gathers
        self.full_mask = np.ones(size, dtype=bool)


#: A compiled expression: ``fn(env, ctx) -> value``.
_ExprFn = Callable[[Dict[str, np.ndarray], _Ctx], object]
#: A compiled statement: ``fn(env, ctx) -> None``.
_StmtFn = Callable[[Dict[str, np.ndarray], _Ctx], None]

_STRAIGHT_LINE_STATEMENTS = (ast.Block, ast.DeclStatement, ast.ExprStatement)


def is_straight_line(body: ast.Statement) -> bool:
    """Whether ``body`` contains only divergence-free statements.

    This is the *statement-level* qualification test for the fast path:
    declarations, expression statements and nested blocks qualify;
    ``if``/loops/``return``/``break``/``continue``/``goto`` do not.
    (Expressions may still disqualify a kernel later, e.g. pointer
    operators, but those are rejected by certification anyway.)
    """
    return all(isinstance(node, _STRAIGHT_LINE_STATEMENTS)
               or not isinstance(node, ast.Statement)
               for node in body.walk())


class CompiledKernelProgram:
    """A kernel body compiled to a closure program.

    Instances are immutable after construction and hold no per-launch
    state, so one program is safely shared by every launch of its kernel
    (the compiler caches it on the :class:`CompiledKernel`).

    ``run`` mirrors :meth:`KernelEvaluator.run` - same argument
    validation, same error messages, bit-identical outputs - and returns
    ``(outputs, stats)`` with a statically derived
    :class:`KernelExecutionStats`.
    """

    def __init__(self, kernel: ast.FunctionDef, steps: List[_StmtFn],
                 flops_per_element: int):
        self.kernel = kernel
        self._steps = steps
        self.flops_per_element = flops_per_element

    # ------------------------------------------------------------------ #
    def run(
        self,
        element_count: int,
        stream_inputs: Optional[Dict[str, np.ndarray]] = None,
        scalar_args: Optional[Dict[str, float]] = None,
        gathers: Optional[Dict[str, GatherSource]] = None,
        index: Optional[np.ndarray] = None,
    ) -> Tuple[Dict[str, np.ndarray], KernelExecutionStats]:
        """Execute the compiled program over ``element_count`` threads."""
        stream_inputs = dict(stream_inputs or {})
        scalar_args = dict(scalar_args or {})
        gathers = dict(gathers or {})
        size = int(element_count)
        if index is None:
            linear = np.arange(size, dtype=np.float32)
            index = np.stack([linear, np.zeros_like(linear)], axis=1)
        ctx = _Ctx(size, np.asarray(index, dtype=np.float32), gathers)
        stats = KernelExecutionStats(elements=size,
                                     flops=self.flops_per_element * size)

        env: Dict[str, np.ndarray] = {}
        kernel = self.kernel
        for param in kernel.params:
            if param.kind in (ParamKind.STREAM, ParamKind.ITERATOR):
                if param.name not in stream_inputs:
                    raise KernelLaunchError(
                        f"missing input stream {param.name!r} for kernel "
                        f"{kernel.name!r}"
                    )
                env[param.name] = np.asarray(stream_inputs[param.name],
                                             dtype=np.float32)
                stats.stream_reads += size
            elif param.kind is ParamKind.SCALAR:
                if param.name not in scalar_args:
                    raise KernelLaunchError(
                        f"missing scalar argument {param.name!r} for kernel "
                        f"{kernel.name!r}"
                    )
                dtype = np.int32 if param.type.kind is ScalarKind.INT else np.float32
                env[param.name] = np.asarray(scalar_args[param.name], dtype=dtype)
            elif param.kind is ParamKind.GATHER:
                if param.name not in gathers:
                    raise KernelLaunchError(
                        f"missing gather array {param.name!r} for kernel "
                        f"{kernel.name!r}"
                    )
            elif param.kind is ParamKind.OUT_STREAM:
                width = param.type.width
                shape = (size,) if width == 1 else (size, width)
                env[param.name] = np.zeros(shape, dtype=np.float32)

        fetch_before = {name: source.fetch_count
                        for name, source in gathers.items()}
        with np.errstate(all="ignore"):
            for step in self._steps:
                step(env, ctx)
        stats.gather_fetches = sum(
            source.fetch_count - fetch_before[name]
            for name, source in gathers.items()
        )

        outputs: Dict[str, np.ndarray] = {}
        for param in kernel.params:
            if param.kind is ParamKind.OUT_STREAM:
                outputs[param.name] = env[param.name]
                stats.stream_writes += size
        return outputs, stats


# --------------------------------------------------------------------------- #
# Compilation
# --------------------------------------------------------------------------- #
class _Compiler:
    """Compiles one kernel (and its helper calls) to closures."""

    def __init__(self, helpers: Dict[str, ast.FunctionDef]):
        self.helpers = helpers
        self._helper_cache: Dict[str, Tuple[Callable, int]] = {}
        self._compiling: Set[str] = set()

    # -- statements ------------------------------------------------------ #
    def compile_body(self, body: ast.Statement, defined: Set[str]
                     ) -> Tuple[List[_StmtFn], int]:
        """Compile a straight-line body; returns (steps, flops/element)."""
        steps: List[_StmtFn] = []
        flops = 0
        for stmt in self._flatten(body):
            if isinstance(stmt, ast.DeclStatement):
                step, cost = self._compile_decl(stmt, defined)
            elif isinstance(stmt, ast.ExprStatement):
                fn, cost = self.compile_expr(stmt.expr, defined)
                def step(env, ctx, _fn=fn):
                    _fn(env, ctx)
            else:
                raise _Unsupported(type(stmt).__name__)
            steps.append(step)
            flops += cost
        return steps, flops

    @staticmethod
    def _flatten(body: ast.Statement):
        if isinstance(body, ast.Block):
            for stmt in body.statements:
                yield from _Compiler._flatten(stmt)
        else:
            yield body

    def _compile_decl(self, stmt: ast.DeclStatement, defined: Set[str]
                      ) -> Tuple[_StmtFn, int]:
        name = stmt.name
        kind = stmt.decl_type.kind
        width = stmt.decl_type.width
        if stmt.init is not None:
            init_fn, cost = self.compile_expr(stmt.init, defined)
        else:
            init_fn, cost = None, 0
        is_int_decl = kind is ScalarKind.INT
        dtype = np.int32 if is_int_decl else np.float32
        defined.add(name)

        def step(env, ctx):
            if init_fn is not None:
                value = init_fn(env, ctx)
            else:
                shape = (ctx.size,) if width == 1 else (ctx.size, width)
                value = np.zeros(shape, dtype=dtype)
            if is_int_decl and not _is_int_dtype(value):
                value = np.asarray(np.floor(value), dtype=np.int32) \
                    if not np.issubdtype(np.asarray(value).dtype, np.bool_) \
                    else np.asarray(value, dtype=np.int32)
            env[name] = np.asarray(value)

        return step, cost

    # -- expressions ----------------------------------------------------- #
    def compile_expr(self, expr: ast.Expression, defined: Set[str]
                     ) -> Tuple[_ExprFn, int]:
        if isinstance(expr, ast.NumberLiteral):
            constant = np.float32(expr.value) if expr.is_float \
                else np.int32(int(expr.value))
            return (lambda env, ctx: constant), 0
        if isinstance(expr, ast.BoolLiteral):
            constant = np.bool_(expr.value)
            return (lambda env, ctx: constant), 0
        if isinstance(expr, ast.Identifier):
            name = expr.name
            if name not in defined:
                raise _Unsupported(f"read of undefined name {name!r}")
            return (lambda env, ctx: env[name]), 0
        if isinstance(expr, ast.UnaryOp):
            return self._compile_unary(expr, defined)
        if isinstance(expr, ast.BinaryOp):
            return self._compile_binary(expr, defined)
        if isinstance(expr, ast.Assignment):
            return self._compile_assignment(expr, defined)
        if isinstance(expr, ast.Conditional):
            cond_fn, c0 = self.compile_expr(expr.cond, defined)
            then_fn, c1 = self.compile_expr(expr.then, defined)
            other_fn, c2 = self.compile_expr(expr.otherwise, defined)

            def select(env, ctx):
                cond = as_bool_array(cond_fn(env, ctx), ctx.size)
                return where_select(cond, then_fn(env, ctx), other_fn(env, ctx))

            return select, c0 + c1 + c2 + 1
        if isinstance(expr, ast.CallExpr):
            return self._compile_call(expr, defined)
        if isinstance(expr, ast.ConstructorExpr):
            return self._compile_constructor(expr, defined)
        if isinstance(expr, ast.IndexExpr):
            return self._compile_gather(expr, defined)
        if isinstance(expr, ast.MemberExpr):
            return self._compile_member(expr, defined)
        if isinstance(expr, ast.IndexOfExpr):
            return (lambda env, ctx: ctx.index), 0
        raise _Unsupported(type(expr).__name__)

    def _compile_unary(self, expr: ast.UnaryOp, defined: Set[str]):
        operand_fn, cost = self.compile_expr(expr.operand, defined)
        if expr.op == "-":
            fn = lambda env, ctx: -np.asarray(operand_fn(env, ctx))
        elif expr.op == "!":
            fn = lambda env, ctx: ~as_bool_array(operand_fn(env, ctx), ctx.size)
        elif expr.op == "~":
            fn = lambda env, ctx: ~np.asarray(operand_fn(env, ctx), dtype=np.int32)
        else:
            raise _Unsupported(f"unary operator {expr.op!r}")
        return fn, cost + 1

    _BINARY_OPS = {
        "+": lambda l, r: l + r,
        "-": lambda l, r: l - r,
        "*": lambda l, r: l * r,
        "<": lambda l, r: l < r,
        ">": lambda l, r: l > r,
        "<=": lambda l, r: l <= r,
        ">=": lambda l, r: l >= r,
        "==": lambda l, r: l == r,
        "!=": lambda l, r: l != r,
    }

    def _compile_binary(self, expr: ast.BinaryOp, defined: Set[str]):
        left_fn, c0 = self.compile_expr(expr.left, defined)
        right_fn, c1 = self.compile_expr(expr.right, defined)
        return self._binary_from_fns(expr.op, left_fn, right_fn), c0 + c1 + 1

    def _binary_from_fns(self, op: str, left_fn: _ExprFn, right_fn: _ExprFn
                         ) -> _ExprFn:
        simple = self._BINARY_OPS.get(op)
        if simple is not None:
            def fn(env, ctx):
                left, right = align_pair(np.asarray(left_fn(env, ctx)),
                                         np.asarray(right_fn(env, ctx)))
                return simple(left, right)
            return fn
        if op == "/":
            def fn(env, ctx):
                left, right = align_pair(np.asarray(left_fn(env, ctx)),
                                         np.asarray(right_fn(env, ctx)))
                if _is_int_dtype(left) and _is_int_dtype(right):
                    return np.where(right != 0,
                                    left // np.where(right == 0, 1, right), 0)
                return left / np.asarray(right, dtype=np.float32)
            return fn
        if op == "%":
            def fn(env, ctx):
                left, right = align_pair(np.asarray(left_fn(env, ctx)),
                                         np.asarray(right_fn(env, ctx)))
                if _is_int_dtype(left) and _is_int_dtype(right):
                    return np.where(right != 0,
                                    left % np.where(right == 0, 1, right), 0)
                return np.fmod(left, right)
            return fn
        if op == "&&":
            def fn(env, ctx):
                left, right = align_pair(np.asarray(left_fn(env, ctx)),
                                         np.asarray(right_fn(env, ctx)))
                return as_bool_array(left, ctx.size) & as_bool_array(right, ctx.size)
            return fn
        if op == "||":
            def fn(env, ctx):
                left, right = align_pair(np.asarray(left_fn(env, ctx)),
                                         np.asarray(right_fn(env, ctx)))
                return as_bool_array(left, ctx.size) | as_bool_array(right, ctx.size)
            return fn
        raise _Unsupported(f"binary operator {op!r}")

    def _compile_assignment(self, expr: ast.Assignment, defined: Set[str]):
        value_fn, value_cost = self.compile_expr(expr.value, defined)
        if expr.op != "=":
            # Mirror the interpreter: the compound value is computed by
            # re-evaluating ``target op value`` (the value expression runs
            # twice, and its flops are counted twice).
            target_fn, target_cost = self.compile_expr(expr.target, defined)
            combined_fn = self._binary_from_fns(expr.op[:-1], target_fn, value_fn)
            cost = value_cost + target_cost + value_cost + 1

            def compute(env, ctx):
                value_fn(env, ctx)
                return combined_fn(env, ctx)
        else:
            compute, cost = value_fn, value_cost

        store = self._compile_store(expr.target, defined)

        def assign(env, ctx):
            value = compute(env, ctx)
            store(env, ctx, value)
            return value

        return assign, cost

    def _compile_store(self, target: ast.Expression, defined: Set[str]):
        if isinstance(target, ast.Identifier):
            name = target.name
            defined.add(name)

            def store(env, ctx, value):
                old = env.get(name)
                if old is None:
                    env[name] = materialize(value, ctx.size)
                    return
                if _is_int_dtype(old) and not _is_int_dtype(np.asarray(value)):
                    value = np.asarray(np.trunc(np.asarray(value)), dtype=np.int32)
                env[name] = _merge_masked(materialize(old, ctx.size),
                                          materialize(value, ctx.size),
                                          ctx.full_mask)

            return store
        if isinstance(target, ast.MemberExpr) and isinstance(target.base,
                                                             ast.Identifier):
            name = target.base.name
            indices = swizzle_indices(target.member)
            member = target.member

            def store(env, ctx, value):
                old = env.get(name)
                if old is None:
                    raise RuntimeBrookError(
                        f"assignment to undeclared vector {name!r}")
                old = materialize(old, ctx.size)
                if old.ndim != 2:
                    raise RuntimeBrookError(
                        f"cannot assign component .{member} of non-vector {name!r}"
                    )
                new = old.copy()
                value_arr = materialize(value, ctx.size)
                for position, component in enumerate(indices):
                    if value_arr.ndim == 2:
                        component_value = value_arr[:, position]
                    else:
                        component_value = value_arr
                    new[:, component] = np.where(ctx.full_mask, component_value,
                                                 old[:, component])
                env[name] = new

            return store
        raise _Unsupported("unsupported assignment target")

    def _compile_call(self, expr: ast.CallExpr, defined: Set[str]):
        arg_fns: List[_ExprFn] = []
        args_cost = 0
        for arg in expr.args:
            fn, cost = self.compile_expr(arg, defined)
            arg_fns.append(fn)
            args_cost += cost
        builtin = lookup_builtin(expr.callee)
        if builtin is not None:
            name = expr.callee

            def call(env, ctx):
                args = [fn(env, ctx) for fn in arg_fns]
                return apply_builtin(name, args, ctx.size)

            return call, args_cost + builtin.flop_cost
        helper_fn, helper_cost = self._compile_helper(expr.callee)

        def call(env, ctx):
            args = [fn(env, ctx) for fn in arg_fns]
            return helper_fn(args, ctx)

        return call, args_cost + helper_cost

    def _compile_helper(self, name: str):
        if name in self._helper_cache:
            return self._helper_cache[name]
        helper = self.helpers.get(name)
        if helper is None:
            raise _Unsupported(f"call to unknown function {name!r}")
        if name in self._compiling:
            raise _Unsupported(f"recursive helper {name!r}")
        self._compiling.add(name)
        try:
            param_names = [param.name for param in helper.params]
            defined = set(param_names)
            steps: List[_StmtFn] = []
            flops = 0
            return_fn: Optional[_ExprFn] = None
            for stmt in self._flatten(helper.body):
                if isinstance(stmt, ast.ReturnStatement):
                    if stmt.value is not None:
                        return_fn, cost = self.compile_expr(stmt.value, defined)
                        flops += cost
                    # Statements after a top-level return never execute
                    # (the interpreter's mask is empty there); ignore them.
                    break
                if isinstance(stmt, ast.DeclStatement):
                    step, cost = self._compile_decl(stmt, defined)
                elif isinstance(stmt, ast.ExprStatement):
                    fn, cost = self.compile_expr(stmt.expr, defined)
                    def step(env, ctx, _fn=fn):
                        _fn(env, ctx)
                else:
                    raise _Unsupported(
                        f"helper {name!r} statement {type(stmt).__name__}")
                steps.append(step)
                flops += cost
        finally:
            self._compiling.discard(name)

        def call(args, ctx):
            env = {pname: materialize(value, ctx.size).copy()
                   for pname, value in zip(param_names, args)}
            for step in steps:
                step(env, ctx)
            if return_fn is None:
                return np.float32(0.0)
            value = return_fn(env, ctx)
            arr = np.asarray(value)
            init = np.zeros(ctx.size, dtype=np.float32) if arr.ndim <= 1 \
                else np.zeros((ctx.size, arr.shape[-1]), dtype=np.float32)
            return _merge_masked(init, value, ctx.full_mask)

        self._helper_cache[name] = (call, flops)
        return call, flops

    def _compile_constructor(self, expr: ast.ConstructorExpr, defined: Set[str]):
        arg_fns: List[_ExprFn] = []
        cost = 0
        for arg in expr.args:
            fn, arg_cost = self.compile_expr(arg, defined)
            arg_fns.append(fn)
            cost += arg_cost
        target = expr.target_type
        if target.width == 1:
            kind = target.kind

            def construct(env, ctx):
                value = np.asarray(arg_fns[0](env, ctx))
                if kind is ScalarKind.INT:
                    return np.asarray(np.trunc(value), dtype=np.int32)
                if kind is ScalarKind.FLOAT:
                    return np.asarray(value, dtype=np.float32)
                return as_bool_array(value, ctx.size)

            return construct, cost
        width = target.width

        def construct(env, ctx):
            columns: List[np.ndarray] = []
            for fn in arg_fns:
                arg = np.asarray(fn(env, ctx), dtype=np.float32)
                if arg.ndim == 2:
                    for component in range(arg.shape[1]):
                        columns.append(arg[:, component])
                else:
                    columns.append(arg)
            if len(columns) == 1:
                columns = columns * width
            columns = [np.broadcast_to(np.asarray(c, dtype=np.float32),
                                       (ctx.size,)) for c in columns]
            return np.stack(columns, axis=1)

        return construct, cost

    def _compile_gather(self, expr: ast.IndexExpr, defined: Set[str]):
        index_exprs: List[ast.Expression] = []
        node: ast.Expression = expr
        while isinstance(node, ast.IndexExpr):
            index_exprs.append(node.index)
            node = node.base
        index_exprs.reverse()
        if not isinstance(node, ast.Identifier) or node.name in defined:
            # Indexing anything but a gather-array parameter is a runtime
            # error in the interpreter; leave those kernels to it.
            raise _Unsupported("index of a non-gather value")
        name = node.name
        index_fns: List[_ExprFn] = []
        cost = 0
        for index_expr in index_exprs:
            fn, index_cost = self.compile_expr(index_expr, defined)
            index_fns.append(fn)
            cost += index_cost

        def gather(env, ctx):
            source = ctx.gathers.get(name)
            if source is None:
                raise RuntimeBrookError(
                    "only gather-array parameters can be indexed during execution"
                )
            if len(index_fns) == 1:
                index_value = np.asarray(index_fns[0](env, ctx))
                if index_value.ndim == 2 and index_value.shape[1] >= 2:
                    cols = index_value[:, 0]
                    rows = index_value[:, 1]
                else:
                    cols = index_value
                    rows = np.zeros_like(np.asarray(cols, dtype=np.float32))
            else:
                rows = np.asarray(index_fns[0](env, ctx))
                cols = np.asarray(index_fns[1](env, ctx))
            rows = np.broadcast_to(np.asarray(rows, dtype=np.float32), (ctx.size,))
            cols = np.broadcast_to(np.asarray(cols, dtype=np.float32), (ctx.size,))
            return source.fetch(rows, cols)

        return gather, cost

    def _compile_member(self, expr: ast.MemberExpr, defined: Set[str]):
        base_fn, cost = self.compile_expr(expr.base, defined)
        indices = swizzle_indices(expr.member)
        member = expr.member

        def select(env, ctx):
            base = np.asarray(base_fn(env, ctx))
            if base.ndim == 0:
                raise RuntimeBrookError(
                    f"cannot swizzle scalar value with .{member}")
            if base.ndim == 1 and base.shape[0] in (2, 3, 4) \
                    and base.shape[0] != ctx.size:
                selected = base[list(indices)]
                return selected[0] if len(indices) == 1 else selected
            if base.ndim == 1:
                raise RuntimeBrookError(
                    f"cannot swizzle scalar per-thread value with .{member}")
            if len(indices) == 1:
                return base[:, indices[0]]
            return base[:, list(indices)]

        return select, cost


def compile_fast_path(
    kernel: ast.FunctionDef,
    helpers: Optional[Dict[str, ast.FunctionDef]] = None,
) -> Optional[CompiledKernelProgram]:
    """Compile ``kernel`` into a :class:`CompiledKernelProgram`.

    Returns ``None`` when the kernel does not qualify (divergent control
    flow, reduction kernels, unsupported constructs), in which case the
    caller keeps using the masked interpreter.
    """
    if kernel.is_reduction or not kernel.is_kernel:
        return None
    if not is_straight_line(kernel.body):
        return None
    defined = {
        param.name for param in kernel.params
        if param.kind is not ParamKind.GATHER
    }
    compiler = _Compiler(dict(helpers or {}))
    try:
        steps, flops = compiler.compile_body(kernel.body, defined)
    except _Unsupported:
        return None
    return CompiledKernelProgram(kernel, steps, flops)
