"""Rendering of certification reports.

Certification evidence must be reviewable by assessors, so the report can
be rendered as plain text (for the console), Markdown (for documentation
packages) and a plain dictionary (for archiving as JSON alongside the
build artefacts).
"""

from __future__ import annotations

import json
from typing import Dict, List

from .certification import CertificationReport, RULES, Severity

__all__ = ["report_to_dict", "report_to_text", "report_to_markdown", "report_to_json"]


def report_to_dict(report: CertificationReport) -> Dict:
    """Convert a certification report to a JSON-serialisable dictionary."""
    return {
        "target": {
            "name": report.target.name,
            "max_kernel_inputs": report.target.max_kernel_inputs,
            "max_kernel_outputs": report.target.max_kernel_outputs,
            "max_texture_size": report.target.max_texture_size,
        },
        "compliant": report.is_compliant,
        "rules": {
            rule_id: {
                "title": RULES[rule_id].title,
                "iso_reference": RULES[rule_id].iso_reference,
                "passed": passed,
            }
            for rule_id, passed in report.rule_status().items()
        },
        "kernels": {
            name: {
                "compliant": cert.is_compliant,
                "max_loop_iterations": cert.max_loop_iterations,
                "max_stack_bytes": cert.max_stack_bytes,
                "violations": [
                    {
                        "rule": v.rule_id,
                        "severity": v.severity.value,
                        "message": v.message,
                        "location": str(v.location) if v.location else None,
                    }
                    for v in cert.violations
                ],
            }
            for name, cert in report.kernels.items()
        },
    }


def report_to_json(report: CertificationReport, indent: int = 2) -> str:
    """Render the report as a JSON document."""
    return json.dumps(report_to_dict(report), indent=indent)


def report_to_text(report: CertificationReport) -> str:
    """Render the report as plain text for console output."""
    lines: List[str] = []
    verdict = "COMPLIANT" if report.is_compliant else "NON-COMPLIANT"
    lines.append(f"Brook Auto certification report - target {report.target.name}")
    lines.append(f"Overall verdict: {verdict}")
    lines.append("")
    lines.append("Rule summary:")
    for rule_id, passed in sorted(report.rule_status().items()):
        rule = RULES[rule_id]
        status = "PASS" if passed else "FAIL"
        lines.append(f"  {rule_id}  {status}  {rule.title}")
    lines.append("")
    for name, cert in report.kernels.items():
        status = "compliant" if cert.is_compliant else "NON-COMPLIANT"
        lines.append(f"Kernel {name}: {status}")
        if cert.max_loop_iterations is not None:
            lines.append(f"  max loop iterations per element: {cert.max_loop_iterations}")
        if cert.max_stack_bytes is not None:
            lines.append(f"  max stack usage: {cert.max_stack_bytes} bytes")
        for violation in cert.violations:
            lines.append(f"  {violation}")
    return "\n".join(lines)


def report_to_markdown(report: CertificationReport) -> str:
    """Render the report as Markdown."""
    lines: List[str] = []
    verdict = "**COMPLIANT**" if report.is_compliant else "**NON-COMPLIANT**"
    lines.append(f"# Brook Auto certification report")
    lines.append("")
    lines.append(f"*Target:* `{report.target.name}` — overall verdict: {verdict}")
    lines.append("")
    lines.append("| Rule | Title | ISO / MISRA reference | Status |")
    lines.append("|------|-------|-----------------------|--------|")
    for rule_id, passed in sorted(report.rule_status().items()):
        rule = RULES[rule_id]
        status = "PASS" if passed else "FAIL"
        lines.append(f"| {rule_id} | {rule.title} | {rule.iso_reference} | {status} |")
    lines.append("")
    for name, cert in report.kernels.items():
        lines.append(f"## Kernel `{name}`")
        lines.append("")
        lines.append(f"* compliant: {'yes' if cert.is_compliant else 'no'}")
        if cert.max_loop_iterations is not None:
            lines.append(f"* maximum loop iterations per element: {cert.max_loop_iterations}")
        if cert.max_stack_bytes is not None:
            lines.append(f"* maximum stack usage: {cert.max_stack_bytes} bytes")
        if cert.violations:
            lines.append("* violations:")
            for violation in cert.violations:
                lines.append(f"  * `{violation.rule_id}` {violation.message}")
        lines.append("")
    return "\n".join(lines)
