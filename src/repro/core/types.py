"""Brook kernel-language type system.

Brook kernels are written in a restricted C subset with short-vector
extensions (``float2``, ``float3``, ``float4``) similar to OpenCL/Cg.
This module defines the scalar and vector types used by the semantic
analyzer, the code generators and the execution engine, plus the
parameter *kinds* (stream, output stream, gather array, reduction
accumulator, scalar constant, iterator) that drive how an argument is
bound at kernel launch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "ScalarKind",
    "BrookType",
    "ParamKind",
    "VOID",
    "FLOAT",
    "FLOAT2",
    "FLOAT3",
    "FLOAT4",
    "INT",
    "BOOL",
    "type_from_name",
    "vector_type",
    "common_type",
    "SWIZZLE_COMPONENTS",
]


class ScalarKind(enum.Enum):
    """Element kind of a Brook value."""

    VOID = "void"
    FLOAT = "float"
    INT = "int"
    BOOL = "bool"


@dataclass(frozen=True)
class BrookType:
    """A (possibly vector) Brook value type.

    Attributes:
        kind: The scalar element kind.
        width: Number of components; 1 for scalars, 2-4 for short vectors.
    """

    kind: ScalarKind
    width: int = 1

    def __post_init__(self) -> None:
        if self.width < 1 or self.width > 4:
            raise ValueError(f"invalid vector width {self.width}")
        if self.kind is ScalarKind.VOID and self.width != 1:
            raise ValueError("void cannot be a vector type")

    @property
    def is_void(self) -> bool:
        return self.kind is ScalarKind.VOID

    @property
    def is_vector(self) -> bool:
        return self.width > 1

    @property
    def is_float(self) -> bool:
        return self.kind is ScalarKind.FLOAT

    @property
    def is_integer(self) -> bool:
        return self.kind is ScalarKind.INT

    @property
    def is_bool(self) -> bool:
        return self.kind is ScalarKind.BOOL

    @property
    def scalar(self) -> "BrookType":
        """The scalar type with the same element kind."""
        return BrookType(self.kind, 1)

    def with_width(self, width: int) -> "BrookType":
        return BrookType(self.kind, width)

    @property
    def name(self) -> str:
        base = self.kind.value
        if self.width == 1:
            return base
        return f"{base}{self.width}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


VOID = BrookType(ScalarKind.VOID)
FLOAT = BrookType(ScalarKind.FLOAT)
FLOAT2 = BrookType(ScalarKind.FLOAT, 2)
FLOAT3 = BrookType(ScalarKind.FLOAT, 3)
FLOAT4 = BrookType(ScalarKind.FLOAT, 4)
INT = BrookType(ScalarKind.INT)
BOOL = BrookType(ScalarKind.BOOL)

_NAMED_TYPES: Dict[str, BrookType] = {
    "void": VOID,
    "float": FLOAT,
    "float2": FLOAT2,
    "float3": FLOAT3,
    "float4": FLOAT4,
    "int": INT,
    "int2": BrookType(ScalarKind.INT, 2),
    "int3": BrookType(ScalarKind.INT, 3),
    "int4": BrookType(ScalarKind.INT, 4),
    "bool": BOOL,
    # ``double`` is accepted by the Brook front end but Brook Auto maps it
    # to single precision on embedded GPUs (OpenGL ES 2 has no doubles).
    "double": FLOAT,
}

#: Mapping from swizzle letters to component indices (both xyzw and rgba
#: selectors are accepted, as in GLSL/Cg).
SWIZZLE_COMPONENTS: Dict[str, int] = {
    "x": 0,
    "y": 1,
    "z": 2,
    "w": 3,
    "r": 0,
    "g": 1,
    "b": 2,
    "a": 3,
}


def type_from_name(name: str) -> Optional[BrookType]:
    """Return the :class:`BrookType` for a type keyword, or ``None``."""
    return _NAMED_TYPES.get(name)


def is_type_name(name: str) -> bool:
    """Return True when ``name`` is a Brook type keyword."""
    return name in _NAMED_TYPES


def vector_type(base: BrookType, width: int) -> BrookType:
    """Return a vector type with ``width`` components of ``base``'s kind."""
    return BrookType(base.kind, width)


def common_type(left: BrookType, right: BrookType) -> Optional[BrookType]:
    """Compute the result type of a binary arithmetic operation.

    Brook follows Cg-style promotion rules: ``int`` promotes to ``float``
    when mixed; a scalar combined with a vector broadcasts to the vector
    width; two vectors must have the same width.

    Returns ``None`` when the operands are incompatible.
    """
    if left.is_void or right.is_void:
        return None
    if left.width != right.width and left.width != 1 and right.width != 1:
        return None
    width = max(left.width, right.width)
    if ScalarKind.FLOAT in (left.kind, right.kind):
        kind = ScalarKind.FLOAT
    elif ScalarKind.INT in (left.kind, right.kind):
        kind = ScalarKind.INT
    else:
        kind = ScalarKind.BOOL
    return BrookType(kind, width)


class ParamKind(enum.Enum):
    """How a kernel parameter binds to a launch argument.

    * ``STREAM`` - positional input stream: each GPU thread receives the
      element that corresponds to its position in the output domain.
    * ``OUT_STREAM`` - positional output stream written by the thread.
    * ``GATHER`` - random-access read-only array indexed with ``[]``;
      lowered to texture fetches with normalized coordinates on the
      OpenGL ES 2 backend.
    * ``REDUCE`` - reduction accumulator of a ``reduce`` kernel.
    * ``SCALAR`` - constant (uniform) value shared by all threads.
    * ``ITERATOR`` - iterator stream produced by the runtime (values are
      generated, not stored); behaves as a read-only stream inside the
      kernel.
    """

    STREAM = "stream"
    OUT_STREAM = "out"
    GATHER = "gather"
    REDUCE = "reduce"
    SCALAR = "scalar"
    ITERATOR = "iter"


@dataclass(frozen=True)
class ParamSignature:
    """Resolved signature of one kernel parameter."""

    name: str
    type: BrookType
    kind: ParamKind
    #: Number of gather dimensions (1 or 2) for ``GATHER`` parameters.
    gather_rank: int = 0

    @property
    def is_input_stream(self) -> bool:
        return self.kind in (ParamKind.STREAM, ParamKind.ITERATOR)

    @property
    def is_output(self) -> bool:
        return self.kind is ParamKind.OUT_STREAM

    @property
    def is_gather(self) -> bool:
        return self.kind is ParamKind.GATHER


def numpy_dtype(brook_type: BrookType) -> str:
    """Return the NumPy dtype string used to store a Brook type host-side."""
    if brook_type.kind is ScalarKind.FLOAT:
        return "float32"
    if brook_type.kind is ScalarKind.INT:
        return "int32"
    if brook_type.kind is ScalarKind.BOOL:
        return "bool"
    raise ValueError(f"no storage dtype for {brook_type}")


def swizzle_result_type(base: BrookType, swizzle: str) -> Optional[BrookType]:
    """Type of ``value.swizzle`` or ``None`` when the swizzle is invalid."""
    if not swizzle or len(swizzle) > 4:
        return None
    for ch in swizzle:
        if ch not in SWIZZLE_COMPONENTS:
            return None
        if SWIZZLE_COMPONENTS[ch] >= base.width:
            return None
    return BrookType(base.kind, len(swizzle)) if len(swizzle) > 1 else base.scalar


def swizzle_indices(swizzle: str) -> Tuple[int, ...]:
    """Component indices selected by a swizzle string."""
    return tuple(SWIZZLE_COMPONENTS[ch] for ch in swizzle)
