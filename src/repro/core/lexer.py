"""Tokenizer for the Brook kernel language.

The Brook kernel language is a restricted C dialect with stream
declarators (``float a<>``), parameter qualifiers (``out``, ``reduce``,
``iter``), the ``kernel``/``reduce`` function qualifiers and the
``indexof`` operator.  This lexer produces a flat token stream consumed
by :mod:`repro.core.parser`.

The token set intentionally includes C constructs that Brook Auto
*forbids* (``goto``, ``*`` used as a pointer declarator, ``malloc`` as an
identifier, ...) so that non-compliant source can be parsed and then
rejected by the certification checker with a precise diagnostic, instead
of failing with an opaque syntax error.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..errors import BrookSyntaxError, SourceLocation

__all__ = ["TokenKind", "Token", "Lexer", "tokenize"]


class TokenKind(enum.Enum):
    IDENT = "identifier"
    KEYWORD = "keyword"
    FLOAT_LITERAL = "float literal"
    INT_LITERAL = "int literal"
    PUNCT = "punctuation"
    STRING = "string literal"
    EOF = "end of input"


#: Reserved words of the Brook kernel language (including type names and
#: the constructs Brook Auto bans, which must still lex as keywords so the
#: checker can report them).
KEYWORDS = frozenset(
    {
        "kernel",
        "reduce",
        "out",
        "iter",
        "void",
        "float",
        "float2",
        "float3",
        "float4",
        "int",
        "int2",
        "int3",
        "int4",
        "bool",
        "double",
        "if",
        "else",
        "for",
        "while",
        "do",
        "return",
        "break",
        "continue",
        "true",
        "false",
        "indexof",
        # Constructs that are recognised so the certification checker can
        # flag them with a dedicated rule rather than a parse error.
        "goto",
        "switch",
        "case",
        "default",
        "struct",
        "typedef",
        "const",
        "static",
        "unsigned",
        "char",
        "short",
        "long",
    }
)

#: Multi-character punctuators, longest first so maximal munch works.
_PUNCTUATORS = [
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "++",
    "--",
    "<<",
    ">>",
    "->",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ".",
    "!",
    "?",
    ":",
    "&",
    "|",
    "^",
    "~",
]


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: TokenKind
    text: str
    location: SourceLocation

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.location})"


class Lexer:
    """Converts Brook kernel source text into a list of tokens."""

    def __init__(self, source: str, filename: str = "<string>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------ #
    # Character helpers
    # ------------------------------------------------------------------ #
    def _location(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _error(self, message: str) -> BrookSyntaxError:
        return BrookSyntaxError(message, self._location())

    # ------------------------------------------------------------------ #
    # Skipping
    # ------------------------------------------------------------------ #
    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if not self._peek():
                        raise BrookSyntaxError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            elif ch == "#":
                # Preprocessor directives are not part of the kernel
                # language; Brook Auto source must not rely on them, but
                # we skip them here so the checker can analyse the rest.
                while self._peek() and self._peek() != "\n":
                    self._advance()
            else:
                return

    # ------------------------------------------------------------------ #
    # Token producers
    # ------------------------------------------------------------------ #
    def _lex_number(self) -> Token:
        start = self._location()
        begin = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            return Token(TokenKind.INT_LITERAL, self.source[begin:self.pos], start)
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        elif self._peek() == "." and not self._peek(1).isalpha():
            is_float = True
            self._advance()
        if self._peek() and self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() and self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() and self._peek() in "fF":
            is_float = True
            self._advance()
            text = self.source[begin:self.pos - 1]
        else:
            text = self.source[begin:self.pos]
        kind = TokenKind.FLOAT_LITERAL if is_float else TokenKind.INT_LITERAL
        return Token(kind, text, start)

    def _lex_identifier(self) -> Token:
        start = self._location()
        begin = self.pos
        while self._peek() and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.source[begin:self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, start)

    def _lex_string(self) -> Token:
        start = self._location()
        quote = self._peek()
        self._advance()
        begin = self.pos
        while self._peek() and self._peek() != quote:
            if self._peek() == "\\":
                self._advance()
            self._advance()
        if not self._peek():
            raise BrookSyntaxError("unterminated string literal", start)
        text = self.source[begin:self.pos]
        self._advance()
        return Token(TokenKind.STRING, text, start)

    def _lex_punct(self) -> Token:
        start = self._location()
        for punct in _PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, start)
        raise self._error(f"unexpected character {self._peek()!r}")

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def tokens(self) -> Iterator[Token]:
        """Yield every token of the source, ending with a single EOF token."""
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                yield Token(TokenKind.EOF, "", self._location())
                return
            ch = self._peek()
            if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                yield self._lex_number()
            elif ch.isalpha() or ch == "_":
                yield self._lex_identifier()
            elif ch in "\"'":
                yield self._lex_string()
            else:
                yield self._lex_punct()


def tokenize(source: str, filename: str = "<string>") -> List[Token]:
    """Tokenize ``source`` and return the full token list (EOF included)."""
    return list(Lexer(source, filename).tokens())
