#!/usr/bin/env python
"""ADAS vision front-end: lane-marking edge detection on an embedded GPU.

The paper motivates Brook Auto with Advanced Driver Assistance Systems:
camera-based functions need GPU-class throughput but must be certifiable
against ISO 26262.  This example implements the first stages of a lane
detection pipeline entirely in the Brook Auto subset:

1. Gaussian smoothing of the camera frame (3x3 convolution),
2. Sobel gradients and gradient magnitude,
3. thresholding into a binary edge map.

Every kernel is certifiable (bounded loops, no pointers, statically sized
streams) and the whole pipeline runs on the simulated OpenGL ES 2.0
device - the class of GPU found in automotive platforms such as the
Mali-4xx or VideoCore IV.

Run with::

    python examples/adas_edge_detection.py
"""

import numpy as np

from repro import BrookRuntime

PIPELINE_SOURCE = """
// Stage 1: 3x3 Gaussian smoothing with clamp-to-edge borders.
kernel void smooth(float frame[][], float width, float height,
                   out float blurred<>) {
    float2 idx = indexof(blurred);
    float x0 = max(idx.x - 1.0, 0.0);
    float x2 = min(idx.x + 1.0, width - 1.0);
    float y0 = max(idx.y - 1.0, 0.0);
    float y2 = min(idx.y + 1.0, height - 1.0);
    float acc = 4.0 * frame[idx.y][idx.x];
    acc = acc + 2.0 * (frame[idx.y][x0] + frame[idx.y][x2]
                       + frame[y0][idx.x] + frame[y2][idx.x]);
    acc = acc + frame[y0][x0] + frame[y0][x2] + frame[y2][x0] + frame[y2][x2];
    blurred = acc / 16.0;
}

// Stage 2: Sobel gradient magnitude.
kernel void sobel(float image[][], float width, float height,
                  out float magnitude<>) {
    float2 idx = indexof(magnitude);
    float x0 = max(idx.x - 1.0, 0.0);
    float x2 = min(idx.x + 1.0, width - 1.0);
    float y0 = max(idx.y - 1.0, 0.0);
    float y2 = min(idx.y + 1.0, height - 1.0);
    float gx = image[y0][x2] + 2.0 * image[idx.y][x2] + image[y2][x2]
             - image[y0][x0] - 2.0 * image[idx.y][x0] - image[y2][x0];
    float gy = image[y2][x0] + 2.0 * image[y2][idx.x] + image[y2][x2]
             - image[y0][x0] - 2.0 * image[y0][idx.x] - image[y0][x2];
    magnitude = sqrt(gx * gx + gy * gy);
}

// Stage 3: binary edge map.
kernel void threshold(float magnitude<>, float level, out float edges<>) {
    edges = (magnitude > level) ? 1.0 : 0.0;
}
"""


def synthetic_camera_frame(height: int, width: int, seed: int = 42) -> np.ndarray:
    """A synthetic road scene: dark asphalt, two bright lane markings, noise."""
    rng = np.random.default_rng(seed)
    frame = np.full((height, width), 40.0, dtype=np.float32)
    rows = np.arange(height, dtype=np.float32)
    # Two lane markings converging towards the horizon.
    for lane_base, slope in ((0.30, 0.08), (0.70, -0.08)):
        centers = (lane_base + slope * (1.0 - rows / height)) * width
        for row in range(height // 4, height):
            center = int(centers[row])
            half_width = max(1, int(3 * (row / height)))
            frame[row, max(0, center - half_width):center + half_width] = 220.0
    frame += rng.normal(0.0, 4.0, size=frame.shape).astype(np.float32)
    return np.clip(frame, 0.0, 255.0).astype(np.float32)


def main() -> None:
    height = width = 128
    frame_host = synthetic_camera_frame(height, width)

    runtime = BrookRuntime(backend="gles2", device="videocore-iv")
    module = runtime.compile(PIPELINE_SOURCE)
    print("Pipeline certification:",
          "COMPLIANT" if module.certification.is_compliant else "NON-COMPLIANT")

    frame = runtime.stream_from(frame_host, name="camera_frame")
    blurred = runtime.stream((height, width), name="blurred")
    magnitude = runtime.stream((height, width), name="gradient")
    edges = runtime.stream((height, width), name="edges")

    module.smooth(frame, float(width), float(height), blurred)
    module.sobel(blurred, float(width), float(height), magnitude)
    module.threshold(magnitude, 120.0, edges)

    edge_map = edges.read()
    lane_pixels = int(edge_map.sum())
    density = lane_pixels / edge_map.size
    print(f"Edge pixels detected: {lane_pixels} ({density:.1%} of the frame)")

    # Render a coarse ASCII preview of the detected lane markings.
    step_y = height // 24
    step_x = width // 64
    print("\nEdge map preview (downsampled):")
    for row in range(0, height, step_y):
        line = "".join(
            "#" if edge_map[row, col:col + step_x].max() > 0 else "."
            for col in range(0, width, step_x)
        )
        print("   " + line)

    print("\nWork statistics:", runtime.statistics.summary())


if __name__ == "__main__":
    main()
