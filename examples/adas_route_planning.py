#!/usr/bin/env python
"""ADAS route planning: all-pairs shortest paths on the embedded GPU.

Navigation and predictive-energy functions need shortest-path information
over the road network around the vehicle.  This example builds a
synthetic road network (a grid of intersections with random travel
times), offloads the Floyd-Warshall computation to the simulated
OpenGL ES 2.0 GPU through the reference application of the suite, and
reconstructs a concrete route from the intermediate-vertex matrix the
two-output kernel produces (the kernel the compiler splits in two for the
single-render-target device, exactly as in the paper).

Run with::

    python examples/adas_route_planning.py
"""

import numpy as np

from repro.apps.floyd_warshall import NO_EDGE, FloydWarshallApp


def build_road_network(grid: int, seed: int = 3) -> np.ndarray:
    """A grid-shaped road network with random segment travel times (s)."""
    rng = np.random.default_rng(seed)
    vertices = grid * grid
    weights = np.full((vertices, vertices), NO_EDGE, dtype=np.float32)
    np.fill_diagonal(weights, 0.0)
    for row in range(grid):
        for col in range(grid):
            node = row * grid + col
            for d_row, d_col in ((0, 1), (1, 0)):
                n_row, n_col = row + d_row, col + d_col
                if n_row < grid and n_col < grid:
                    neighbour = n_row * grid + n_col
                    travel = rng.uniform(20.0, 90.0)
                    weights[node, neighbour] = travel
                    weights[neighbour, node] = travel * rng.uniform(0.9, 1.3)
    return weights


def reconstruct_route(path: np.ndarray, source: int, target: int) -> list:
    """Expand the intermediate-vertex matrix into an explicit route."""
    def expand(a: int, b: int, depth: int = 0) -> list:
        if depth > path.shape[0]:
            return []
        via = int(path[a, b])
        if via < 0:
            return []
        return expand(a, via, depth + 1) + [via] + expand(via, b, depth + 1)

    return [source] + expand(source, target) + [target]


def main() -> None:
    grid = 8                      # 8x8 intersections -> 64 vertices
    vertices = grid * grid
    weights = build_road_network(grid)

    app = FloydWarshallApp()
    runtime = app.create_runtime("gles2", "videocore-iv")
    module = app.compile(runtime)
    print("Floyd-Warshall kernels after splitting for OpenGL ES 2:",
          ", ".join(sorted(module.program.kernels)))

    outputs = app.run_brook(runtime, module, vertices, {"weights": weights})
    distances, path = outputs["dist"], outputs["path"]

    source = 0                    # north-west corner of the map
    target = vertices - 1         # south-east corner
    route = reconstruct_route(path, source, target)
    travel_time = distances[source, target]

    print(f"\nFastest route from intersection {source} to {target}:")
    print("  " + " -> ".join(str(node) for node in route))
    print(f"  modelled travel time: {travel_time:.0f} s")

    reachable = distances[source] < NO_EDGE
    print(f"\nIntersections reachable from {source}: {int(reachable.sum())} "
          f"of {vertices}")
    print(f"Mean travel time to reachable intersections: "
          f"{float(distances[source][reachable].mean()):.0f} s")

    print("\nWork statistics:", runtime.statistics.summary())


if __name__ == "__main__":
    main()
