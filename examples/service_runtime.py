#!/usr/bin/env python
"""Service-grade runtime API: sessions, compile cache, plans and queues.

This example shows the surfaces a long-lived process (think: a request
loop serving many kernel launches) uses on top of the quickstart flow:

1. ``with BrookRuntime(...)`` - a session that releases every stream and
   its device memory on exit,
2. the compile cache - recompiling the same source is free,
3. ``KernelHandle.bind`` - validate and classify launch arguments once,
   then re-launch without per-call overhead,
4. ``rt.queue()`` - batch many launches and flush them in one pass,
5. the backend registry - the execution targets available to
   ``BrookRuntime(backend=...)``.

Run with::

    python examples/service_runtime.py
"""

import numpy as np

from repro import BrookRuntime, available_backends

SOURCE = """
kernel void saxpy(float alpha, float x<>, float y<>, out float r<>) {
    r = alpha * x + y;
}

reduce void total(float value<>, reduce float accumulator) {
    accumulator += value;
}
"""

STEPS = 50


def main() -> None:
    print("Registered backends:", ", ".join(available_backends()))

    with BrookRuntime(backend="gles2", device="videocore-iv") as rt:
        # --- compile cache -------------------------------------------- #
        module = rt.compile(SOURCE)
        module = rt.compile(SOURCE)      # identical source + options: cached
        info = rt.compile_cache_info()
        print(f"Compile cache: {info['hits']} hit(s), "
              f"{info['misses']} miss(es)")

        size = 32
        x = rt.stream_from(np.linspace(0.0, 1.0, size * size,
                                       dtype=np.float32).reshape(size, size),
                           name="x")
        y = rt.stream_from(np.zeros((size, size), dtype=np.float32), name="y")
        out = rt.stream((size, size), name="out")

        # --- prepared launches ---------------------------------------- #
        # bind() validates and classifies the arguments once; each
        # plan.launch() then goes straight to the backend.
        plan = module.saxpy.bind(0.5, x, y, out)
        for _ in range(STEPS):
            plan.launch()
        print(f"Prepared plan launched {STEPS} times "
              f"({rt.statistics.total_passes} kernel passes recorded)")

        # --- command queue -------------------------------------------- #
        rt.reset_statistics()
        with rt.queue() as q:
            module.saxpy(2.0, x, y, out)     # deferred
            queued_sum = module.total(out)   # deferred, result after flush
            print(f"Queue holds {len(q)} pending launch(es), "
                  f"{rt.statistics.total_passes} passes recorded so far")
        print(f"Queue flushed: sum(out) = {queued_sum.result:.2f}, "
              f"{rt.statistics.total_passes} passes recorded in bulk")

        print("Live streams:",
              sorted(stream.name for stream in rt.live_streams()))
        print("Device memory in use inside the session:",
              rt.device_memory_in_use(), "bytes")

    print("Device memory in use after the session:",
          rt.device_memory_in_use(), "bytes")


if __name__ == "__main__":
    main()
