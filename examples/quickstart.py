#!/usr/bin/env python
"""Quickstart: compile and run a first Brook Auto kernel.

This example walks through the full Brook Auto workflow on the simulated
embedded GPU (a VideoCore IV class device driven through OpenGL ES 2.0):

1. write a kernel in the Brook Auto subset,
2. compile it (the certification checker runs as part of compilation),
3. create statically sized streams and launch the kernel,
4. read the result back and inspect the generated GLSL ES 1.0 shader.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import BrookRuntime

SAXPY_SOURCE = """
// A first Brook Auto kernel: single-precision a*X + Y over two streams.
kernel void saxpy(float alpha, float x<>, float y<>, out float result<>) {
    result = alpha * x + y;
}

// A reduction kernel: sums every element of a stream.
reduce void total(float value<>, reduce float accumulator) {
    accumulator += value;
}
"""


def main() -> None:
    # The runtime owns the backend: "gles2" is the paper's embedded target,
    # "cpu" and "cal" are the validation and reference backends (run
    # `brookauto backends` for the full registry).  Using the runtime as a
    # context manager releases every stream when the block exits.
    with BrookRuntime(backend="gles2", device="videocore-iv") as runtime:
        run_quickstart(runtime)
    print("\nSession closed; device memory in use:",
          runtime.device_memory_in_use(), "bytes")


def run_quickstart(runtime: BrookRuntime) -> None:
    # Compilation enforces the Brook Auto subset; a rule violation would
    # raise CertificationError here, before anything touches the device.
    module = runtime.compile(SAXPY_SOURCE)
    print("Certified for", runtime.backend.target_limits().name, "->",
          "COMPLIANT" if module.certification.is_compliant else "NON-COMPLIANT")

    # Statically sized streams: the shape is fixed at creation time, so the
    # maximum GPU memory usage is known before the first kernel launch.
    size = 64
    x_host = np.linspace(0.0, 1.0, size * size, dtype=np.float32).reshape(size, size)
    y_host = np.full((size, size), 10.0, dtype=np.float32)
    x = runtime.stream_from(x_host, name="x")
    y = runtime.stream_from(y_host, name="y")
    result = runtime.stream((size, size), name="result")
    print("Static GPU memory bound:",
          f"{runtime.memory_usage_report().total_mebibytes:.2f} MiB")

    # Launch the kernel: positional arguments follow the kernel signature.
    module.saxpy(2.5, x, y, result)
    gpu_result = result.read()
    expected = 2.5 * x_host + y_host
    print("saxpy max abs error:", float(np.max(np.abs(gpu_result - expected))))

    # Reductions run as multiple passes over two ping-pong textures.
    total = module.total(result)
    print(f"reduction: sum(result) = {total:.2f} "
          f"(expected {float(expected.sum()):.2f})")

    # The compiler's artefacts are available for inspection / certification
    # evidence: here is the beginning of the generated OpenGL ES 2 shader.
    glsl = module.program.kernel("saxpy").glsl_es
    print("\nGenerated GLSL ES 1.0 (first 12 lines):")
    print("\n".join(glsl.splitlines()[:12]))

    # The runtime also recorded what the launch cost.
    print("\nWork statistics:", runtime.statistics.summary())


if __name__ == "__main__":
    main()
