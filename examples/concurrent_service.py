#!/usr/bin/env python
"""Concurrent serving: the async executor and the runtime pool.

Two layers sit on top of the single-runtime API for workloads where many
independent pipelines hit one accelerator at once:

1. ``rt.executor(workers=N)`` - an :class:`AsyncExecutor` with
   stream-level hazard tracking: independent launches overlap across the
   worker pool, launches touching the same streams serialize in
   submission order, so results are bit-identical to serial execution.
2. ``BrookService(pool_size=N)`` - a pool of worker runtimes behind one
   submit/response API with least-loaded dispatch, per-signature
   prepared (fused) pipelines and a ``service_report()`` with
   latency/throughput percentiles.

Run with::

    python examples/concurrent_service.py
"""

import numpy as np

from repro import BrookRuntime, BrookService
from repro.service import ServiceRequest, call

SOURCE = """
kernel void blur_h(float x<>, out float y<>) { y = x * 0.5; }
kernel void sharpen(float x<>, float amount, out float y<>) {
    y = x + amount * (x - 0.5);
}
reduce void total(float value<>, reduce float accumulator) {
    accumulator += value;
}
"""

SIZE = 24


def async_executor_demo() -> None:
    rng = np.random.default_rng(0)
    with BrookRuntime(backend="cpu") as rt:
        module = rt.compile(SOURCE)
        frame = rt.stream_from(rng.uniform(0, 1, (SIZE, SIZE)), name="frame")
        blurred = rt.stream((SIZE, SIZE), name="blurred")
        sharpened = rt.stream((SIZE, SIZE), name="sharpened")
        other = rt.stream((SIZE, SIZE), name="other")

        with rt.executor(workers=3) as ex:
            # blur -> sharpen conflict on `blurred`: they serialize in
            # submission order.  The launch into `other` is independent
            # and free to overlap with either.
            ex.submit(module.blur_h.bind(frame, blurred))
            ex.submit(module.sharpen.bind(blurred, 0.8, sharpened))
            ex.submit(module.blur_h.bind(frame, other))
            future = ex.submit(module.total.bind(sharpened))
            print(f"async pipeline total: {future.result():.4f} "
                  f"({ex.submitted} launches, hazard-ordered)")


def service_demo() -> None:
    rng = np.random.default_rng(1)
    frames = [rng.uniform(0, 1, (SIZE, SIZE)).astype(np.float32)
              for _ in range(12)]
    requests = [
        ServiceRequest(
            source=SOURCE,
            calls=(call("blur_h", "frame", "tmp"),
                   call("sharpen", "tmp", 0.8, "out")),
            inputs={"frame": frame},
            outputs={"out": (SIZE, SIZE)},
            scratch={"tmp": (SIZE, SIZE)},
            name=f"frame{i}",
        )
        for i, frame in enumerate(frames)
    ]

    with BrookService(backend="cpu", pool_size=2) as service:
        responses = service.map(requests)
        report = service.service_report()

    checksum = float(sum(r.outputs["out"].sum() for r in responses))
    print(f"served {report['requests_completed']} requests on "
          f"{report['pool_size']} workers at "
          f"{report['requests_per_s']:.0f} req/s "
          f"(p95 {report['latency_ms']['p95']:.2f} ms), checksum {checksum:.3f}")
    cached = sum(1 for r in responses if r.cached)
    print(f"prepared-pipeline cache served {cached}/{len(responses)} "
          "requests after the first per worker")


def main() -> None:
    async_executor_demo()
    service_demo()


if __name__ == "__main__":
    main()
