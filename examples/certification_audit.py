#!/usr/bin/env python
"""Certification audit: producing ISO 26262 compliance evidence.

Automotive software must come with evidence that coding guidelines are
met.  This example shows the two sides of Brook Auto's argument:

* a CUDA/OpenCL-style kernel (pointers, dynamic allocation, recursion,
  unbounded loops) is analysed and every rule violation is reported with
  its source location - this is the code that *cannot* be certified;
* the same functionality rewritten in the Brook Auto subset passes every
  rule, and the checker additionally derives the static bounds an
  assessor asks for (maximum loop iterations, worst-case stack usage,
  maximum GPU memory).

Run with::

    python examples/certification_audit.py
"""

from repro import BrookRuntime, CertificationError, compile_source
from repro.core.analysis.memory_usage import StreamDeclaration, estimate_memory_usage
from repro.core.reporting import report_to_markdown, report_to_text
from repro.core.types import FLOAT
from repro.gles2.device import get_device_profile

LEGACY_SOURCE = """
// Legacy accelerator code, the way it would be written for CUDA/OpenCL.
kernel void moving_average(float *samples, float n, out float average<>) {
    float *window;
    float total = 0.0;
    float i = 0.0;
    window = malloc(n);
    while (i < n) {                 // unbounded: n is not statically bounded
        total = total + samples[i]; // pointer arithmetic
        i = i + 1.0;
    }
    free(window);
    average = total / n;
}
"""

BROOK_AUTO_SOURCE = """
// The same moving average in the Brook Auto subset: the sample window is a
// statically sized gather stream and the loop has a declared upper bound.
kernel void moving_average(float samples[], float window_size,
                           out float average<>) {
    float total = 0.0;
    for (int i = 0; i < window_size; i = i + 1) {
        total = total + samples[i];
    }
    average = total / window_size;
}
"""


def main() -> None:
    target = get_device_profile("videocore-iv").limits.to_target_limits()

    print("=" * 72)
    print("1. Legacy CUDA/OpenCL-style kernel")
    print("=" * 72)
    try:
        compile_source(LEGACY_SOURCE, target=target, strict=True)
    except CertificationError as error:
        print(f"strict compilation rejected the kernel with "
              f"{len(error.violations)} violation(s):")
        for violation in error.violations:
            print(f"  {violation}")

    # Non-strict mode produces the full report for the audit trail.
    legacy = compile_source(LEGACY_SOURCE, target=target, strict=False)
    print("\nRule-by-rule report:")
    print(report_to_text(legacy.certification))

    print()
    print("=" * 72)
    print("2. Brook Auto rewrite")
    print("=" * 72)
    # The window size is a scalar parameter; declaring its maximum makes the
    # loop bound statically known (rule BA-005).
    compliant = compile_source(
        BROOK_AUTO_SOURCE,
        target=target,
        strict=True,
        param_bounds={"moving_average": {"window_size": 64}},
    )
    cert = compliant.certification.kernels["moving_average"]
    print("verdict: COMPLIANT")
    print(f"maximum loop iterations per element: {cert.max_loop_iterations}")
    print(f"worst-case stack usage: {cert.max_stack_bytes} bytes")

    # Static GPU memory bound for the deployment configuration.
    memory = estimate_memory_usage(
        [
            StreamDeclaration("samples", (64,), FLOAT),
            StreamDeclaration("average", (1,), FLOAT),
        ],
        target,
    )
    print(f"maximum GPU memory usage: {memory.total_bytes} bytes "
          f"({memory.total_mebibytes:.4f} MiB)")

    print("\nMarkdown report (for the certification package):\n")
    print(report_to_markdown(compliant.certification))

    # Finally, show that the compliant kernel actually runs on the target.
    runtime = BrookRuntime(backend="gles2", device="videocore-iv")
    module = runtime.compile(
        BROOK_AUTO_SOURCE,
        param_bounds={"moving_average": {"window_size": 64}},
    )
    import numpy as np

    samples = runtime.stream_from(np.arange(64, dtype=np.float32), name="samples")
    average = runtime.stream((1,), name="average")
    module.moving_average(samples, 64.0, average)
    print("moving_average(0..63) =", float(average.read()[0]), "(expected 31.5)")


if __name__ == "__main__":
    main()
