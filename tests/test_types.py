"""Unit tests for the Brook type system."""

import pytest

from repro.core.types import (
    BOOL,
    FLOAT,
    FLOAT2,
    FLOAT3,
    FLOAT4,
    INT,
    VOID,
    BrookType,
    ParamKind,
    ScalarKind,
    common_type,
    numpy_dtype,
    swizzle_indices,
    swizzle_result_type,
    type_from_name,
    vector_type,
)


class TestBrookType:
    def test_names(self):
        assert FLOAT.name == "float"
        assert FLOAT2.name == "float2"
        assert FLOAT4.name == "float4"
        assert INT.name == "int"
        assert VOID.name == "void"

    def test_predicates(self):
        assert FLOAT.is_float and not FLOAT.is_vector
        assert FLOAT3.is_vector
        assert INT.is_integer
        assert BOOL.is_bool
        assert VOID.is_void

    def test_scalar_of_vector(self):
        assert FLOAT4.scalar == FLOAT
        assert FLOAT.scalar == FLOAT

    def test_with_width(self):
        assert FLOAT.with_width(3) == FLOAT3

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            BrookType(ScalarKind.FLOAT, 5)
        with pytest.raises(ValueError):
            BrookType(ScalarKind.FLOAT, 0)

    def test_void_vector_rejected(self):
        with pytest.raises(ValueError):
            BrookType(ScalarKind.VOID, 2)

    def test_equality_and_hash(self):
        assert BrookType(ScalarKind.FLOAT, 2) == FLOAT2
        assert len({FLOAT, FLOAT2, FLOAT}) == 2


class TestTypeLookup:
    @pytest.mark.parametrize("name,expected", [
        ("float", FLOAT), ("float2", FLOAT2), ("float3", FLOAT3),
        ("float4", FLOAT4), ("int", INT), ("bool", BOOL), ("void", VOID),
    ])
    def test_type_from_name(self, name, expected):
        assert type_from_name(name) == expected

    def test_double_maps_to_float(self):
        assert type_from_name("double") == FLOAT

    def test_unknown_name_is_none(self):
        assert type_from_name("texture") is None

    def test_vector_type_builder(self):
        assert vector_type(FLOAT, 3) == FLOAT3
        assert vector_type(INT, 2).kind is ScalarKind.INT


class TestCommonType:
    def test_same_types(self):
        assert common_type(FLOAT, FLOAT) == FLOAT

    def test_int_promotes_to_float(self):
        assert common_type(INT, FLOAT) == FLOAT
        assert common_type(FLOAT, INT) == FLOAT

    def test_scalar_broadcasts_to_vector(self):
        assert common_type(FLOAT, FLOAT4) == FLOAT4
        assert common_type(FLOAT4, INT) == FLOAT4

    def test_mismatched_vectors_are_incompatible(self):
        assert common_type(FLOAT2, FLOAT3) is None

    def test_void_is_incompatible(self):
        assert common_type(VOID, FLOAT) is None

    def test_bool_pairs(self):
        assert common_type(BOOL, BOOL) == BOOL


class TestSwizzles:
    def test_single_component(self):
        assert swizzle_result_type(FLOAT4, "x") == FLOAT
        assert swizzle_result_type(FLOAT2, "y") == FLOAT

    def test_multi_component(self):
        assert swizzle_result_type(FLOAT4, "xyz") == FLOAT3
        assert swizzle_result_type(FLOAT4, "wzyx") == FLOAT4

    def test_rgba_selectors(self):
        assert swizzle_result_type(FLOAT4, "rgb") == FLOAT3

    def test_out_of_range_component(self):
        assert swizzle_result_type(FLOAT2, "z") is None

    def test_invalid_letters(self):
        assert swizzle_result_type(FLOAT4, "xq") is None
        assert swizzle_result_type(FLOAT4, "") is None
        assert swizzle_result_type(FLOAT4, "xyzwx") is None

    def test_swizzle_indices(self):
        assert swizzle_indices("xyzw") == (0, 1, 2, 3)
        assert swizzle_indices("rg") == (0, 1)
        assert swizzle_indices("wx") == (3, 0)


class TestStorage:
    def test_numpy_dtypes(self):
        assert numpy_dtype(FLOAT) == "float32"
        assert numpy_dtype(INT) == "int32"
        assert numpy_dtype(BOOL) == "bool"

    def test_void_has_no_storage(self):
        with pytest.raises(ValueError):
            numpy_dtype(VOID)


class TestParamKind:
    def test_values(self):
        assert ParamKind.STREAM.value == "stream"
        assert ParamKind.OUT_STREAM.value == "out"
        assert ParamKind.GATHER.value == "gather"
        assert ParamKind.REDUCE.value == "reduce"
        assert ParamKind.SCALAR.value == "scalar"
        assert ParamKind.ITERATOR.value == "iter"
