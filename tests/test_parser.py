"""Unit tests for the Brook kernel-language parser."""

import pytest

from repro.core import ast_nodes as ast
from repro.core.parser import parse
from repro.core.types import FLOAT, FLOAT2, FLOAT4, INT, ParamKind
from repro.errors import BrookSyntaxError


def parse_kernel(source):
    unit = parse(source)
    assert len(unit.kernels) >= 1
    return unit.kernels[0]


def parse_expr(expr_text):
    kernel = parse_kernel(
        f"kernel void f(float a<>, float lut[], out float o<>) {{ o = {expr_text}; }}"
    )
    stmt = kernel.body.statements[0]
    assert isinstance(stmt, ast.ExprStatement)
    assert isinstance(stmt.expr, ast.Assignment)
    return stmt.expr.value


class TestSignatures:
    def test_simple_kernel(self):
        kernel = parse_kernel("kernel void f(float a<>, out float b<>) { b = a; }")
        assert kernel.name == "f"
        assert kernel.is_kernel and not kernel.is_reduction
        assert kernel.return_type.is_void

    def test_stream_parameter_kinds(self):
        kernel = parse_kernel(
            "kernel void f(float a<>, out float b<>, float c, float g[], "
            "float m[][], iter float it<>) { b = a; }"
        )
        kinds = {p.name: p.kind for p in kernel.params}
        assert kinds["a"] is ParamKind.STREAM
        assert kinds["b"] is ParamKind.OUT_STREAM
        assert kinds["c"] is ParamKind.SCALAR
        assert kinds["g"] is ParamKind.GATHER
        assert kinds["m"] is ParamKind.GATHER
        assert kinds["it"] is ParamKind.ITERATOR

    def test_gather_rank(self):
        kernel = parse_kernel(
            "kernel void f(float g[], float m[][], out float b<>) { b = g[0]; }"
        )
        assert kernel.param("g").gather_rank == 1
        assert kernel.param("m").gather_rank == 2

    def test_gather_with_static_extent(self):
        kernel = parse_kernel(
            "kernel void f(float lut[256], out float b<>) { b = lut[0]; }"
        )
        assert kernel.param("lut").kind is ParamKind.GATHER

    def test_reduce_kernel(self):
        unit = parse("reduce void sum(float a<>, reduce float r) { r += a; }")
        kernel = unit.kernels[0]
        assert kernel.is_reduction
        assert kernel.reduce_params[0].name == "r"

    def test_reduce_stream_accumulator(self):
        unit = parse("reduce void sum(float a<>, reduce float r<>) { r += a; }")
        assert unit.kernels[0].reduce_params[0].name == "r"

    def test_helper_function(self):
        unit = parse("float sq(float x) { return x * x; }")
        assert len(unit.helpers) == 1
        assert unit.helpers[0].return_type == FLOAT

    def test_pointer_parameter_is_recorded(self):
        kernel = parse_kernel("kernel void f(float *p, out float b<>) { b = 0.0; }")
        assert kernel.param("p").is_pointer

    def test_vector_types(self):
        kernel = parse_kernel(
            "kernel void f(float4 a<>, float2 c, out float4 b<>) { b = a; }"
        )
        assert kernel.param("a").type == FLOAT4
        assert kernel.param("c").type == FLOAT2

    def test_multiple_functions(self):
        unit = parse(
            "float h(float x) { return x; }\n"
            "kernel void k1(float a<>, out float b<>) { b = a; }\n"
            "kernel void k2(float a<>, out float b<>) { b = h(a); }\n"
        )
        assert [f.name for f in unit.functions] == ["h", "k1", "k2"]
        assert unit.kernel("k2").name == "k2"
        with pytest.raises(KeyError):
            unit.kernel("missing")


class TestStatements:
    def test_declaration_with_initialiser(self):
        kernel = parse_kernel(
            "kernel void f(float a<>, out float b<>) { float x = a * 2.0; b = x; }"
        )
        decl = kernel.body.statements[0]
        assert isinstance(decl, ast.DeclStatement)
        assert decl.name == "x"
        assert decl.decl_type == FLOAT

    def test_multi_declaration_splits(self):
        kernel = parse_kernel(
            "kernel void f(float a<>, out float b<>) { float x = 1.0, y = 2.0; b = x + y; }"
        )
        block = kernel.body.statements[0]
        assert isinstance(block, ast.Block)
        assert len(block.statements) == 2

    def test_if_else(self):
        kernel = parse_kernel(
            "kernel void f(float a<>, out float b<>) {"
            " if (a > 0.0) { b = 1.0; } else { b = -1.0; } }"
        )
        stmt = kernel.body.statements[0]
        assert isinstance(stmt, ast.IfStatement)
        assert stmt.else_branch is not None

    def test_if_without_braces(self):
        kernel = parse_kernel(
            "kernel void f(float a<>, out float b<>) { if (a > 0.0) b = 1.0; else b = 0.0; }"
        )
        stmt = kernel.body.statements[0]
        assert isinstance(stmt.then_branch, ast.ExprStatement)

    def test_for_loop(self):
        kernel = parse_kernel(
            "kernel void f(float a<>, out float b<>) {"
            " float acc = 0.0;"
            " for (int i = 0; i < 8; i = i + 1) { acc += a; }"
            " b = acc; }"
        )
        loop = kernel.body.statements[1]
        assert isinstance(loop, ast.ForStatement)
        assert isinstance(loop.init, ast.DeclStatement)
        assert loop.init.decl_type == INT

    def test_for_loop_with_increment_operator(self):
        kernel = parse_kernel(
            "kernel void f(float a<>, out float b<>) {"
            " float acc = 0.0;"
            " for (int i = 0; i < 8; i++) { acc += a; }"
            " b = acc; }"
        )
        loop = kernel.body.statements[1]
        assert isinstance(loop.update, ast.Assignment)
        assert loop.update.op == "+="

    def test_while_loop(self):
        kernel = parse_kernel(
            "kernel void f(float a<>, out float b<>) {"
            " float i = 0.0; while (i < a) { i += 1.0; } b = i; }"
        )
        assert isinstance(kernel.body.statements[1], ast.WhileStatement)

    def test_do_while_loop(self):
        kernel = parse_kernel(
            "kernel void f(float a<>, out float b<>) {"
            " float i = 0.0; do { i += 1.0; } while (i < a); b = i; }"
        )
        assert isinstance(kernel.body.statements[1], ast.DoWhileStatement)

    def test_break_and_continue(self):
        kernel = parse_kernel(
            "kernel void f(float a<>, out float b<>) {"
            " b = 0.0;"
            " for (int i = 0; i < 8; i = i + 1) {"
            "   if (a < 0.0) { break; }"
            "   if (a > 10.0) { continue; }"
            "   b += 1.0;"
            " } }"
        )
        loop = kernel.body.statements[1]
        nodes = list(loop.walk())
        assert any(isinstance(n, ast.BreakStatement) for n in nodes)
        assert any(isinstance(n, ast.ContinueStatement) for n in nodes)

    def test_goto_is_parsed(self):
        kernel = parse_kernel(
            "kernel void f(float a<>, out float b<>) { goto end; b = a; }"
        )
        assert isinstance(kernel.body.statements[0], ast.GotoStatement)
        assert kernel.body.statements[0].label == "end"

    def test_return_statement(self):
        unit = parse("float h(float x) { return x + 1.0; }")
        ret = unit.helpers[0].body.statements[0]
        assert isinstance(ret, ast.ReturnStatement)
        assert ret.value is not None


class TestExpressions:
    def test_precedence_multiplication_before_addition(self):
        expr = parse_expr("a + a * 2.0")
        assert isinstance(expr, ast.BinaryOp)
        assert expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp)
        assert expr.right.op == "*"

    def test_parentheses_override_precedence(self):
        expr = parse_expr("(a + a) * 2.0")
        assert expr.op == "*"
        assert isinstance(expr.left, ast.BinaryOp)

    def test_comparison_and_logical(self):
        expr = parse_expr("a > 0.0 && a < 1.0")
        assert expr.op == "&&"
        assert expr.left.op == ">"
        assert expr.right.op == "<"

    def test_ternary(self):
        expr = parse_expr("a > 0.0 ? 1.0 : 2.0")
        assert isinstance(expr, ast.Conditional)

    def test_unary_negation(self):
        expr = parse_expr("-a")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "-"

    def test_call_with_arguments(self):
        expr = parse_expr("max(a, 2.0)")
        assert isinstance(expr, ast.CallExpr)
        assert expr.callee == "max"
        assert len(expr.args) == 2

    def test_vector_constructor(self):
        expr = parse_expr("float2(a, 1.0).x")
        assert isinstance(expr, ast.MemberExpr)
        assert isinstance(expr.base, ast.ConstructorExpr)
        assert expr.base.target_type == FLOAT2

    def test_indexof(self):
        expr = parse_expr("indexof(a).x")
        assert isinstance(expr.base, ast.IndexOfExpr)
        assert expr.base.stream == "a"

    def test_gather_indexing(self):
        expr = parse_expr("lut[a]")
        assert isinstance(expr, ast.IndexExpr)
        assert isinstance(expr.base, ast.Identifier)

    def test_chained_gather_indexing(self):
        expr = parse_expr("lut[1.0][2.0]")
        assert isinstance(expr, ast.IndexExpr)
        assert isinstance(expr.base, ast.IndexExpr)

    def test_compound_assignment(self):
        kernel = parse_kernel(
            "kernel void f(float a<>, out float b<>) { b = 0.0; b += a; }"
        )
        stmt = kernel.body.statements[1]
        assert stmt.expr.op == "+="

    def test_swizzle(self):
        expr = parse_expr("float4(a, a, a, a).wzyx.x")
        assert isinstance(expr, ast.MemberExpr)
        assert expr.member == "x"


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(BrookSyntaxError):
            parse("kernel void f(float a<>, out float b<>) { b = a }")

    def test_unterminated_block(self):
        with pytest.raises(BrookSyntaxError):
            parse("kernel void f(float a<>, out float b<>) { b = a;")

    def test_missing_parameter_type(self):
        with pytest.raises(BrookSyntaxError):
            parse("kernel void f(a<>, out float b<>) { b = a; }")

    def test_bad_expression(self):
        with pytest.raises(BrookSyntaxError):
            parse("kernel void f(float a<>, out float b<>) { b = * ; }")

    def test_error_mentions_location(self):
        with pytest.raises(BrookSyntaxError) as excinfo:
            parse("kernel void f(float a<>, out float b<>) {\n b = a }", "k.br")
        assert "k.br" in str(excinfo.value)


class TestRoundTrip:
    def test_to_source_reparses(self, sample_unit):
        regenerated = sample_unit.to_source()
        reparsed = parse(regenerated)
        assert [f.name for f in reparsed.functions] == \
            [f.name for f in sample_unit.functions]

    def test_to_source_preserves_parameter_kinds(self, sample_unit):
        reparsed = parse(sample_unit.to_source())
        for original, again in zip(sample_unit.functions, reparsed.functions):
            assert [p.kind for p in original.params] == [p.kind for p in again.params]

    def test_walk_visits_nested_nodes(self):
        kernel = parse_kernel(
            "kernel void f(float a<>, out float b<>) {"
            " if (a > 0.0) { for (int i = 0; i < 4; i = i + 1) { b += a; } } }"
        )
        node_types = {type(node).__name__ for node in kernel.walk()}
        assert {"IfStatement", "ForStatement", "Assignment"} <= node_types
