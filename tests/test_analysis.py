"""Unit tests for the static analyses (loop bounds, call graph, stack depth,
kernel resources, memory usage)."""

import pytest

from repro.core.analysis.call_graph import build_call_graph
from repro.core.analysis.loop_bounds import analyze_loop_bounds
from repro.core.analysis.memory_usage import (
    StreamDeclaration,
    estimate_memory_usage,
    padded_texture_extent,
)
from repro.core.analysis.resources import TargetLimits, estimate_resources
from repro.core.analysis.stack_depth import estimate_stack_depth
from repro.core.parser import parse
from repro.core.semantic import analyze
from repro.core.types import FLOAT, FLOAT4


def kernel_from(body, params="float a<>, out float o<>"):
    unit = parse(f"kernel void f({params}) {{ {body} }}")
    return unit.kernels[0]


class TestLoopBounds:
    def test_no_loops(self):
        analysis = analyze_loop_bounds(kernel_from("o = a;"))
        assert analysis.all_bounded
        assert analysis.max_total_iterations == 1

    def test_constant_counted_loop(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; for (int i = 0; i < 16; i = i + 1) { o += a; }"
        ))
        assert analysis.all_bounded
        assert analysis.loops[0].max_trip_count == 16

    def test_less_equal_loop(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; for (int i = 0; i <= 16; i = i + 1) { o += a; }"
        ))
        assert analysis.loops[0].max_trip_count == 17

    def test_step_greater_than_one(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; for (int i = 0; i < 16; i = i + 4) { o += a; }"
        ))
        assert analysis.loops[0].max_trip_count == 4

    def test_descending_loop(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; for (int i = 15; i >= 0; i = i - 1) { o += a; }"
        ))
        assert analysis.loops[0].max_trip_count == 16

    def test_increment_operator_loop(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; for (int i = 0; i < 8; i++) { o += a; }"
        ))
        assert analysis.loops[0].max_trip_count == 8

    def test_geometric_loop(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; for (int i = 1; i < 256; i = i * 2) { o += a; }"
        ))
        assert analysis.loops[0].max_trip_count == 8

    def test_nested_loops_multiply(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0;"
            "for (int i = 0; i < 4; i = i + 1) {"
            "  for (int j = 0; j < 8; j = j + 1) { o += a; } }"
        ))
        assert analysis.max_total_iterations == 32

    def test_parameter_bound_requires_declaration(self):
        kernel = kernel_from(
            "o = 0.0; for (int i = 0; i < n; i = i + 1) { o += a; }",
            params="float a<>, float n, out float o<>",
        )
        undeclared = analyze_loop_bounds(kernel)
        assert not undeclared.all_bounded
        declared = analyze_loop_bounds(kernel, {"n": 64})
        assert declared.all_bounded
        assert declared.loops[0].max_trip_count == 64

    def test_while_loop_is_unbounded(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; float i = 0.0; while (i < a) { i += 1.0; o += 1.0; }"
        ))
        assert not analysis.all_bounded
        assert analysis.max_total_iterations is None

    def test_do_while_is_unbounded(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; float i = 0.0; do { i += 1.0; } while (i < a); o = i;"
        ))
        assert not analysis.all_bounded

    def test_loop_stepping_away_from_limit(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; for (int i = 0; i < 8; i = i - 1) { o += a; }"
        ))
        assert not analysis.all_bounded

    def test_non_constant_step_is_unbounded(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; for (int i = 0; i < 8; i = i + i) { o += a; }"
        ))
        assert not analysis.all_bounded

    def test_unbounded_reason_is_reported(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; float i = 0.0; while (i < a) { i += 1.0; }"
        ))
        assert "trip count" in analysis.unbounded[0].reason


class TestCallGraph:
    def test_simple_call_chain(self):
        program = analyze(parse(
            "float leaf(float x) { return x; }\n"
            "float mid(float x) { return leaf(x); }\n"
            "kernel void f(float a<>, out float o<>) { o = mid(a); }"
        ))
        graph = build_call_graph(program)
        assert graph.callees("f") == ["mid"]
        assert graph.callees("mid") == ["leaf"]
        assert not graph.is_recursive
        assert graph.max_depth_from("f") == 3

    def test_direct_recursion_detected(self):
        program = analyze(parse(
            "float rec(float x) { return rec(x); }\n"
            "kernel void f(float a<>, out float o<>) { o = rec(a); }"
        ))
        graph = build_call_graph(program)
        assert graph.is_recursive
        assert "rec" in graph.recursive_functions()
        assert graph.max_depth_from("f") is None

    def test_mutual_recursion_detected(self):
        program = analyze(parse(
            "float even(float x) { return odd(x - 1.0); }\n"
            "float odd(float x) { return even(x - 1.0); }\n"
            "kernel void f(float a<>, out float o<>) { o = even(a); }"
        ))
        graph = build_call_graph(program)
        assert {"even", "odd"} <= graph.recursive_functions()

    def test_kernel_without_calls(self):
        program = analyze(parse(
            "kernel void f(float a<>, out float o<>) { o = a; }"
        ))
        graph = build_call_graph(program)
        assert graph.max_depth_from("f") == 1


class TestStackDepth:
    def test_leaf_kernel_bounded(self):
        program = analyze(parse(
            "kernel void f(float a<>, out float o<>) { float x = a; o = x; }"
        ))
        report = estimate_stack_depth(program, "f")
        assert report.is_bounded
        assert report.max_stack_bytes > 0
        assert report.worst_chain == ["f"]

    def test_helper_chain_adds_frames(self):
        program = analyze(parse(
            "float leaf(float x) { float y = x; return y; }\n"
            "float mid(float x) { return leaf(x) + 1.0; }\n"
            "kernel void f(float a<>, out float o<>) { o = mid(a); }"
        ))
        deep = estimate_stack_depth(program, "f")
        assert deep.worst_chain == ["f", "mid", "leaf"]
        shallow_program = analyze(parse(
            "kernel void f(float a<>, out float o<>) { o = a; }"
        ))
        shallow = estimate_stack_depth(shallow_program, "f")
        assert deep.max_stack_bytes > shallow.max_stack_bytes

    def test_recursion_is_unbounded(self):
        program = analyze(parse(
            "float rec(float x) { return rec(x); }\n"
            "kernel void f(float a<>, out float o<>) { o = rec(a); }"
        ))
        report = estimate_stack_depth(program, "f")
        assert not report.is_bounded


class TestResources:
    def test_input_output_counts(self):
        kernel = parse(
            "kernel void f(float a<>, float b<>, float lut[], float s,"
            " out float o<>) { o = a + b + lut[s]; }"
        ).kernels[0]
        resources = estimate_resources(kernel)
        assert resources.input_streams == 2
        assert resources.gather_arrays == 1
        assert resources.output_streams == 1
        assert resources.scalar_constants == 1
        assert resources.total_sampler_inputs == 3

    def test_gather_fetch_counted(self):
        kernel = kernel_from("o = a;", "float a<>, float lut[], out float o<>")
        resources = estimate_resources(kernel)
        assert resources.texture_fetches_per_element >= 1  # positional stream

    def test_loop_multiplies_flops(self):
        kernel_small = kernel_from(
            "o = 0.0; for (int i = 0; i < 2; i = i + 1) { o += a * a; }"
        )
        kernel_large = kernel_from(
            "o = 0.0; for (int i = 0; i < 200; i = i + 1) { o += a * a; }"
        )
        small = estimate_resources(kernel_small, analyze_loop_bounds(kernel_small))
        large = estimate_resources(kernel_large, analyze_loop_bounds(kernel_large))
        assert large.flops_per_element > small.flops_per_element * 10

    def test_fits_minimal_gles2_limits(self):
        kernel = kernel_from("o = a * 2.0;")
        resources = estimate_resources(kernel)
        assert resources.fits(TargetLimits()) == []

    def test_too_many_outputs_reported(self):
        kernel = parse(
            "kernel void f(float a<>, out float o1<>, out float o2<>) {"
            " o1 = a; o2 = a; }"
        ).kernels[0]
        problems = estimate_resources(kernel).fits(TargetLimits(max_kernel_outputs=1))
        assert any("output" in p for p in problems)

    def test_too_many_inputs_reported(self):
        params = ", ".join(f"float s{i}<>" for i in range(10)) + ", out float o<>"
        body = "o = " + " + ".join(f"s{i}" for i in range(10)) + ";"
        kernel = kernel_from(body, params)
        problems = estimate_resources(kernel).fits(TargetLimits(max_kernel_inputs=8))
        assert any("texture units" in p for p in problems)

    def test_instruction_limit_reported(self):
        body = "o = a;" + "o = o * 1.0001 + 0.1;" * 300
        kernel = kernel_from(body)
        problems = estimate_resources(kernel).fits(TargetLimits(max_instructions=100))
        assert any("instructions" in p for p in problems)


class TestMemoryUsage:
    def test_power_of_two_padding(self):
        limits = TargetLimits(requires_power_of_two=True)
        assert padded_texture_extent(100, 100, limits) == (128, 128)
        assert padded_texture_extent(128, 64, limits) == (128, 64)

    def test_square_padding(self):
        limits = TargetLimits(requires_power_of_two=True, requires_square_textures=True)
        assert padded_texture_extent(100, 30, limits) == (128, 128)

    def test_no_padding_on_capable_devices(self):
        limits = TargetLimits(requires_power_of_two=False)
        assert padded_texture_extent(100, 30, limits) == (100, 30)

    def test_total_bytes_accounts_padding(self):
        report = estimate_memory_usage(
            [StreamDeclaration("s", (100, 100), FLOAT)],
            TargetLimits(requires_power_of_two=True),
        )
        assert report.per_stream_bytes["s"] == 128 * 128 * 4
        assert report.total_bytes == 128 * 128 * 4

    def test_vector_elements_use_more_texels(self):
        scalar = estimate_memory_usage([StreamDeclaration("s", (64, 64), FLOAT)])
        vector = estimate_memory_usage([StreamDeclaration("s", (64, 64), FLOAT4)])
        assert vector.total_bytes == 4 * scalar.total_bytes

    def test_reduction_scratch_doubles(self):
        base = estimate_memory_usage([StreamDeclaration("s", (64, 64), FLOAT)])
        with_scratch = estimate_memory_usage(
            [StreamDeclaration("s", (64, 64), FLOAT, reduction_scratch=True)]
        )
        assert with_scratch.total_bytes == 3 * base.total_bytes

    def test_oversized_stream_is_flagged(self):
        report = estimate_memory_usage(
            [StreamDeclaration("s", (4096, 4096), FLOAT)],
            TargetLimits(max_texture_size=2048),
        )
        assert not report.is_certifiable
        assert any("exceeds the maximum texture size" in p for p in report.problems)

    def test_3d_stream_flattens_to_2d(self):
        report = estimate_memory_usage(
            [StreamDeclaration("s", (4, 8, 16), FLOAT)],
            TargetLimits(requires_power_of_two=True),
        )
        assert report.per_stream_bytes["s"] == 32 * 16 * 4

    def test_mebibyte_helper(self):
        report = estimate_memory_usage([StreamDeclaration("s", (512, 512), FLOAT)])
        assert report.total_mebibytes == pytest.approx(1.0)


class TestEvalConst:
    """Direct coverage of the constant folder feeding loop bounds (and,
    through them, the WCET analysis)."""

    def _eval(self, expr, env=None):
        from repro.core import ast_nodes as ast
        from repro.core.analysis.loop_bounds import _eval_const

        self.ast = ast
        return _eval_const(expr, env or {})

    def _nodes(self):
        from repro.core import ast_nodes as ast
        return ast

    def test_literal_and_identifier(self):
        ast = self._nodes()
        assert self._eval(ast.NumberLiteral(value=3)) == 3.0
        assert self._eval(ast.Identifier(name="n"), {"n": 7}) == 7.0
        assert self._eval(ast.Identifier(name="missing"), {"n": 7}) is None

    def test_unary_operators(self):
        ast = self._nodes()
        assert self._eval(ast.UnaryOp(op="-", operand=ast.NumberLiteral(value=4))) == -4.0
        assert self._eval(ast.UnaryOp(op="!", operand=ast.NumberLiteral(value=0))) == 1.0
        assert self._eval(ast.UnaryOp(op="!", operand=ast.NumberLiteral(value=3))) == 0.0
        assert self._eval(
            ast.UnaryOp(op="-", operand=ast.Identifier(name="missing"))) is None

    def test_binary_arithmetic(self):
        ast = self._nodes()

        def binop(op, left, right):
            return ast.BinaryOp(op=op, left=ast.NumberLiteral(value=left),
                                right=ast.NumberLiteral(value=right))

        assert self._eval(binop("+", 2, 3)) == 5.0
        assert self._eval(binop("-", 2, 3)) == -1.0
        assert self._eval(binop("*", 2, 3)) == 6.0
        assert self._eval(binop("/", 7, 2)) == 3.5
        assert self._eval(binop("%", 7, 4)) == 3.0

    def test_division_and_modulo_by_zero_are_not_constant(self):
        ast = self._nodes()
        zero_div = ast.BinaryOp(op="/", left=ast.NumberLiteral(value=1),
                                right=ast.NumberLiteral(value=0))
        zero_mod = ast.BinaryOp(op="%", left=ast.NumberLiteral(value=1),
                                right=ast.NumberLiteral(value=0))
        assert self._eval(zero_div) is None
        assert self._eval(zero_mod) is None

    def test_min_max_calls(self):
        ast = self._nodes()
        expr = ast.CallExpr(callee="min", args=[
            ast.Identifier(name="n"), ast.NumberLiteral(value=32)])
        assert self._eval(expr, {"n": 64}) == 32.0
        expr_max = ast.CallExpr(callee="max", args=[
            ast.Identifier(name="n"), ast.NumberLiteral(value=32)])
        assert self._eval(expr_max, {"n": 64}) == 64.0
        # A non-constant argument poisons the whole call.
        assert self._eval(expr) is None

    def test_other_calls_are_not_constant(self):
        ast = self._nodes()
        expr = ast.CallExpr(callee="sqrt", args=[ast.NumberLiteral(value=4)])
        assert self._eval(expr) is None

    def test_env_propagates_through_nested_expressions(self):
        ast = self._nodes()
        # (n + 2) * 2 with n = 3  ->  10
        expr = ast.BinaryOp(
            op="*",
            left=ast.BinaryOp(op="+", left=ast.Identifier(name="n"),
                              right=ast.NumberLiteral(value=2)),
            right=ast.NumberLiteral(value=2),
        )
        assert self._eval(expr, {"n": 3}) == 10.0


class TestLoopBoundEdgeCases:
    """Edge cases of the for-loop trip-count derivation that the WCET
    analysis leans on."""

    def test_constant_expression_limit(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; for (int i = 0; i < 4 * 4; i = i + 1) { o += a; }"
        ))
        assert analysis.loops[0].max_trip_count == 16

    def test_min_call_limit_with_parameter_bound(self):
        kernel = kernel_from(
            "o = 0.0; for (int i = 0; i < min(n, 32.0); i = i + 1) { o += a; }",
            params="float a<>, float n, out float o<>",
        )
        analysis = analyze_loop_bounds(kernel, {"n": 64})
        assert analysis.loops[0].max_trip_count == 32

    def test_negative_start(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; for (int i = -4; i < 4; i++) { o += a; }"
        ))
        assert analysis.loops[0].max_trip_count == 8

    def test_variable_on_right_of_condition(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; for (int i = 0; 16 > i; i = i + 1) { o += a; }"
        ))
        assert analysis.loops[0].max_trip_count == 16

    def test_not_equal_condition_counts_like_less_than(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; for (int i = 0; i != 8; i = i + 1) { o += a; }"
        ))
        assert analysis.loops[0].max_trip_count == 8

    def test_descending_with_stride(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; for (int i = 8; i > 0; i = i - 2) { o += a; }"
        ))
        assert analysis.loops[0].max_trip_count == 4

    def test_geometric_compound_assignment(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; for (int i = 1; i < 256; i *= 2) { o += a; }"
        ))
        assert analysis.loops[0].max_trip_count == 8

    def test_geometric_factor_on_left(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; for (int i = 1; i < 256; i = 2 * i) { o += a; }"
        ))
        assert analysis.loops[0].max_trip_count == 8

    def test_geometric_inclusive_limit(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; for (int i = 1; i <= 256; i = i * 2) { o += a; }"
        ))
        assert analysis.loops[0].max_trip_count == 9

    def test_geometric_factor_of_one_is_unbounded(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; for (int i = 1; i < 256; i = i * 1) { o += a; }"
        ))
        assert not analysis.all_bounded
        assert "not a constant step" in analysis.loops[0].reason

    def test_geometric_zero_start_is_unbounded(self):
        analysis = analyze_loop_bounds(kernel_from(
            "o = 0.0; for (int i = 0; i < 256; i = i * 2) { o += a; }"
        ))
        assert not analysis.all_bounded

    def test_geometric_trip_cap(self):
        kernel = kernel_from(
            "o = 0.0; for (int i = 1; i < n; i = i * 2) { o += a; }",
            params="float a<>, float n, out float o<>",
        )
        analysis = analyze_loop_bounds(kernel, {"n": 1e30})
        assert analysis.loops[0].max_trip_count == 64

    def test_parameter_bound_step(self):
        kernel = kernel_from(
            "o = 0.0; for (int i = 0; i < 16; i = i + n) { o += a; }",
            params="float a<>, float n, out float o<>",
        )
        analysis = analyze_loop_bounds(kernel, {"n": 4})
        assert analysis.loops[0].max_trip_count == 4

    def test_nested_loops_with_parameter_bounds(self):
        kernel = kernel_from(
            "o = 0.0;"
            "for (int i = 0; i < n; i = i + 1) {"
            "  for (int j = 0; j < m; j = j + 1) { o += a; } }",
            params="float a<>, float n, float m, out float o<>",
        )
        analysis = analyze_loop_bounds(kernel, {"n": 4, "m": 8})
        assert analysis.all_bounded
        assert analysis.max_total_iterations == 32

    def test_unbounded_reason_mentions_kernel_bounds(self):
        kernel = kernel_from(
            "o = 0.0; for (int i = 0; i < n; i = i + 1) { o += a; }",
            params="float a<>, float n, out float o<>",
        )
        analysis = analyze_loop_bounds(kernel)
        assert "KernelBounds" in analysis.loops[0].reason
