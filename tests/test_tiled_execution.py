"""Tests for the tiled execution engine (streams beyond the texture limit).

Covers the tile geometry, the per-backend :class:`TiledStorage`, tiled
kernel launches / reductions / fused pipelines, the ``tiles=N`` launch
records with their GPU-model pricing, and the satellite behaviours that
ride along: 1-D folding, the int-scalar truncation guard, in-place
launches and odd-extent RGBA8 reductions.

Most tests run against a deliberately tiny OpenGL ES 2 device
(``max_texture_size=16``) so tiling kicks in on small, fast domains; the
acceptance-scale shapes from the issue - ``(4096,)`` and ``(3000, 3000)``
on VideoCore IV limits - are exercised once at the end.
"""

import numpy as np
import pytest

from repro.backends.gles2_backend import GLES2Backend
from repro.core.analysis.memory_usage import StreamDeclaration, estimate_memory_usage
from repro.core.analysis.resources import TargetLimits
from repro.core.analysis.tiling import folded_layout, tile_grid, tiled_texture_bytes
from repro.errors import KernelLaunchError
from repro.gles2.device import GPUDeviceProfile
from repro.gles2.limits import GLES2Limits
from repro.runtime import BrookRuntime, StreamShape, TiledStorage
from repro.runtime.tiling import TilePlan
from repro.timing.gpu_model import GPUCostParameters, GPUModel, GPUWorkload

SAXPY = ("kernel void saxpy(float a, float x<>, float y<>, out float r<>) {"
         " r = a * x + y; }")
INDEXED = ("kernel void indexed(float x<>, out float r<>) {"
           " float2 p = indexof(r); r = x + p.x * 10.0 + p.y; }")
GATHERING = ("kernel void smear(float a<>, float lut[], out float o<>) {"
             " o = a + lut[indexof(a).x]; }")
TOTAL = "reduce void total(float v<>, reduce float acc) { acc += v; }"
SCALE = "kernel void scale(float g, float x<>, out float r<>) { r = g * x; }"
SHIFT = ("kernel void shift(float x<>, int n, out float r<>) {"
         " r = x + float(n); }")


def tiny_gles2_runtime(max_texture_size: int = 16) -> BrookRuntime:
    """A GL ES 2 runtime whose device tiles at a toy texture limit."""
    profile = GPUDeviceProfile(
        name=f"tiny-{max_texture_size}",
        limits=GLES2Limits(name=f"tiny-{max_texture_size}",
                           max_texture_size=max_texture_size),
        effective_gflops=1.0,
        transfer_gib_per_s=1.0,
        pass_overhead_us=100.0,
        texture_fetch_ns=2.0,
        fill_rate_mpixels=100.0,
    )
    return BrookRuntime(backend=GLES2Backend(profile))


def cpu_reference(source, kernel, inputs, scalars, shape):
    with BrookRuntime(backend="cpu") as rt:
        module = rt.compile(source)
        handles = [rt.stream_from(data) for data in inputs]
        out = rt.stream(shape)
        module.kernel(kernel)(*scalars, *handles, out)
        return out.read()


LIMITS_2048 = TargetLimits(max_texture_size=2048, requires_power_of_two=True)


# --------------------------------------------------------------------------- #
# Geometry
# --------------------------------------------------------------------------- #
class TestTileGeometry:
    def test_long_1d_row_folds_exactly(self):
        assert folded_layout((1, 4096), LIMITS_2048) == (2, 2048)
        assert folded_layout((1, 3000), LIMITS_2048) == (2, 1500)
        assert folded_layout((1, 6144), LIMITS_2048) == (3, 2048)

    def test_fitting_and_multirow_layouts_stay(self):
        assert folded_layout((1, 2048), LIMITS_2048) == (1, 2048)
        assert folded_layout((1, 16), LIMITS_2048) == (1, 16)
        assert folded_layout((3000, 3000), LIMITS_2048) == (3000, 3000)

    def test_prime_count_cannot_fold(self):
        assert folded_layout((1, 4099), LIMITS_2048) == (1, 4099)

    def test_tile_grid_partitions_without_overlap(self):
        tiles = tile_grid((3000, 3000), LIMITS_2048)
        assert len(tiles) == 4
        assert sum(t.element_count for t in tiles) == 3000 * 3000
        assert {(t.rows, t.cols) for t in tiles} == \
            {(2048, 2048), (2048, 952), (952, 2048), (952, 952)}
        assert all(t.rows <= 2048 and t.cols <= 2048 for t in tiles)

    def test_single_tile_for_fitting_layout(self):
        tiles = tile_grid((64, 64), LIMITS_2048)
        assert len(tiles) == 1
        assert (tiles[0].rows, tiles[0].cols) == (64, 64)

    def test_tiled_bytes_match_single_texture_when_fitting(self):
        assert tiled_texture_bytes((60, 60), LIMITS_2048) == 64 * 64 * 4

    def test_tiled_bytes_sum_padded_tiles(self):
        # (2049, 2049) -> tiles 2048x2048, 2048x1, 1x2048, 1x1 (pot-padded).
        expected = (2048 * 2048 + 2048 * 1 + 1 * 2048 + 1 * 1) * 4
        assert tiled_texture_bytes((2049, 2049), LIMITS_2048) == expected


class TestTilePlan:
    def test_trivial_plan(self):
        plan = TilePlan.for_shape(StreamShape.of((8, 8)), LIMITS_2048)
        assert plan.is_trivial
        assert plan.tile_count == 1

    def test_folded_single_tile_plan_is_not_trivial(self):
        plan = TilePlan.for_shape(StreamShape.of((4096,)), LIMITS_2048)
        assert not plan.is_trivial
        assert plan.tile_count == 1
        assert plan.folded == (2, 2048)

    def test_fold_slice_stitch_roundtrip(self):
        limits = TargetLimits(max_texture_size=16)
        plan = TilePlan.for_shape(StreamShape.of((20, 37)), limits)
        data = np.arange(20 * 37, dtype=np.float32).reshape(20, 37)
        folded = plan.fold(data)
        blocks = [plan.slice(folded, tile) for tile in plan.tiles]
        restored = plan.unfold(plan.stitch(blocks))
        np.testing.assert_array_equal(restored, data)

    def test_tile_index_positions_are_global(self):
        limits = TargetLimits(max_texture_size=16)
        shape = StreamShape.of((40,))
        plan = TilePlan.for_shape(shape, limits)
        collected = np.concatenate(
            [plan.tile_index_positions(tile) for tile in plan.tiles])
        # Folding maps elements row-major, so concatenating the per-tile
        # positions in tile order recovers every logical position once.
        reference = shape.element_positions()
        assert {tuple(p) for p in collected} == {tuple(p) for p in reference}


# --------------------------------------------------------------------------- #
# Storage
# --------------------------------------------------------------------------- #
class TestTiledStorage:
    def test_folded_1d_stream_fits_one_texture(self, gles2_runtime):
        stream = gles2_runtime.stream((4096,))
        storage = stream.storage
        assert isinstance(storage, TiledStorage)
        assert storage.tile_count == 1
        assert storage.tiles[0].texture.width == 2048
        assert storage.tiles[0].texture.height == 2

    def test_2d_stream_tiles_on_gles2(self, gles2_runtime):
        stream = gles2_runtime.stream((3000, 3000))
        assert isinstance(stream.storage, TiledStorage)
        assert stream.storage.tile_count == 4

    def test_write_read_roundtrip_tiled(self):
        rt = tiny_gles2_runtime()
        data = np.random.default_rng(0).uniform(-5, 5, (20, 37)) \
            .astype(np.float32)
        stream = rt.stream_from(data)
        assert isinstance(stream.storage, TiledStorage)
        np.testing.assert_array_equal(stream.read(), data)
        np.testing.assert_array_equal(stream.peek(), data)

    def test_release_frees_every_tile_texture(self):
        rt = tiny_gles2_runtime()
        stream = rt.stream((64, 64))
        assert rt.device_memory_in_use() > 0
        stream.release()
        assert rt.device_memory_in_use() == 0

    def test_cal_folds_long_1d_stream(self, cal_runtime):
        data = np.random.default_rng(1).uniform(-1, 1, (5000,)) \
            .astype(np.float32)
        stream = cal_runtime.stream_from(data)
        assert isinstance(stream.storage, TiledStorage)
        assert stream.storage.plan.folded == (2, 2500)
        np.testing.assert_array_equal(stream.read(), data)

    def test_cpu_never_tiles(self, cpu_runtime):
        stream = cpu_runtime.stream((4096,))
        assert not isinstance(stream.storage, TiledStorage)

    def test_cpu_launches_domains_beyond_any_texture_limit(self, cpu_runtime):
        """Tiled dispatch keys on the storage, not the domain size: the
        CPU backend keeps running huge domains in a single pass."""
        shape = (131072,)
        module = cpu_runtime.compile(SCALE)
        x = cpu_runtime.stream_from(np.ones(shape, dtype=np.float32))
        out = cpu_runtime.stream(shape)
        module.scale(2.0, x, out)
        np.testing.assert_allclose(out.read(), 2.0)
        assert cpu_runtime.statistics.launches[-1].tiles == 1

    def test_device_view_is_cached_until_written(self):
        rt = tiny_gles2_runtime()
        stream = rt.stream_from(np.zeros((20, 37), dtype=np.float32))
        backend = rt.backend
        first = backend.device_view(stream.storage)
        assert backend.device_view(stream.storage) is first
        stream.fill(1.0)
        assert backend.device_view(stream.storage) is not first
        np.testing.assert_allclose(stream.peek(), 1.0)

    def test_memory_report_agrees_with_device_memory(self):
        rt = tiny_gles2_runtime()
        stream = rt.stream((20, 37), name="big")
        report = rt.memory_usage_report()
        assert not stream.released
        assert report.per_stream_bytes["big"] == rt.device_memory_in_use()

    def test_memory_report_flags_tiled_stream(self):
        report = estimate_memory_usage(
            [StreamDeclaration("s", (3000, 3000), __import__(
                "repro.core.types", fromlist=["FLOAT"]).FLOAT)],
            LIMITS_2048,
        )
        assert not report.is_certifiable
        assert any("tiles it across 4 textures" in p for p in report.problems)

    def test_folded_1d_stream_is_certifiable(self):
        from repro.core.types import FLOAT
        report = estimate_memory_usage(
            [StreamDeclaration("s", (4096,), FLOAT)], LIMITS_2048)
        assert report.is_certifiable


# --------------------------------------------------------------------------- #
# Tiled launches
# --------------------------------------------------------------------------- #
class TestTiledLaunch:
    @pytest.mark.parametrize("shape", [(70,), (33,), (20, 37), (17, 16),
                                       (4, 5, 6)])
    def test_map_kernel_bit_identical_to_cpu(self, shape):
        rng = np.random.default_rng(7)
        x = rng.uniform(-10, 10, shape).astype(np.float32)
        y = rng.uniform(-10, 10, shape).astype(np.float32)
        rt = tiny_gles2_runtime()
        module = rt.compile(SAXPY)
        out = rt.stream(shape)
        module.saxpy(2.5, rt.stream_from(x), rt.stream_from(y), out)
        expected = cpu_reference(SAXPY, "saxpy", [x, y], [2.5], shape)
        np.testing.assert_array_equal(
            out.read().view(np.uint32), expected.view(np.uint32))

    @pytest.mark.parametrize("shape", [(70,), (20, 37)])
    def test_indexof_reports_global_positions(self, shape):
        rng = np.random.default_rng(8)
        x = rng.uniform(0, 1, shape).astype(np.float32)
        rt = tiny_gles2_runtime()
        module = rt.compile(INDEXED)
        out = rt.stream(shape)
        module.indexed(rt.stream_from(x), out)
        expected = cpu_reference(INDEXED, "indexed", [x], [], shape)
        np.testing.assert_array_equal(
            out.read().view(np.uint32), expected.view(np.uint32))

    def test_gather_through_tiled_stream(self):
        shape = (41,)  # prime: cannot fold, spans three 16-wide tiles
        rng = np.random.default_rng(9)
        a = rng.uniform(0, 1, shape).astype(np.float32)
        lut = rng.uniform(0, 1, shape).astype(np.float32)
        rt = tiny_gles2_runtime()
        module = rt.compile(GATHERING)
        out = rt.stream(shape)
        module.smear(rt.stream_from(a), rt.stream_from(lut), out)
        with BrookRuntime(backend="cpu") as cpu:
            m = cpu.compile(GATHERING)
            ref = cpu.stream(shape)
            m.smear(cpu.stream_from(a), cpu.stream_from(lut), ref)
            expected = ref.read()
        np.testing.assert_array_equal(
            out.read().view(np.uint32), expected.view(np.uint32))

    def test_launch_record_carries_tile_count(self):
        rt = tiny_gles2_runtime()
        module = rt.compile(SAXPY)
        x = rt.stream_from(np.ones((20, 37), dtype=np.float32))
        y = rt.stream_from(np.ones((20, 37), dtype=np.float32))
        out = rt.stream((20, 37))
        module.saxpy(1.0, x, y, out)
        record = rt.statistics.launches[-1]
        assert record.tiles == 2 * 3  # ceil(20/16) x ceil(37/16)
        assert record.passes == 6
        assert record.elements == 20 * 37
        assert rt.statistics.extra_tiles == 5
        assert rt.statistics.summary()["extra_tiles"] == 5

    def test_untiled_launch_records_one_tile(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        module.saxpy(1.0, x, x, out)
        assert cpu_runtime.statistics.launches[-1].tiles == 1
        assert cpu_runtime.statistics.extra_tiles == 0

    def test_mismatched_input_shape_rejected_when_tiled(self):
        rt = tiny_gles2_runtime()
        module = rt.compile(SAXPY)
        x = rt.stream_from(np.ones((40,), dtype=np.float32))
        y_small = rt.stream_from(np.ones((8,), dtype=np.float32))
        out = rt.stream((40,))
        with pytest.raises(KernelLaunchError, match="tiled layout"):
            module.saxpy(1.0, x, y_small, out)

    def test_queue_flush_tiles_transparently(self):
        rt = tiny_gles2_runtime()
        module = rt.compile(SAXPY)
        x = rt.stream_from(np.full((41,), 2.0, dtype=np.float32))
        mid = rt.stream((41,))
        out = rt.stream((41,))
        with rt.queue() as q:
            module.saxpy(1.0, x, x, mid)
            module.saxpy(0.5, mid, x, out)
        assert q.flushed_launches == 2
        np.testing.assert_allclose(out.read(), 0.5 * 4.0 + 2.0)
        assert all(r.tiles == 3 for r in rt.statistics.launches)


# --------------------------------------------------------------------------- #
# Tiled reductions
# --------------------------------------------------------------------------- #
class TestTiledReduction:
    @pytest.mark.parametrize("shape", [(41,), (33, 21), (20, 37)])
    def test_tiled_reduce_matches_numpy(self, shape):
        rng = np.random.default_rng(11)
        data = rng.uniform(0, 1, shape).astype(np.float32)
        rt = tiny_gles2_runtime()
        module = rt.compile(TOTAL)
        value = module.total(rt.stream_from(data))
        assert value == pytest.approx(float(data.sum()), rel=1e-4)
        record = rt.statistics.launches[-1]
        assert record.reduction
        assert record.tiles > 1

    def test_reduce_into_tiled_input(self):
        rt = tiny_gles2_runtime()
        module = rt.compile(TOTAL)
        data = np.arange(32 * 32, dtype=np.float32).reshape(32, 32) / 1024.0
        acc = rt.stream((2, 2))
        module.total(rt.stream_from(data), acc)
        blocks = data.reshape(2, 16, 2, 16).sum(axis=(1, 3))
        np.testing.assert_allclose(acc.read(), blocks, rtol=1e-3)

    def test_reduce_into_tiled_output_rejected(self):
        rt = tiny_gles2_runtime()
        module = rt.compile(TOTAL)
        big_in = rt.stream((64, 64))
        tiled_out = rt.stream((32, 32))  # exceeds the 16-texel limit itself
        with pytest.raises(KernelLaunchError, match="texture limit"):
            module.total(big_in, tiled_out)

    @pytest.mark.parametrize("shape", [(7,), (13, 5), (3, 17), (7, 11)])
    def test_odd_extent_rgba8_reduction(self, shape, gles2_runtime, rng):
        """Odd / non-power-of-two extents through the RGBA8-quantized
        multipass reduction path (previously untested behaviour)."""
        data = rng.uniform(0, 2, shape).astype(np.float32)
        module = gles2_runtime.compile(TOTAL)
        value = module.total(gles2_runtime.stream_from(data))
        assert value == pytest.approx(float(data.sum()), rel=1e-4)


# --------------------------------------------------------------------------- #
# Fusion composes with tiling
# --------------------------------------------------------------------------- #
class TestTiledFusion:
    PIPELINE = SAXPY + "\n" + \
        "kernel void offset(float x<>, float b, out float r<>) { r = x + b; }"

    def test_fused_pipeline_tiles(self):
        rt = tiny_gles2_runtime()
        module = rt.compile(self.PIPELINE)
        shape = (41,)  # prime: tiles instead of folding
        x = rt.stream_from(np.full(shape, 3.0, dtype=np.float32))
        mid = rt.stream(shape)
        out = rt.stream(shape)
        pipeline = rt.fuse([
            module.saxpy.bind(2.0, x, x, mid),
            module.offset.bind(mid, 1.0, out),
        ])
        assert pipeline.pass_count == 1
        pipeline.launch()
        np.testing.assert_allclose(out.read(), 2.0 * 3.0 + 3.0 + 1.0)
        record = rt.statistics.launches[-1]
        assert record.fused == 2
        assert record.tiles == 3
        assert record.passes == 3

    def test_fusing_queue_tiles(self):
        rt = tiny_gles2_runtime()
        module = rt.compile(self.PIPELINE)
        shape = (41,)
        x = rt.stream_from(np.full(shape, 1.0, dtype=np.float32))
        mid = rt.stream(shape)
        out = rt.stream(shape)
        with rt.queue(fuse=True):
            module.saxpy(1.0, x, x, mid)
            module.offset(mid, 5.0, out)
        np.testing.assert_allclose(out.read(), 2.0 + 5.0)
        assert rt.statistics.launches[-1].fused == 2


# --------------------------------------------------------------------------- #
# Timing model integration
# --------------------------------------------------------------------------- #
class TestTilingOverheadPricing:
    PARAMS = GPUCostParameters(
        name="t", effective_gflops=1.0, transfer_gib_per_s=1.0,
        pass_overhead_us=100.0, texture_fetch_ns=1.0, fill_rate_mpixels=100.0,
        tile_switch_overhead_us=50.0,
    )

    def test_tiling_overhead_term(self):
        model = GPUModel(self.PARAMS)
        assert model.tiling_overhead(0) == 0.0
        assert model.tiling_overhead(4) == pytest.approx(4 * 50.0e-6)
        with pytest.raises(Exception):
            model.tiling_overhead(-1)

    def test_workload_picks_up_tile_switches(self):
        rt = tiny_gles2_runtime()
        module = rt.compile(SAXPY)
        x = rt.stream_from(np.ones((41,), dtype=np.float32))
        out = rt.stream((41,))
        module.saxpy(1.0, x, x, out)
        workload = GPUWorkload.from_statistics(rt.statistics)
        assert workload.tile_switches == 2
        model = GPUModel(self.PARAMS)
        untiled = GPUWorkload(**{**vars(workload), "tile_switches": 0})
        assert model.kernel_time(workload) == pytest.approx(
            model.kernel_time(untiled) + model.tiling_overhead(2))


# --------------------------------------------------------------------------- #
# Satellite: in-place launches
# --------------------------------------------------------------------------- #
class TestInPlaceLaunches:
    @pytest.mark.parametrize("backend", ["cpu", "gles2"])
    def test_in_place_map_kernel(self, backend):
        rng = np.random.default_rng(13)
        data = rng.uniform(-4, 4, (6, 9)).astype(np.float32)
        rt = BrookRuntime(backend=backend)
        module = rt.compile(SCALE)
        stream = rt.stream_from(data)
        module.scale(2.0, stream, stream)
        np.testing.assert_array_equal(
            stream.read().view(np.uint32),
            (np.float32(2.0) * data).view(np.uint32))

    def test_in_place_on_tiled_domain(self):
        data = np.arange(41, dtype=np.float32) + 1.0
        rt = tiny_gles2_runtime()
        module = rt.compile(SCALE)
        stream = rt.stream_from(data)
        module.scale(3.0, stream, stream)
        np.testing.assert_array_equal(stream.read(), 3.0 * data)


# --------------------------------------------------------------------------- #
# Satellite: int scalar truncation guard
# --------------------------------------------------------------------------- #
class TestIntScalarCoercion:
    def test_fractional_value_for_int_parameter_raises(self, cpu_runtime):
        module = cpu_runtime.compile(SHIFT)
        x = cpu_runtime.stream_from(np.zeros(4, dtype=np.float32))
        out = cpu_runtime.stream((4,))
        with pytest.raises(KernelLaunchError, match="'n'.*fractional"):
            module.shift(x, 2.7, out)

    def test_whole_float_accepted_for_int_parameter(self, cpu_runtime):
        module = cpu_runtime.compile(SHIFT)
        x = cpu_runtime.stream_from(np.zeros(4, dtype=np.float32))
        out = cpu_runtime.stream((4,))
        module.shift(x, 3.0, out)
        np.testing.assert_allclose(out.read(), 3.0)
        module.shift(x, np.int64(2), out)
        np.testing.assert_allclose(out.read(), 2.0)

    def test_fractional_float_parameter_still_fine(self, cpu_runtime):
        module = cpu_runtime.compile(SCALE)
        x = cpu_runtime.stream_from(np.ones(4, dtype=np.float32))
        out = cpu_runtime.stream((4,))
        module.scale(2.5, x, out)
        np.testing.assert_allclose(out.read(), 2.5)


# --------------------------------------------------------------------------- #
# Acceptance-scale shapes (the issue's scenarios, real device limits)
# --------------------------------------------------------------------------- #
class TestAcceptanceScale:
    def test_4096_vector_on_videocore(self, gles2_runtime):
        shape = (4096,)
        rng = np.random.default_rng(17)
        x = rng.uniform(-10, 10, shape).astype(np.float32)
        y = rng.uniform(-10, 10, shape).astype(np.float32)
        module = gles2_runtime.compile(SAXPY + "\n" + TOTAL)
        out = gles2_runtime.stream(shape)
        module.saxpy(2.0, gles2_runtime.stream_from(x),
                     gles2_runtime.stream_from(y), out)
        expected = cpu_reference(SAXPY, "saxpy", [x, y], [2.0], shape)
        np.testing.assert_array_equal(
            out.read().view(np.uint32), expected.view(np.uint32))
        value = module.total(gles2_runtime.stream_from(np.abs(x)))
        assert value == pytest.approx(float(np.abs(x).sum()), rel=1e-4)

    def test_3000_square_on_videocore(self, gles2_runtime):
        shape = (3000, 3000)
        rng = np.random.default_rng(19)
        x = rng.uniform(0, 10, shape).astype(np.float32)
        module = gles2_runtime.compile(SCALE + "\n" + TOTAL)
        stream = gles2_runtime.stream_from(x)
        out = gles2_runtime.stream(shape)
        module.scale(1.5, stream, out)
        expected = cpu_reference(SCALE, "scale", [x], [1.5], shape)
        np.testing.assert_array_equal(
            out.read().view(np.uint32), expected.view(np.uint32))
        assert gles2_runtime.statistics.launches[-1].tiles == 4
        value = module.total(stream)
        assert value == pytest.approx(float(x.sum()), rel=1e-3)


# --------------------------------------------------------------------------- #
# Gather snapshot semantics (regression lock)
# --------------------------------------------------------------------------- #
SHIFT_LEFT = (
    "kernel void shiftl(float src[][], float w, float h, out float dst<>) {"
    " float2 p = indexof(dst);"
    " dst = src[p.y][max(p.x - 1.0, 0.0)] + 1.0; }")
SHIFT_UP = (
    "kernel void shiftu(float src[][], float w, float h, out float dst<>) {"
    " float2 p = indexof(dst);"
    " dst = src[max(p.y - 1.0, 0.0)][p.x] * 2.0; }")
DOUBLE = "kernel void double_px(float x<>, out float y<>) { y = x * 2.0; }"


class TestGatherSnapshotSemantics:
    """``launch_tiled`` takes ONE gather snapshot per logical launch.

    For an in-place launch (the gather source is also the output
    stream) every tile pass must observe the pre-launch data, exactly
    as the untiled backends do - a later tile must never read an
    earlier tile's freshly written texels.  And a gather source written
    by an *earlier* launch of the same command-queue flush must be
    re-snapshot, not served from a stale memoised view.  These tests
    lock the audited behaviour against regressions (the shift
    directions are chosen so tile N+1 reads cells tile N already
    wrote - a stale or rebuilt snapshot changes the answer).
    """

    @pytest.mark.parametrize("source,kernel", [(SHIFT_LEFT, "shiftl"),
                                               (SHIFT_UP, "shiftu")])
    def test_in_place_tiled_gather_reads_pre_launch_snapshot(
            self, source, kernel):
        data = (np.arange(20 * 20, dtype=np.float32).reshape(20, 20) % 97)
        results = {}
        for label, limit in (("untiled", 64), ("tiled", 16)):
            with tiny_gles2_runtime(limit) as rt:
                module = rt.compile(source)
                stream = rt.stream_from(data, name="s")
                module.kernel(kernel)(stream, 20.0, 20.0, stream)
                results[label] = stream.read()
        np.testing.assert_array_equal(
            results["untiled"].view(np.uint32),
            results["tiled"].view(np.uint32))

    def test_gather_written_earlier_in_same_flush_is_fresh(self):
        data = (np.arange(20 * 20, dtype=np.float32).reshape(20, 20) % 53)
        results = {}
        for label, limit in (("untiled", 64), ("tiled", 16)):
            with tiny_gles2_runtime(limit) as rt:
                module = rt.compile(SHIFT_UP + DOUBLE)
                stream = rt.stream_from(data, name="s")
                out = rt.stream((20, 20), name="o")
                with rt.queue():
                    module.double_px(stream, stream)   # writes s in place
                    module.shiftu(stream, 20.0, 20.0, out)  # gathers from s
                results[label] = out.read()
        np.testing.assert_array_equal(
            results["untiled"].view(np.uint32),
            results["tiled"].view(np.uint32))

    def test_in_place_tiled_gather_matches_cpu_reference(self):
        data = (np.arange(24 * 24, dtype=np.float32).reshape(24, 24) % 31)
        with BrookRuntime(backend="cpu") as cpu:
            module = cpu.compile(SHIFT_UP)
            stream = cpu.stream_from(data)
            module.shiftu(stream, 24.0, 24.0, stream)
            expected = stream.read()
        with tiny_gles2_runtime(16) as rt:
            module = rt.compile(SHIFT_UP)
            stream = rt.stream_from(data)
            module.shiftu(stream, 24.0, 24.0, stream)
            tiled = stream.read()
        # Integer-valued inputs small enough to survive the RGBA8 round
        # trip exactly, so the comparison is bitwise.
        np.testing.assert_array_equal(expected.view(np.uint32),
                                      tiled.view(np.uint32))
