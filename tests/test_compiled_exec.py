"""Tests for the compiled evaluator fast path (repro.core.exec.compiled).

The fast path must (a) qualify exactly the divergence-free kernels,
(b) produce bit-identical outputs and equivalent work statistics to the
masked interpreter, and (c) leave divergent kernels on the interpreter.
"""

import numpy as np
import pytest

from repro.apps.base import get_application, list_applications
from repro.core.compiler import CompilerOptions, compile_source
from repro.core.exec.compiled import compile_fast_path, is_straight_line
from repro.core.exec.evaluator import KernelEvaluator
from repro.core.exec.gather import NumpyGatherSource
from repro.errors import KernelLaunchError
from repro.runtime import BrookRuntime

STRAIGHT_SOURCE = """
float weight(float d) {
    float k = 1.0 / (1.0 + abs(d));
    return (d < 0.0) ? k : 1.0 - k;
}

kernel void mixdown(float x<>, float y<>, float gain, float table[],
                    out float r<>) {
    float2 pos = indexof(r);
    float base = weight(x - y) * gain;
    float looked = table[pos.x];
    float acc = 0.0;
    acc += base * 2.0;
    acc = acc + looked;
    int bucket = int(acc);
    r = acc + float(bucket) * 0.001 + max(x, y);
}

kernel void vec_ops(float a<>, float b<>, out float r<>) {
    float2 v = float2(a, b);
    float2 w = v * 2.0;
    w.y = a - b;
    r = dot(v, w) + length(w);
}

kernel void branching(float x<>, out float r<>) {
    if (x > 0.0) {
        r = x;
    } else {
        r = -x;
    }
}

kernel void looping(float x<>, float n, out float r<>) {
    float acc = x;
    for (int i = 0; i < 4; i = i + 1) {
        acc = acc * 1.5;
    }
    r = acc;
}

reduce void total(float v<>, reduce float acc) {
    acc += v;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_source(STRAIGHT_SOURCE, param_bounds={"looping": {"n": 4}})


# --------------------------------------------------------------------------- #
# Qualification
# --------------------------------------------------------------------------- #
class TestQualification:
    def test_straight_line_kernels_get_a_fast_path(self, program):
        assert program.kernel("mixdown").fast_path is not None
        assert program.kernel("vec_ops").fast_path is not None

    def test_divergent_kernels_fall_back(self, program):
        assert program.kernel("branching").fast_path is None
        assert program.kernel("looping").fast_path is None

    def test_reductions_never_qualify(self, program):
        assert program.kernel("total").fast_path is None
        assert compile_fast_path(program.kernel("total").definition) is None

    def test_is_straight_line_predicate(self, program):
        assert is_straight_line(program.kernel("mixdown").definition.body)
        assert not is_straight_line(program.kernel("branching").definition.body)
        assert not is_straight_line(program.kernel("looping").definition.body)

    def test_option_disables_compilation(self):
        disabled = compile_source(
            STRAIGHT_SOURCE, options=CompilerOptions(enable_fast_path=False),
            param_bounds={"looping": {"n": 4}},
        )
        assert all(k.fast_path is None for k in disabled.kernels.values())

    def test_option_is_part_of_the_fingerprint(self):
        assert CompilerOptions().fingerprint() != \
            CompilerOptions(enable_fast_path=False).fingerprint()


# --------------------------------------------------------------------------- #
# Bitwise equivalence with the interpreter
# --------------------------------------------------------------------------- #
def _run_both(program, name, size, stream_inputs, scalar_args=None,
              gathers=None):
    kernel = program.kernel(name)
    helpers = program.helpers()
    evaluator = KernelEvaluator(kernel.definition, helpers)
    interpreted = evaluator.run(
        size, stream_inputs=stream_inputs, scalar_args=scalar_args,
        gathers=gathers,
    )
    fresh_gathers = {k: NumpyGatherSource(v._data) for k, v in
                     (gathers or {}).items()}
    compiled, stats = kernel.fast_path.run(
        size, stream_inputs=stream_inputs, scalar_args=scalar_args,
        gathers=fresh_gathers,
    )
    return interpreted, evaluator.stats, compiled, stats


class TestEquivalence:
    def test_bitwise_outputs_and_stats(self, program, rng):
        size = 256
        table = rng.uniform(-2.0, 2.0, size).astype(np.float32)
        inputs = {
            "x": rng.uniform(-3.0, 3.0, size).astype(np.float32),
            "y": rng.uniform(-3.0, 3.0, size).astype(np.float32),
        }
        gathers = {"table": NumpyGatherSource(table.reshape(1, -1))}
        interpreted, istats, compiled, cstats = _run_both(
            program, "mixdown", size, inputs, {"gain": 1.5}, gathers)
        assert interpreted.keys() == compiled.keys()
        for key in interpreted:
            a = np.asarray(interpreted[key], dtype=np.float32)
            b = np.asarray(compiled[key], dtype=np.float32)
            assert np.array_equal(a.view(np.uint32), b.view(np.uint32))
        assert cstats.flops == istats.flops
        assert cstats.stream_reads == istats.stream_reads
        assert cstats.stream_writes == istats.stream_writes
        assert cstats.gather_fetches == istats.gather_fetches
        assert cstats.elements == istats.elements

    def test_vector_kernel_bitwise(self, program, rng):
        size = 128
        inputs = {
            "a": rng.uniform(-1.0, 1.0, size).astype(np.float32),
            "b": rng.uniform(-1.0, 1.0, size).astype(np.float32),
        }
        interpreted, istats, compiled, cstats = _run_both(
            program, "vec_ops", size, inputs)
        a = np.asarray(interpreted["r"], dtype=np.float32)
        b = np.asarray(compiled["r"], dtype=np.float32)
        assert np.array_equal(a.view(np.uint32), b.view(np.uint32))
        assert cstats.flops == istats.flops

    def test_error_message_parity_for_missing_stream(self, program):
        kernel = program.kernel("vec_ops")
        with pytest.raises(KernelLaunchError, match="missing input stream"):
            kernel.fast_path.run(8, stream_inputs={"a": np.zeros(8)})

    @pytest.mark.parametrize("app_name", sorted(list_applications()))
    def test_every_app_is_bitwise_identical_on_cpu(self, app_name):
        app = get_application(app_name)
        size = min(16, app.max_target_size)
        inputs = app.generate_inputs(size, seed=7)
        outputs = {}
        for enabled in (False, True):
            options = CompilerOptions(enable_fast_path=enabled)
            with BrookRuntime(backend="cpu", compiler_options=options) as rt:
                module = app.compile(rt)
                outputs[enabled] = app.run_brook(rt, module, size, inputs)
        for key, expected in outputs[False].items():
            got = np.asarray(outputs[True][key], dtype=np.float32)
            want = np.asarray(expected, dtype=np.float32)
            assert np.array_equal(got.view(np.uint32), want.view(np.uint32)), \
                f"{app_name}.{key} differs between fast path and interpreter"


# --------------------------------------------------------------------------- #
# Backend integration
# --------------------------------------------------------------------------- #
class TestBackendIntegration:
    SRC = ("kernel void saxpy(float a, float x<>, float y<>, out float r<>)"
           " { r = a * x + y; }")

    @pytest.mark.parametrize("backend", ["cpu", "gles2", "cal"])
    def test_fast_path_matches_interpreter_on_backend(self, backend, rng):
        data_x = rng.uniform(0.0, 1.0, (16, 16)).astype(np.float32)
        data_y = rng.uniform(0.0, 1.0, (16, 16)).astype(np.float32)
        results = {}
        for enabled in (False, True):
            options = CompilerOptions(enable_fast_path=enabled)
            with BrookRuntime(backend=backend, compiler_options=options) as rt:
                module = rt.compile(self.SRC)
                assert (module.program.kernel("saxpy").fast_path
                        is not None) is enabled
                x = rt.stream_from(data_x)
                y = rt.stream_from(data_y)
                r = rt.stream((16, 16))
                module.saxpy(2.0, x, y, r)
                results[enabled] = r.read()
        assert np.array_equal(results[True].view(np.uint32),
                              results[False].view(np.uint32))
