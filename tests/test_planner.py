"""Planner optimality, determinism, caching and deadline tests.

The headline risk of an auto-planner is *silently wrong decisions*, so
this suite pins down the decision procedure itself: the chosen config
is the argmin of the full candidate table (brute-force re-scan), the
decision is identical across processes (no dict-order or hash-seed
dependence), cached decisions cannot survive a platform or device-count
change, and deadline-constrained selection never returns a candidate
whose WCET bound exceeds the deadline - raising the typed
:class:`~repro.errors.PlanningError` when none fits.
"""

import dataclasses
import json
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.core.analysis.planner import (
    CandidateConfig,
    PlanDecision,
    build_launchables,
    plan_pipeline,
)
from repro.errors import BrookError, PlanningError
from repro.runtime import BrookRuntime
from repro.service import BrookService
from repro.service.bench import build_adas_request, make_frames

SRC = """
kernel void scale(float x<>, float k, out float y<>) { y = x * k; }
kernel void offset(float x<>, float d, out float y<>) { y = x + d; }
reduce void total(float v<>, reduce float acc) { acc += v; }
"""


def make_plans(rt, size=16):
    module = rt.compile(SRC)
    x = rt.stream((size, size), name="x")
    tmp = rt.stream((size, size), name="tmp")
    out = rt.stream((size, size), name="out")
    x.write(np.arange(size * size, dtype=np.float32).reshape(size, size))
    return [module.scale.bind(x, 2.0, tmp),
            module.offset.bind(tmp, 1.0, out)], (x, tmp, out)


# --------------------------------------------------------------------------- #
# Optimality: the chosen config is the argmin of the candidate table
# --------------------------------------------------------------------------- #
class TestArgminSoundness:
    def test_chosen_matches_brute_force_scan(self):
        with BrookRuntime(backend="cpu") as rt:
            plans, _ = make_plans(rt)
            decision = rt.autoplan(plans, max_batch=4)
        selectable = [c for c in decision.candidates if c.selectable]
        assert selectable, "candidate table has no selectable rows"
        best = min(c.modelled_s for c in selectable)
        assert decision.chosen.modelled_s == best
        assert decision.chosen.selectable

    def test_chosen_never_worse_than_baseline(self):
        with BrookRuntime(backend="cpu") as rt:
            plans, _ = make_plans(rt)
            decision = rt.autoplan(plans, max_batch=8)
        assert decision.chosen.modelled_s <= decision.baseline.modelled_s
        assert decision.speedup >= 1.0

    def test_candidate_space_covers_every_knob(self):
        with BrookRuntime(backend="cpu") as rt:
            plans, _ = make_plans(rt)
            decision = rt.autoplan(plans, max_batch=4)
        configs = {c.config.key() for c in decision.candidates}
        # 2 fuse subsets x (1 device count with 1 axis + 2 with 2 axes)
        # x 2 batches = 2 * (1 + 2 + 2) * 2 rows, all distinct.
        assert len(configs) == len(decision.candidates) == 20
        assert {c.config.devices for c in decision.candidates} == {1, 2, 4}
        assert {c.config.axis for c in decision.candidates} == {"rows", "cols"}
        assert {c.config.batch for c in decision.candidates} == {1, 4}
        assert {c.config.fused_groups
                for c in decision.candidates} == {(), ((0, 1),)}

    def test_fusion_prices_below_unfused(self):
        with BrookRuntime(backend="cpu") as rt:
            plans, _ = make_plans(rt)
            decision = rt.autoplan(plans)
        by_key = {c.config.key(): c for c in decision.candidates}
        fused = by_key[(1, "rows", ((0, 1),), 1)]
        unfused = by_key[(1, "rows", (), 1)]
        assert fused.modelled_s < unfused.modelled_s

    def test_reduction_tail_stays_unfused_with_reason(self):
        with BrookRuntime(backend="cpu") as rt:
            module = rt.compile(SRC)
            x = rt.stream((8, 8))
            y = rt.stream((8, 8))
            x.write(np.ones((8, 8), dtype=np.float32))
            plans = [module.scale.bind(x, 2.0, y), module.total.bind(y)]
            decision = rt.autoplan(plans)
        assert decision.chosen.config.fused_groups == ()
        assert any("reduction" in boundary
                   for boundary in decision.fusion_boundaries)

    def test_infeasible_axis_is_annotated_not_hidden(self):
        with BrookRuntime(backend="cpu") as rt:
            plans, _ = make_plans(rt)
            decision = rt.autoplan(plans)
        col_rows = [c for c in decision.candidates if c.config.axis == "cols"]
        assert col_rows
        for candidate in col_rows:
            assert not candidate.feasible
            assert "rows bands" in candidate.reason

    def test_empty_pipeline_rejected(self):
        with BrookRuntime(backend="cpu") as rt:
            with pytest.raises(PlanningError):
                plan_pipeline(rt, [])


# --------------------------------------------------------------------------- #
# Determinism: same signature + platform -> same decision, any process
# --------------------------------------------------------------------------- #
DETERMINISM_SCRIPT = textwrap.dedent("""
    import json
    import numpy as np
    from repro.runtime import BrookRuntime

    SRC = '''
    kernel void scale(float x<>, float k, out float y<>) { y = x * k; }
    kernel void offset(float x<>, float d, out float y<>) { y = x + d; }
    '''

    with BrookRuntime(backend="cpu") as rt:
        module = rt.compile(SRC)
        x = rt.stream((16, 16))
        tmp = rt.stream((16, 16))
        out = rt.stream((16, 16))
        x.write(np.zeros((16, 16), dtype=np.float32))
        plans = [module.scale.bind(x, 2.0, tmp),
                 module.offset.bind(tmp, 1.0, out)]
        decision = rt.autoplan(plans, max_batch=8)
    print(json.dumps(decision.to_payload(), sort_keys=True))
""")


class TestDeterminism:
    def test_same_decision_across_processes(self, tmp_path):
        script = tmp_path / "decide.py"
        script.write_text(DETERMINISM_SCRIPT)
        payloads = []
        for hash_seed in ("0", "1"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = "src" + os.pathsep \
                + env.get("PYTHONPATH", "")
            result = subprocess.run(
                [sys.executable, str(script)], env=env, cwd=os.getcwd(),
                capture_output=True, text=True, check=True)
            payloads.append(result.stdout.strip())
        assert payloads[0] == payloads[1]
        decoded = json.loads(payloads[0])
        assert decoded["chosen"]["fused_groups"] == [[0, 1]]

    def test_same_decision_within_process(self):
        with BrookRuntime(backend="cpu") as rt:
            plans, _ = make_plans(rt)
            first = rt.autoplan(plans, max_batch=8)
            second = rt.autoplan(plans, max_batch=8)
        assert first.to_payload() == second.to_payload()
        assert first.chosen.config == second.chosen.config


# --------------------------------------------------------------------------- #
# Decision caching: platform / device-count changes invalidate
# --------------------------------------------------------------------------- #
class TestDecisionCache:
    def test_decision_cached_per_signature(self):
        frames = make_frames(16, 2, seed=5)
        with BrookService(backend="cpu", pool_size=1, plan="auto") as service:
            service.process(build_adas_request(16, frames[0], name="f0"))
            service.process(build_adas_request(16, frames[1], name="f1"))
            report = service.service_report()
        cache = report["autoplan"]["decision_cache"]
        assert cache == {"entries": 1, "hits": 1, "misses": 1}
        decision = report["autoplan"]["decisions"][0]
        assert decision["chosen_modelled_ms"] \
            <= decision["baseline_modelled_ms"]
        assert decision["modelled_speedup"] >= 1.0

    def test_device_count_change_invalidates_decision(self):
        # The cache key carries (platform, devices): a service built for
        # a different device count derives a fresh decision whose chosen
        # config matches *its* runtime, never the other service's.
        frames = make_frames(16, 1, seed=5)
        chosen_devices = {}
        for devices in (1, 2):
            with BrookService(backend="cpu", pool_size=1, devices=devices,
                              plan="auto") as service:
                service.process(build_adas_request(16, frames[0], name="f"))
                report = service.service_report()
            row = report["autoplan"]["decisions"][0]
            assert report["autoplan"]["decision_cache"]["misses"] == 1
            chosen_devices[devices] = row["chosen"]
        assert "devices=1" in chosen_devices[1]
        assert "devices=2" in chosen_devices[2]

    def test_platform_change_reprices_decision(self):
        frames = make_frames(16, 1, seed=5)
        modelled = {}
        for platform in ("arm-videocore-iv", "x86-core2-hd3400"):
            with BrookService(backend="cpu", pool_size=1, plan="auto",
                              platform=platform) as service:
                service.process(build_adas_request(16, frames[0], name="f"))
                report = service.service_report()
            assert report["autoplan"]["platform"] == platform
            assert report["autoplan"]["decision_cache"]["misses"] == 1
            modelled[platform] = \
                report["autoplan"]["decisions"][0]["chosen_modelled_ms"]
        # The two fleet profiles genuinely price differently.
        assert modelled["arm-videocore-iv"] != modelled["x86-core2-hd3400"]

    def test_auto_mode_does_not_enable_deadline_tracking(self):
        with BrookService(backend="cpu", pool_size=1, plan="auto") as service:
            assert service.platform == "target"
            assert not service._track_deadlines
            report_keys = set(service.service_report())
        assert "autoplan" in report_keys
        assert "deadline" not in report_keys

    def test_unknown_plan_mode_rejected(self):
        from repro.errors import RuntimeBrookError
        with pytest.raises(RuntimeBrookError, match="plan mode"):
            BrookService(backend="cpu", plan="aggressive")


# --------------------------------------------------------------------------- #
# Deadline-constrained selection
# --------------------------------------------------------------------------- #
class TestDeadlineSelection:
    def _decision(self, rt) -> PlanDecision:
        plans, _ = make_plans(rt)
        return rt.autoplan(plans, max_batch=4)

    def test_selected_candidate_always_fits_budget(self):
        with BrookRuntime(backend="cpu") as rt:
            decision = self._decision(rt)
        budgets = sorted({c.wcet_s for c in decision.candidates
                          if c.selectable})
        for budget in budgets:
            chosen = decision.choose(budget)
            assert chosen.wcet_s <= budget

    def test_impossible_budget_raises_typed_error(self):
        with BrookRuntime(backend="cpu") as rt:
            decision = self._decision(rt)
        with pytest.raises(PlanningError, match="deadline budget"):
            decision.choose(1e-12)
        assert issubclass(PlanningError, BrookError)

    def test_no_budget_returns_unconstrained_argmin(self):
        with BrookRuntime(backend="cpu") as rt:
            decision = self._decision(rt)
        assert decision.choose(None) == decision.chosen

    def test_service_rejects_unmeetable_deadline_request(self):
        frames = make_frames(16, 1, seed=7)
        request = build_adas_request(16, frames[0], name="doomed")
        doomed = dataclasses.replace(request, deadline=1e-9)
        with BrookService(backend="cpu", pool_size=1, plan="auto") as service:
            future = service.submit(doomed)
            with pytest.raises(PlanningError):
                future.result()
            # The service stays healthy for later plannable requests.
            response = service.process(
                build_adas_request(16, frames[0], name="fine"))
        assert response.outputs

    def test_service_runs_meetable_deadline_request(self):
        frames = make_frames(16, 1, seed=7)
        request = build_adas_request(16, frames[0], name="relaxed")
        relaxed = dataclasses.replace(request, deadline=60.0)
        with BrookService(backend="cpu", pool_size=1, plan="auto") as service:
            response = service.process(relaxed)
            baseline = service.process(
                build_adas_request(16, frames[0], name="plain"))
        for name in response.outputs:
            assert np.array_equal(response.outputs[name].view(np.uint32),
                                  baseline.outputs[name].view(np.uint32))


# --------------------------------------------------------------------------- #
# Materialisation: build_launchables reproduces the plans' results
# --------------------------------------------------------------------------- #
class TestBuildLaunchables:
    def test_fused_config_builds_single_pipeline(self):
        with BrookRuntime(backend="cpu") as rt:
            plans, (_, _, out) = make_plans(rt, size=8)
            config = CandidateConfig(devices=1, axis="rows",
                                     fused_groups=((0, 1),), batch=1)
            launchables = build_launchables(rt, plans, config)
            assert len(launchables) == 1
            launchables[-1].launch()
            expected = np.arange(64, dtype=np.float32).reshape(8, 8) * 2 + 1
            assert np.array_equal(out.read(), expected)

    def test_unfused_config_keeps_plans(self):
        with BrookRuntime(backend="cpu") as rt:
            plans, (_, _, out) = make_plans(rt, size=8)
            config = CandidateConfig(devices=1, axis="rows",
                                     fused_groups=(), batch=1)
            launchables = build_launchables(rt, plans, config)
            assert launchables == plans
