"""Tests for the ASCII chart rendering of the figure series."""

import pytest

from repro.evaluation import figure3
from repro.evaluation.charts import ascii_chart, figure_chart


class TestAsciiChart:
    SERIES = {"demo": [(128, 0.5), (256, 1.0), (512, 2.0), (1024, 8.0)]}

    def test_contains_title_and_legend(self):
        chart = ascii_chart(self.SERIES, title="Demo chart")
        assert chart.splitlines()[0] == "Demo chart"
        assert "o = demo" in chart

    def test_break_even_line_present(self):
        chart = ascii_chart(self.SERIES)
        assert any(line.startswith("    1.00x +") for line in chart.splitlines())

    def test_all_sizes_on_axis(self):
        chart = ascii_chart(self.SERIES)
        for size in (128, 256, 512, 1024):
            assert str(size) in chart

    def test_higher_speedups_plot_higher(self):
        chart_lines = ascii_chart(self.SERIES).splitlines()
        rows_with_marker = [i for i, line in enumerate(chart_lines) if "o" in line]
        # The first marker row (highest speedup) is above the last one.
        assert rows_with_marker[0] < rows_with_marker[-1]

    def test_multiple_series_get_distinct_glyphs(self):
        chart = ascii_chart({
            "first": [(128, 2.0), (256, 3.0)],
            "second": [(128, 0.2), (256, 0.4)],
        })
        assert "o = first" in chart and "x = second" in chart

    def test_empty_chart_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})

    def test_single_point_series(self):
        chart = ascii_chart({"single": [(256, 5.0)]})
        assert "256" in chart

    def test_dimensions_respected(self):
        chart = ascii_chart(self.SERIES, width=40, height=10)
        body_lines = [line for line in chart.splitlines() if "|" in line or "+" in line]
        assert len(body_lines) >= 10


class TestFigureChart:
    def test_figure3_chart_contains_every_application(self):
        result = figure3.run()
        chart = figure_chart(result)
        for name in figure3.APPLICATIONS:
            assert name in chart

    def test_reference_platform_chart(self):
        result = figure3.run()
        chart = figure_chart(result, platform_label="reference")
        assert "reference platform" in chart
