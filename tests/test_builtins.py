"""Unit tests for the builtin-function catalogue."""

import pytest

from repro.core.builtins import BUILTINS, lookup_builtin
from repro.core.types import BOOL, FLOAT, FLOAT2, FLOAT3, FLOAT4, INT
from repro.errors import BrookTypeError


class TestCatalogue:
    def test_core_math_functions_present(self):
        for name in ("sqrt", "exp", "log", "sin", "cos", "abs", "floor",
                     "pow", "fmod", "min", "max", "clamp", "lerp", "dot",
                     "normalize", "cross", "length"):
            assert lookup_builtin(name) is not None, name

    def test_unknown_function_returns_none(self):
        assert lookup_builtin("fft") is None

    def test_transcendentals_cost_more_than_adds(self):
        assert BUILTINS["exp"].flop_cost > BUILTINS["abs"].flop_cost
        assert BUILTINS["pow"].flop_cost > BUILTINS["min"].flop_cost

    def test_glsl_spelling_overrides(self):
        assert BUILTINS["rsqrt"].glsl_name == "inversesqrt"
        assert BUILTINS["frac"].glsl_name == "fract"
        assert BUILTINS["lerp"].glsl_name == "mix"
        assert BUILTINS["fmod"].glsl_name == "mod"


class TestResultTypes:
    def test_componentwise_scalar(self):
        assert BUILTINS["sqrt"].result_type([FLOAT]) == FLOAT

    def test_componentwise_vector(self):
        assert BUILTINS["sqrt"].result_type([FLOAT3]) == FLOAT3

    def test_componentwise_broadcast(self):
        assert BUILTINS["max"].result_type([FLOAT4, FLOAT]) == FLOAT4

    def test_int_arguments_promote_to_float(self):
        assert BUILTINS["abs"].result_type([INT]) == FLOAT

    def test_wrong_arity_raises(self):
        with pytest.raises(BrookTypeError):
            BUILTINS["sqrt"].result_type([FLOAT, FLOAT])
        with pytest.raises(BrookTypeError):
            BUILTINS["clamp"].result_type([FLOAT])

    def test_incompatible_vector_widths_raise(self):
        with pytest.raises(BrookTypeError):
            BUILTINS["min"].result_type([FLOAT2, FLOAT3])

    def test_dot_reduces_to_scalar(self):
        assert BUILTINS["dot"].result_type([FLOAT3, FLOAT3]) == FLOAT

    def test_length_reduces_to_scalar(self):
        assert BUILTINS["length"].result_type([FLOAT4]) == FLOAT

    def test_cross_returns_float3(self):
        assert BUILTINS["cross"].result_type([FLOAT3, FLOAT3]) == FLOAT3

    def test_normalize_preserves_width(self):
        assert BUILTINS["normalize"].result_type([FLOAT2]) == FLOAT2

    def test_any_all_return_bool(self):
        assert BUILTINS["any"].result_type([FLOAT4]) == BOOL
        assert BUILTINS["all"].result_type([FLOAT4]) == BOOL
