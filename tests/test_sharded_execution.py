"""Tests for multi-device sharded execution (``BrookRuntime(devices=N)``).

The correctness bar is the same one the tiling and concurrency PRs held:
sharding must be *bit-identical* to single-device execution for every
workload class - map kernels, ``indexof`` kernels, stencil (halo)
gathers, full-array gathers, reductions, fused pipelines and
shard+tile composition - on both the CPU and the OpenGL ES 2 backends.
The suite also covers the shard geometry, the per-kernel argument
classification (partitioned / replicated / halo / gathered-whole with
runtime clamp guards), the ``shards=N`` / halo-byte statistics with
their GPU-model pricing, and the degenerate-input validation that rides
along in this change.
"""

import numpy as np
import pytest

from repro.backends.gles2_backend import GLES2Backend
from repro.backends.sharded import ShardedBackend
from repro.core.analysis.sharding import (
    ShardPlan,
    classify_kernel,
)
from repro.core.compiler import BrookAutoCompiler, CompilerOptions
from repro.errors import RuntimeBrookError, StreamError
from repro.gles2.device import GPUDeviceProfile
from repro.gles2.limits import GLES2Limits
from repro.runtime import BrookRuntime, HaloGatherSource, ShardedStorage
from repro.runtime.profiling import KernelLaunchRecord, RunStatistics
from repro.timing.gpu_model import GPUCostParameters, GPUModel, GPUWorkload

SAXPY = ("kernel void saxpy(float a, float x<>, float y<>, out float r<>) {"
         " r = a * x + y; }")
INDEXED = ("kernel void indexed(float x<>, out float r<>) {"
           " float2 p = indexof(r); r = x + p.x * 10.0 + p.y; }")
TOTAL = "reduce void total(float v<>, reduce float acc) { acc += v; }"
MAXV = "reduce void maxv(float v<>, reduce float m) { m = max(m, v); }"
PIPE = ("kernel void twice(float x<>, out float y<>) { y = x * 2.0; }"
        "kernel void plus3(float y<>, out float z<>) { z = y + 3.0; }")
STENCIL = (
    "kernel void blur3(float src[][], float w, float h, out float dst<>) {"
    " float2 p = indexof(dst);"
    " float y0 = max(p.y - 1.0, 0.0);"
    " float y2 = min(p.y + 1.0, h - 1.0);"
    " dst = (src[y0][p.x] + src[p.y][p.x] + src[y2][p.x]) / 4.0; }")
REVERSE = (
    "kernel void rev(float src[][], float h, out float dst<>) {"
    " float2 p = indexof(dst);"
    " dst = src[h - 1.0 - p.y][p.x]; }")
LOOKUP = ("kernel void lookup(float v<>, float lut[], out float o<>) {"
          " o = lut[v]; }")


def compile_kernel(source, name):
    program = BrookAutoCompiler(CompilerOptions()).compile(source)
    return program.original_definitions[name]


def tiny_gles2_backend(max_texture_size=64):
    profile = GPUDeviceProfile(
        name=f"tiny-{max_texture_size}",
        limits=GLES2Limits(name=f"tiny-{max_texture_size}",
                           max_texture_size=max_texture_size),
        effective_gflops=1.0,
        transfer_gib_per_s=1.0,
        pass_overhead_us=100.0,
        texture_fetch_ns=2.0,
        fill_rate_mpixels=100.0,
    )
    return GLES2Backend(profile)


def assert_bitwise(a, b):
    np.testing.assert_array_equal(
        np.asarray(a, dtype=np.float32).view(np.uint32),
        np.asarray(b, dtype=np.float32).view(np.uint32))


# --------------------------------------------------------------------------- #
# Geometry
# --------------------------------------------------------------------------- #
class TestShardGeometry:
    def test_row_bands_balanced_to_one_row(self):
        plan = ShardPlan((10, 7), 4)
        assert plan.axis == "rows"
        assert [(s.row0, s.rows) for s in plan.shards] == \
            [(0, 3), (3, 3), (6, 2), (8, 2)]
        assert all(s.cols == 7 and s.col0 == 0 for s in plan.shards)
        assert sum(s.element_count for s in plan.shards) == 70

    def test_one_row_layouts_shard_along_columns(self):
        plan = ShardPlan((1, 10), 4)
        assert plan.axis == "cols"
        assert [(s.col0, s.cols) for s in plan.shards] == \
            [(0, 3), (3, 3), (6, 2), (8, 2)]

    def test_fewer_bands_than_devices(self):
        assert ShardPlan((2, 5), 4).shard_count == 2
        assert ShardPlan((1, 3), 8).shard_count == 3
        assert ShardPlan((1, 1), 4).is_trivial

    def test_geometry_is_a_pure_function_of_layout_and_count(self):
        assert ShardPlan((9, 4), 3).geometry == ShardPlan((9, 4), 3).geometry
        assert ShardPlan((9, 4), 3).geometry != ShardPlan((9, 4), 2).geometry

    def test_slice_stitch_roundtrip(self):
        plan = ShardPlan((11, 6), 4)
        data = np.arange(66, dtype=np.float32).reshape(11, 6)
        np.testing.assert_array_equal(
            plan.stitch([plan.slice(data, s) for s in plan.shards]), data)

    def test_index_positions_are_global(self):
        plan = ShardPlan((6, 3), 3)
        positions = plan.shard_index_positions(plan.shards[1])
        assert positions.shape == (6, 2)
        assert positions[0].tolist() == [0.0, 2.0]   # (x, y) of row 2, col 0
        assert positions[-1].tolist() == [2.0, 3.0]

    def test_halo_band_clips_at_the_edges(self):
        plan = ShardPlan((12, 4), 3)
        assert plan.halo_band(plan.shards[0], 2) == (0, 6)
        assert plan.halo_band(plan.shards[1], 2) == (2, 10)
        assert plan.halo_band(plan.shards[2], 2) == (6, 12)


# --------------------------------------------------------------------------- #
# Argument classification
# --------------------------------------------------------------------------- #
class TestArgumentClassification:
    def test_streams_outputs_scalars(self):
        spec = classify_kernel(compile_kernel(SAXPY, "saxpy"))
        assert spec.argument("a").mode == "replicated"
        assert spec.argument("x").mode == "partitioned"
        assert spec.argument("r").mode == "partitioned"

    def test_clamped_stencil_is_halo_with_guard(self):
        spec = classify_kernel(compile_kernel(STENCIL, "blur3"))
        arg = spec.argument("src")
        assert arg.mode == "halo"
        assert arg.row_access.bound == 1
        guards = {(g.param, g.delta) for g in arg.row_access.guards}
        assert ("h", 1.0) in guards
        # The column index is the bare coordinate: bound 0, no guards.
        assert arg.col_access.bound == 0

    def test_image_filter_3x3_classifies_as_halo_1(self):
        from repro.apps.image_filter import BROOK_SOURCE

        spec = classify_kernel(compile_kernel(BROOK_SOURCE, "filter3x3"))
        arg = spec.argument("image")
        assert arg.mode == "halo"
        assert arg.row_access.bound == 1
        assert arg.col_access.bound == 1

    def test_data_dependent_index_is_gathered_whole(self):
        spec = classify_kernel(compile_kernel(LOOKUP, "lookup"))
        assert spec.argument("lut").mode == "whole"

    def test_transposed_access_cannot_use_row_halo(self):
        source = ("kernel void t(float a[][], out float o<>) {"
                  " float2 p = indexof(o); o = a[p.x][p.y]; }")
        spec = classify_kernel(compile_kernel(source, "t"))
        arg = spec.argument("a")
        assert arg.row_access is None and arg.col_access is None
        assert arg.mode == "whole"

    def test_reflected_index_is_not_a_stencil_offset(self):
        # ``c - coord`` is a reflection: its distance from the current
        # element is unbounded, so it must NOT classify as a halo
        # access along that axis (regression: the +/- lattice rule once
        # accepted the coordinate on either side of a subtraction).
        source = ("kernel void refl(float a[][], out float o<>) {"
                  " float2 p = indexof(o); o = a[10.0 - p.y][p.x]; }")
        spec = classify_kernel(compile_kernel(source, "refl"))
        assert spec.argument("a").row_access is None
        clamped = ("kernel void refl2(float a[][], out float o<>) {"
                   " float2 p = indexof(o);"
                   " o = a[max(10.0 - p.y, 0.0)][p.x]; }")
        spec2 = classify_kernel(compile_kernel(clamped, "refl2"))
        assert spec2.argument("a").row_access is None

    def test_member_assignment_invalidates_the_tracked_local(self):
        # ``p.y = p.y + 3.0`` mutates the indexof-derived local: the
        # analysis must drop it instead of treating later ``p.y`` reads
        # as the unshifted coordinate (regression: silent corruption on
        # clamping backends, spurious StreamError on the CPU one).
        source = ("kernel void k(float src[][], out float dst<>) {"
                  " float2 p = indexof(dst); p.y = p.y + 3.0;"
                  " dst = src[min(p.y, 7.0)][p.x]; }")
        spec = classify_kernel(compile_kernel(source, "k"))
        assert spec.argument("src").row_access is None
        data = np.arange(64, dtype=np.float32).reshape(8, 8)

        def launch(rt, module):
            out = rt.stream((8, 8))
            module.k(rt.stream_from(data), out)
            return out.read()

        single, sharded = run_single_and_sharded(source, launch)
        assert_bitwise(single, sharded)

    def test_scalar_offset_is_unbounded(self):
        source = ("kernel void s(float a[][], float n, out float o<>) {"
                  " float2 p = indexof(o); o = a[p.y + n][p.x]; }")
        spec = classify_kernel(compile_kernel(source, "s"))
        assert spec.argument("a").row_access is None


# --------------------------------------------------------------------------- #
# Storage
# --------------------------------------------------------------------------- #
class TestShardedStorage:
    def test_large_streams_shard_small_streams_stay_whole(self):
        with BrookRuntime(backend="cpu", devices=4) as rt:
            big = rt.stream((8, 8))
            tiny = rt.stream((1, 1))
            assert isinstance(big.storage, ShardedStorage)
            assert big.storage.shard_count == 4
            assert not isinstance(tiny.storage, ShardedStorage)

    def test_upload_download_roundtrip(self):
        data = np.arange(9 * 5, dtype=np.float32).reshape(9, 5)
        with BrookRuntime(backend="cpu", devices=3) as rt:
            stream = rt.stream_from(data)
            np.testing.assert_array_equal(stream.read(), data)
            np.testing.assert_array_equal(stream.peek(), data)

    def test_memory_spreads_across_devices_and_release_frees_all(self):
        with BrookRuntime(backend="cpu", devices=4) as rt:
            backend: ShardedBackend = rt.backend
            stream = rt.stream((8, 4))
            per_device = [d.device_memory_in_use() for d in backend.devices]
            assert all(bytes_used == 8 * 4 for bytes_used in per_device)
            stream.release()
            assert rt.device_memory_in_use() == 0

    def test_transfer_records_carry_per_device_calls(self):
        data = np.arange(8 * 4, dtype=np.float32).reshape(8, 4)
        with BrookRuntime(backend="gles2", device="videocore-iv",
                          devices=4) as rt:
            rt.stream_from(data).read()
            transfers = rt.statistics.transfers
        assert [t.calls for t in transfers] == [4, 4]

    def test_runtime_validation(self):
        with pytest.raises(RuntimeBrookError):
            BrookRuntime(backend="cpu", devices=0)
        with pytest.raises(RuntimeBrookError):
            BrookRuntime(backend="cpu", devices=-2)
        from repro.backends.cpu import CPUBackend
        with pytest.raises(RuntimeBrookError, match="ShardedBackend"):
            BrookRuntime(backend=CPUBackend(), devices=2)
        with BrookRuntime(backend="cpu", devices=3) as rt:
            assert rt.device_count == 3
        with BrookRuntime(backend="cpu") as rt:
            assert rt.device_count == 1

    def test_heterogeneous_group_rejected(self):
        from repro.backends.cpu import CPUBackend
        with pytest.raises(RuntimeBrookError, match="homogeneous"):
            ShardedBackend([CPUBackend(), tiny_gles2_backend()])


# --------------------------------------------------------------------------- #
# Bit-identical equivalence vs a single device
# --------------------------------------------------------------------------- #
def run_single_and_sharded(source, launch, backend="cpu", device=None,
                           devices=4):
    """Run ``launch(rt, module)`` on 1 and N devices; return both results."""
    results = []
    for count in (1, devices):
        with BrookRuntime(backend=backend, device=device,
                          devices=count) as rt:
            module = rt.compile(source)
            results.append(launch(rt, module))
    return results


class TestShardedEquivalence:
    @pytest.mark.parametrize("backend,device", [("cpu", None),
                                                ("gles2", "videocore-iv")])
    def test_map_kernel(self, backend, device):
        x = (np.arange(12 * 7, dtype=np.float32).reshape(12, 7) % 31)
        y = (x * 3 + 1) % 17

        def launch(rt, module):
            out = rt.stream((12, 7))
            module.saxpy(2.0, rt.stream_from(x), rt.stream_from(y), out)
            return out.read()

        single, sharded = run_single_and_sharded(SAXPY, launch,
                                                 backend, device)
        assert_bitwise(single, sharded)

    @pytest.mark.parametrize("backend,device", [("cpu", None),
                                                ("gles2", "videocore-iv")])
    def test_indexof_kernel_observes_global_positions(self, backend, device):
        x = (np.arange(9 * 6, dtype=np.float32).reshape(9, 6) % 13)

        def launch(rt, module):
            out = rt.stream((9, 6))
            module.indexed(rt.stream_from(x), out)
            return out.read()

        single, sharded = run_single_and_sharded(INDEXED, launch,
                                                 backend, device, devices=3)
        assert_bitwise(single, sharded)

    @pytest.mark.parametrize("backend,device", [("cpu", None),
                                                ("gles2", "videocore-iv")])
    def test_stencil_halo_kernel(self, backend, device):
        data = (np.arange(16 * 16, dtype=np.float32).reshape(16, 16) % 64)

        def launch(rt, module):
            out = rt.stream((16, 16))
            module.blur3(rt.stream_from(data), 16.0, 16.0, out)
            stats = rt.statistics.summary()
            return out.read(), stats

        (single, _), (sharded, stats) = run_single_and_sharded(
            STENCIL, launch, backend, device)
        assert_bitwise(single, sharded)
        # A 16-row frame on 4 devices with a 1-deep halo exchanges 6
        # rows (interior shards two, edge shards one) of 16 floats.
        assert stats["halo_bytes"] == 6 * 16 * 4
        assert stats["extra_shards"] == 3

    @pytest.mark.parametrize("backend,device", [("cpu", None),
                                                ("gles2", "videocore-iv")])
    def test_image_filter_pipeline(self, backend, device):
        from repro.apps.image_filter import BROOK_SOURCE, FILTER_3X3

        frame = np.random.default_rng(3).uniform(0, 255, (24, 24)) \
            .astype(np.float32)
        weights = [float(w) for w in FILTER_3X3.reshape(-1)]

        def launch(rt, module):
            out = rt.stream((24, 24))
            module.filter3x3(rt.stream_from(frame), 24.0, 24.0,
                             *weights, out)
            return out.read()

        single, sharded = run_single_and_sharded(BROOK_SOURCE, launch,
                                                 backend, device)
        assert_bitwise(single, sharded)

    @pytest.mark.parametrize("backend,device", [("cpu", None),
                                                ("gles2", "videocore-iv")])
    def test_full_array_gather(self, backend, device):
        data = (np.arange(10 * 8, dtype=np.float32).reshape(10, 8) % 50)

        def launch(rt, module):
            out = rt.stream((10, 8))
            module.rev(rt.stream_from(data), 10.0, out)
            return out.read()

        single, sharded = run_single_and_sharded(REVERSE, launch,
                                                 backend, device)
        assert_bitwise(single, sharded)

    def test_reflected_gather_stays_bit_identical(self):
        # The reflection falls back to a whole-array gather; on the
        # clamping backend that must match devices=1 exactly.
        data = (np.arange(40 * 4, dtype=np.float32).reshape(40, 4) % 29)
        source = ("kernel void refl(float src[][], out float dst<>) {"
                  " float2 p = indexof(dst);"
                  " dst = src[10.0 - p.y][p.x]; }")

        def launch(rt, module):
            out = rt.stream((40, 4))
            module.refl(rt.stream_from(data), out)
            return out.read()

        single, sharded = run_single_and_sharded(
            source, launch, "gles2", "videocore-iv")
        assert_bitwise(single, sharded)

    def test_guard_failure_demotes_to_whole_not_wrong(self):
        # The clamp scalar is NOT the array height: the halo guard must
        # reject the stencil classification and fall back to the whole
        # array, keeping the result identical to a single device.
        data = (np.arange(12 * 5, dtype=np.float32).reshape(12, 5) % 23)
        source = (
            "kernel void clip8(float src[][], float h, out float dst<>) {"
            " float2 p = indexof(dst);"
            " dst = src[min(p.y + 1.0, h - 1.0)][p.x]; }")

        def launch(rt, module):
            out = rt.stream((12, 5))
            module.clip8(rt.stream_from(data), 8.0, out)
            return out.read(), rt.statistics.summary()

        (single, _), (sharded, stats) = run_single_and_sharded(source, launch)
        assert_bitwise(single, sharded)
        # Whole-array replication traffic, not a thin halo.
        assert stats["halo_bytes"] > 6 * 5 * 4

    @pytest.mark.parametrize("backend,device", [("cpu", None),
                                                ("gles2", "videocore-iv")])
    def test_sum_reduction_integer_data(self, backend, device):
        # Integer-valued float32 sums are exact under any association,
        # so partial-per-device reduction must be bit-identical.
        data = (np.arange(13 * 6, dtype=np.float32).reshape(13, 6) % 40)

        def launch(rt, module):
            return module.total(rt.stream_from(data))

        single, sharded = run_single_and_sharded(TOTAL, launch,
                                                 backend, device)
        assert np.float32(single).view(np.uint32) == \
            np.float32(sharded).view(np.uint32)

    def test_float_sum_reduction_reassociates_within_tolerance(self):
        # General floating-point sums fold per-device partials, so they
        # may differ from devices=1 by reassociation ULPs only - the
        # documented caveat (shared with tiled reductions).
        data = np.random.default_rng(23).uniform(-10, 10, (37, 3)) \
            .astype(np.float32)

        def launch(rt, module):
            return module.total(rt.stream_from(data))

        single, sharded = run_single_and_sharded(TOTAL, launch)
        assert sharded == pytest.approx(single, rel=1e-5)

    def test_max_reduction(self):
        data = np.random.default_rng(7).uniform(-100, 100, (17, 9)) \
            .astype(np.float32)

        def launch(rt, module):
            return module.maxv(rt.stream_from(data))

        single, sharded = run_single_and_sharded(MAXV, launch)
        assert np.float32(single).view(np.uint32) == \
            np.float32(sharded).view(np.uint32)

    def test_partial_reduction_into_stream(self):
        data = (np.arange(12 * 8, dtype=np.float32).reshape(12, 8) % 9)

        def launch(rt, module):
            acc = rt.stream((4, 4))
            module.total(rt.stream_from(data), acc)
            return acc.read()

        single, sharded = run_single_and_sharded(TOTAL, launch)
        assert_bitwise(single, sharded)

    @pytest.mark.parametrize("backend,device", [("cpu", None),
                                                ("gles2", "videocore-iv")])
    def test_fused_pipeline(self, backend, device):
        data = (np.arange(10 * 10, dtype=np.float32).reshape(10, 10) % 21)

        def launch(rt, module):
            src = rt.stream_from(data)
            tmp = rt.stream((10, 10))
            out = rt.stream((10, 10))
            pipeline = rt.fuse([module.twice.bind(src, tmp),
                                module.plus3.bind(tmp, out)])
            pipeline.launch()
            return out.read(), pipeline.pass_count

        (single, passes_1), (sharded, passes_n) = run_single_and_sharded(
            PIPE, launch, backend, device)
        assert passes_1 == passes_n == 1   # fusion still applies
        assert_bitwise(single, sharded)

    def test_in_place_sharded_gather_keeps_snapshot_semantics(self):
        data = (np.arange(20 * 8, dtype=np.float32).reshape(20, 8) % 77)
        source = (
            "kernel void shiftu(float src[][], float h, out float dst<>) {"
            " float2 p = indexof(dst);"
            " dst = src[max(p.y - 1.0, 0.0)][p.x] * 2.0; }")

        def launch(rt, module):
            stream = rt.stream_from(data)
            module.shiftu(stream, 20.0, stream)
            return stream.read()

        single, sharded = run_single_and_sharded(source, launch)
        assert_bitwise(single, sharded)

    def test_one_dimensional_column_sharding(self):
        data = np.arange(37, dtype=np.float32)

        def launch(rt, module):
            out = rt.stream((37,))
            module.indexed(rt.stream_from(data), out)
            return out.read()

        single, sharded = run_single_and_sharded(INDEXED, launch, devices=3)
        assert_bitwise(single, sharded)


class TestShardTileComposition:
    def test_shard_bands_tile_when_they_exceed_the_device_limit(self):
        # 40x40 across 4 devices with a 16-texel limit: each 10x40 band
        # still overflows its device and tiles 1x3 internally.
        source = ("kernel void shade(float a, float x<>, out float r<>) {"
                  " float2 p = indexof(r); r = a * x + p.x + 100.0 * p.y; }")
        data = (np.arange(40 * 40, dtype=np.float32).reshape(40, 40) % 97)

        def run(backend):
            with BrookRuntime(backend=backend) as rt:
                module = rt.compile(source)
                out = rt.stream((40, 40))
                module.shade(2.0, rt.stream_from(data), out)
                return out.read(), rt.statistics.summary()

        reference, _ = run(tiny_gles2_backend(64))
        sharded_backend = ShardedBackend(
            [tiny_gles2_backend(16) for _ in range(4)])
        sharded, stats = run(sharded_backend)
        assert_bitwise(reference, sharded)
        assert stats["extra_shards"] == 3
        # 4 bands x 3 tiles: 8 within-device tile switches.
        assert stats["extra_tiles"] == 8

    def test_sharded_1d_bands_fold_on_their_devices(self):
        data = (np.arange(120, dtype=np.float32) % 45)

        def run(backend):
            with BrookRuntime(backend=backend) as rt:
                module = rt.compile(INDEXED)
                out = rt.stream((120,))
                module.indexed(rt.stream_from(data), out)
                return out.read()

        reference = run(tiny_gles2_backend(128))
        sharded = run(ShardedBackend([tiny_gles2_backend(16)
                                      for _ in range(2)]))
        assert_bitwise(reference, sharded)


# --------------------------------------------------------------------------- #
# Executor integration
# --------------------------------------------------------------------------- #
class TestShardedExecutor:
    def test_hazard_tracking_keys_on_shard_storages(self):
        from repro.runtime.executor import _collect_hazards

        with BrookRuntime(backend="cpu", devices=3) as rt:
            module = rt.compile(SAXPY)
            x = rt.stream_from(np.zeros((9, 4), dtype=np.float32))
            y = rt.stream_from(np.zeros((9, 4), dtype=np.float32))
            out = rt.stream((9, 4))
            plan = module.saxpy.bind(1.0, x, y, out)
            reads, writes = set(), set()
            _collect_hazards(plan, reads, writes)
            assert writes == {id(s) for s in out.storage.shards}
            assert reads == {id(s) for s in x.storage.shards} | \
                {id(s) for s in y.storage.shards}

    def test_executor_pipeline_bitwise_identical(self):
        data = (np.arange(14 * 6, dtype=np.float32).reshape(14, 6) % 19)

        def launch(rt, module):
            src = rt.stream_from(data)
            tmp = rt.stream((14, 6))
            out = rt.stream((14, 6))
            with rt.executor(workers=3) as executor:
                executor.submit(module.twice.bind(src, tmp))
                executor.submit(module.plus3.bind(tmp, out))
                executor.submit(module.twice.bind(out, tmp)).result()
            return tmp.read()

        single, sharded = run_single_and_sharded(PIPE, launch)
        assert_bitwise(single, sharded)


# --------------------------------------------------------------------------- #
# Statistics and pricing
# --------------------------------------------------------------------------- #
class TestShardStatistics:
    def test_launch_record_carries_shards_and_halo(self):
        data = (np.arange(16 * 16, dtype=np.float32).reshape(16, 16) % 8)
        with BrookRuntime(backend="cpu", devices=4) as rt:
            module = rt.compile(STENCIL)
            out = rt.stream((16, 16))
            module.blur3(rt.stream_from(data), 16.0, 16.0, out)
            record = rt.statistics.launches[-1]
        assert record.shards == 4
        assert record.halo_bytes == 6 * 16 * 4
        assert record.passes == 4

    def test_per_kernel_aggregation_merges_shard_counters(self):
        stats = RunStatistics()
        stats.record_launch(KernelLaunchRecord(
            kernel="k", elements=8, flops=8, texture_fetches=0,
            shards=4, halo_bytes=64))
        stats.record_launch(KernelLaunchRecord(
            kernel="k", elements=8, flops=8, texture_fetches=0,
            shards=2, halo_bytes=32))
        merged = stats.per_kernel()["k"]
        assert merged.shards == 4
        assert merged.halo_bytes == 96
        assert stats.extra_shards == 4
        assert stats.halo_bytes == 96

    def test_gpu_model_prices_sharding_overhead(self):
        params = GPUCostParameters(
            name="toy", effective_gflops=1.0, transfer_gib_per_s=1.0,
            pass_overhead_us=100.0, texture_fetch_ns=2.0,
            fill_rate_mpixels=100.0, shard_dispatch_overhead_us=200.0,
            halo_gib_per_s=1.0)
        model = GPUModel(params)
        assert model.sharding_overhead(0, 0) == 0.0
        overhead = model.sharding_overhead(3, 1 << 30)
        assert overhead == pytest.approx(3 * 200e-6 + 1.0)
        base = GPUWorkload(passes=4, elements=4000, flops=4000,
                           texture_fetches=0, bytes_to_device=0,
                           bytes_from_device=0)
        with_shards = GPUWorkload(passes=4, elements=4000, flops=4000,
                                  texture_fetches=0, bytes_to_device=0,
                                  bytes_from_device=0,
                                  shard_dispatches=3, halo_bytes=4096)
        assert model.kernel_time(with_shards) > model.kernel_time(base)

    def test_sharded_time_scales_down_with_devices(self):
        params = GPUCostParameters(
            name="toy", effective_gflops=1.0, transfer_gib_per_s=1.0,
            pass_overhead_us=100.0, texture_fetch_ns=2.0,
            fill_rate_mpixels=100.0)
        model = GPUModel(params)
        workload = GPUWorkload(passes=8, elements=8e6, flops=64e6,
                               texture_fetches=8e6, bytes_to_device=4e6,
                               bytes_from_device=4e6, transfer_calls=8,
                               shard_dispatches=3, halo_bytes=1e5)
        t1 = model.time_seconds(workload)
        t4 = model.sharded_time_seconds(workload, devices=4)
        assert t4 < t1
        assert t4 > t1 / 4          # overheads keep it sublinear
        with pytest.raises(Exception):
            model.sharded_time_seconds(workload, devices=0)

    def test_unsharded_gather_replication_is_free_on_its_own_device(self):
        # A small lut lives whole on device 0; replication traffic is
        # charged only for the devices that do NOT already hold it.
        lut = np.arange(5, dtype=np.float32)
        idx = (np.arange(9 * 4, dtype=np.float32).reshape(9, 4) % 5)
        with BrookRuntime(backend="cpu", devices=3) as rt:
            module = rt.compile(LOOKUP)
            out = rt.stream((9, 4))
            module.lookup(rt.stream_from(idx), rt.stream_from(lut), out)
            record = rt.statistics.launches[-1]
        assert record.halo_bytes == 2 * lut.size * 4   # devices 1 and 2 only

    def test_workload_from_statistics_includes_shard_counters(self):
        stats = RunStatistics()
        stats.record_launch(KernelLaunchRecord(
            kernel="k", elements=8, flops=8, texture_fetches=0,
            shards=3, halo_bytes=128))
        workload = GPUWorkload.from_statistics(stats)
        assert workload.shard_dispatches == 2
        assert workload.halo_bytes == 128


# --------------------------------------------------------------------------- #
# Halo gather source semantics
# --------------------------------------------------------------------------- #
class TestHaloGatherSource:
    def test_clamping_matches_full_array_edges(self):
        full = np.arange(40, dtype=np.float32).reshape(8, 5)
        band = full[2:8]   # the last shard's band: rows 2..7 inclusive
        source = HaloGatherSource(band, (8, 5), row0=2, col0=0,
                                  clamping=True)
        rows = np.array([3.0, 6.0, 100.0])
        cols = np.array([0.0, 4.0, -3.0])
        values = source.fetch(rows, cols)
        # Row 100 clamps to the full array's edge row 7 (in-band), the
        # negative column clamps to 0.
        np.testing.assert_array_equal(values, [full[3, 0], full[6, 4],
                                               full[7, 0]])
        assert source.fetch_count == 3

    def test_cpu_semantics_raise_out_of_full_bounds(self):
        full = np.arange(40, dtype=np.float32).reshape(8, 5)
        source = HaloGatherSource(full[2:7], (8, 5), row0=2, col0=0,
                                  clamping=False)
        with pytest.raises(StreamError, match="out of bounds"):
            source.fetch(np.array([9.0]), np.array([0.0]))

    def test_cpu_semantics_raise_on_band_escape(self):
        full = np.arange(40, dtype=np.float32).reshape(8, 5)
        source = HaloGatherSource(full[2:7], (8, 5), row0=2, col0=0,
                                  clamping=False)
        with pytest.raises(StreamError, match="halo band"):
            source.fetch(np.array([0.0]), np.array([0.0]))


# --------------------------------------------------------------------------- #
# Degenerate inputs (satellite)
# --------------------------------------------------------------------------- #
class TestDegenerateInputs:
    def test_stream_from_empty_and_scalar_arrays(self):
        with BrookRuntime(backend="cpu") as rt:
            with pytest.raises(StreamError):
                rt.stream_from(np.array([], dtype=np.float32))
            with pytest.raises(StreamError):
                rt.stream_from(np.zeros((0, 4), dtype=np.float32))
            with pytest.raises(StreamError):
                rt.stream_from(np.float32(3.0))

    @pytest.mark.parametrize("devices", [1, 4])
    def test_single_element_reduction(self, devices):
        with BrookRuntime(backend="cpu", devices=devices) as rt:
            module = rt.compile(TOTAL)
            assert module.total(rt.stream_from(np.array([5.0]))) == 5.0

    def test_serve_bench_cli_reports_degenerate_devices(self, capsys):
        from repro.cli import main

        code = main(["serve-bench", "--backend", "cpu", "--size", "8",
                     "--requests", "1", "--devices", "0"])
        assert code == 2
        assert "at least one device" in capsys.readouterr().err
