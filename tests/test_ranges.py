"""Tests for the interval/range analysis (``repro.core.analysis.ranges``)
and its WCET bound tightening.

Two contracts are under test:

* the abstract interpreter is *sound* on the awkward corners (negative
  steps, ``--`` decrements, clamp idioms, branch refinement, non-affine
  updates, overflow) — it may answer "unknown" but never "proved" for an
  access that can actually fault; and
* range-deduced trip counts only ever *tighten* the legacy WCET bounds:
  the combination is the minimum, so no kernel's bound gets looser, and
  the binary-search app (whose probe limit is a local variable the legacy
  syntactic analysis cannot see through) goes from "no bound" to a real
  bound.
"""

from repro.apps.base import get_application, list_applications
from repro.core.analysis.ranges import (
    Interval,
    analyze_kernel_ranges,
    range_trip_overrides,
)
from repro.core.analysis.wcet import analyze_kernel_wcet
from repro.core.parser import parse
from repro.errors import WCETError


def kernel_from(body, params="float a<>, out float o<>"):
    unit = parse(f"kernel void f({params}) {{ {body} }}")
    return unit.kernels[0]


def gather_kernel(body, params="float lut[], float n, out float o<>"):
    return kernel_from(body, params=params)


LUT16 = {"gathers": {"lut": (16,)}, "params": {"n": (1, 16)}}


class TestLoopDirections:
    def test_negative_step_loop_bounds_gather(self):
        kernel = gather_kernel(
            "o = 0.0; for (int i = 15; i >= 0; i = i - 1) { o = o + lut[i]; }")
        analysis = analyze_kernel_ranges(kernel, LUT16)
        assert [s.verdict for s in analysis.gather_sites] == ["proved"]
        assert list(analysis.loop_trips.values()) == [16]

    def test_decrement_operator_loop(self):
        kernel = gather_kernel(
            "o = 0.0; for (int i = 15; i >= 0; i--) { o = o + lut[i]; }")
        analysis = analyze_kernel_ranges(kernel, LUT16)
        assert [s.verdict for s in analysis.gather_sites] == ["proved"]
        assert list(analysis.loop_trips.values()) == [16]

    def test_negative_step_overshoot_is_not_proved(self):
        # i reaches -1 on the last test but -2 after the final decrement;
        # the gather at i - 1 can hit -2 ... 14, so it must not be proved.
        kernel = gather_kernel(
            "o = 0.0; for (int i = 15; i >= 0; i = i - 1) { o = o + lut[i - 1.0]; }")
        analysis = analyze_kernel_ranges(kernel, LUT16)
        assert analysis.gather_sites[0].verdict != "proved"


class TestClampIdioms:
    def test_min_max_clamp_proves_neighbourhood(self):
        # The image-filter border idiom: min(idx + 1, n - 1) / max(idx - 1, 0).
        kernel = gather_kernel(
            "float i = indexof(o).x;"
            "float x0 = max(i - 1.0, 0.0);"
            "float x2 = min(i + 1.0, n - 1.0);"
            "o = lut[x0] + lut[x2];",
            params="float lut[], float n, out float o<>")
        spec = {"domain": ("n",), "gathers": {"lut": ("n",)},
                "params": {"n": (1, 16)}}
        analysis = analyze_kernel_ranges(kernel, spec)
        assert [s.verdict for s in analysis.gather_sites] == ["proved", "proved"]

    def test_clamp_builtin_proves(self):
        kernel = gather_kernel(
            "o = lut[clamp(a * 100.0, 0.0, n - 1.0)];",
            params="float a<>, float lut[], float n, out float o<>")
        analysis = analyze_kernel_ranges(kernel, LUT16)
        assert [s.verdict for s in analysis.gather_sites] == ["proved"]

    def test_unclamped_index_stays_unknown(self):
        kernel = gather_kernel(
            "o = lut[a * 100.0];",
            params="float a<>, float lut[], float n, out float o<>")
        analysis = analyze_kernel_ranges(kernel, LUT16)
        assert analysis.gather_sites[0].verdict == "unknown"


class TestBranchRefinement:
    def test_if_condition_narrows_index(self):
        kernel = gather_kernel(
            "float i = a; o = 0.0;"
            "if (i >= 0.0) { if (i < n) { o = lut[i]; } }",
            params="float a<>, float lut[], float n, out float o<>")
        analysis = analyze_kernel_ranges(kernel, LUT16)
        assert [s.verdict for s in analysis.gather_sites] == ["proved"]

    def test_else_branch_is_not_narrowed(self):
        kernel = gather_kernel(
            "float i = a; o = 0.0;"
            "if (i < 0.0) { o = 1.0; } else { o = lut[i]; }",
            params="float a<>, float lut[], float n, out float o<>")
        analysis = analyze_kernel_ranges(kernel, LUT16)
        # else-branch knows i >= 0 but nothing about the upper bound.
        assert analysis.gather_sites[0].verdict == "unknown"


class TestWideningAndOverflow:
    def test_non_affine_update_widens_but_terminates(self):
        # i doubles every iteration: no affine step, so the variable is
        # widened to top inside the loop; the gather must not be proved.
        kernel = gather_kernel(
            "o = 0.0; float j = 1.0;"
            "for (int i = 0; i < 8; i = i + 1) { j = j * 2.0; o = o + lut[j]; }")
        analysis = analyze_kernel_ranges(kernel, LUT16)
        assert analysis.gather_sites[0].verdict != "proved"
        # The loop itself is still bounded by its affine counter.
        assert list(analysis.loop_trips.values()) == [8]

    def test_interval_arithmetic_saturates(self):
        big = Interval.range(1.0, 1e308)
        squared = big.mul(big)
        assert squared.hi == float("inf")
        summed = squared.add(squared)
        assert summed.hi == float("inf")
        assert summed.lo == 2.0

    def test_widened_loop_variable_read_after_loop(self):
        kernel = kernel_from(
            "float j = 0.0;"
            "for (int i = 0; i < 4; i = i + 1) { j = j * j + 1.0; }"
            "o = j;")
        analysis = analyze_kernel_ranges(kernel, None)
        assert list(analysis.loop_trips.values()) == [4]


class TestTripOverrides:
    def test_overrides_keyed_by_loop_node(self):
        kernel = gather_kernel(
            "o = 0.0; for (int i = 0; i < n; i = i + 1) { o = o + lut[i]; }")
        overrides = range_trip_overrides(kernel, LUT16)
        assert list(overrides.values()) == [16]

    def test_overrides_never_raise(self):
        kernel = kernel_from("o = a;")
        assert range_trip_overrides(kernel, {"params": {"bogus": object()}}) == {}


class TestWCETTightening:
    def test_range_spec_tightens_param_bound(self):
        # Legacy bound: n <= 2048 from param_bounds. Range spec: n <= 100.
        kernel = kernel_from(
            "o = 0.0; for (int i = 0; i < n; i = i + 1) { o = o + a; }",
            params="float a<>, float n, out float o<>")
        loose = analyze_kernel_wcet(kernel, param_bounds={"n": 2048})
        tight = analyze_kernel_wcet(kernel, param_bounds={"n": 2048},
                                    range_spec={"params": {"n": (1, 100)}})
        assert loose.max_loop_iterations == 2048
        assert tight.max_loop_iterations == 100
        assert tight.flops_per_element < loose.flops_per_element

    def test_range_spec_never_loosens(self):
        # Range spec claims n <= 4096, param_bounds says 64: min wins.
        kernel = kernel_from(
            "o = 0.0; for (int i = 0; i < n; i = i + 1) { o = o + a; }",
            params="float a<>, float n, out float o<>")
        loose = analyze_kernel_wcet(kernel, param_bounds={"n": 64},
                                    range_spec={"params": {"n": (1, 4096)}})
        assert loose.max_loop_iterations == 64

    def test_local_variable_limit_needs_ranges(self):
        # The binary-search shape: the loop limit is a *local* variable,
        # which the legacy syntactic analysis cannot bound at all; the
        # interval analysis sees through the min(..., 24) clamp.
        from repro.core.analysis.loop_bounds import analyze_loop_bounds
        body = ("float limit = min(ceil(log2(max(n, 2.0))) + 1.0, 24.0);"
                "o = 0.0;"
                "for (int i = 0; i < limit; i = i + 1) { o = o + a; }")
        kernel = kernel_from(body, params="float a<>, float n, out float o<>")
        legacy = analyze_loop_bounds(kernel)
        assert not legacy.loops[0].is_bounded
        bound = analyze_kernel_wcet(kernel)
        assert bound.max_loop_iterations == 24
        tight = analyze_kernel_wcet(
            kernel, range_spec={"params": {"n": (1.0, 2048.0 * 2048.0)}})
        assert tight.max_loop_iterations == 23

    def test_binary_search_app_strictly_tighter(self):
        # The app's probe loop is capped at 24 by its clamp alone; the
        # published range spec (table <= 2048 x 2048) tightens it to 23.
        app = get_application("binary_search")
        unit = parse(app.brook_source)
        kernel = unit.kernels[0]
        loose = analyze_kernel_wcet(kernel)
        bound = analyze_kernel_wcet(
            kernel, range_spec=app.range_specs[kernel.name])
        assert bound.max_loop_iterations == 23
        assert bound.max_loop_iterations < loose.max_loop_iterations

    def test_suite_bounds_never_looser_with_specs(self):
        # For every seed app kernel the legacy analysis can bound, adding
        # the range spec must not increase any WCET component.
        for name in list_applications():
            app = get_application(name)
            unit = parse(app.brook_source)
            helpers = {f.name: f for f in unit.functions if not f.is_kernel}
            for kernel in unit.kernels:
                bounds = app.param_bounds.get(kernel.name, {})
                try:
                    legacy = analyze_kernel_wcet(kernel, helpers=helpers,
                                                 param_bounds=bounds)
                except WCETError:
                    continue
                ranged = analyze_kernel_wcet(
                    kernel, helpers=helpers, param_bounds=bounds,
                    range_spec=app.range_specs.get(kernel.name))
                assert ranged.max_loop_iterations <= legacy.max_loop_iterations
                assert ranged.flops_per_element <= legacy.flops_per_element
                assert ranged.fetches_per_element <= legacy.fetches_per_element
