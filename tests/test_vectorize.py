"""Tests for brookvec (repro.core.analysis.vectorize) and its plumbing.

Covers (a) the verdict taxonomy - BV-300 for divergence-free kernels,
BV-301 for divergent-but-proved ones, BV-302 for constructs outside the
vectorizable subset, BV-303 for unproved speculation obligations,
(b) the verdict/executable consistency contract of ``build_vector_path``,
(c) the ``enable_vector_path`` compiler option (inheritance from
``enable_fast_path``, compile-cache fingerprint participation), and
(d) the brooklint integration: BV facts, the BL-110 cross-reference and
the opt-in BV-3xx notes with SARIF rule descriptors.
"""

import json

import numpy as np
import pytest

from repro.core.analysis.lint import (LINT_RULES, lint_program, lint_source,
                                      sarif_json)
from repro.core.analysis.vectorize import (VERDICT_FALLBACK, VERDICT_MASKED,
                                           VERDICT_UNPROVED,
                                           VERDICT_VECTORIZED,
                                           analyze_kernel_vectorization)
from repro.core.compiler import CompilerOptions, compile_source
from repro.core.exec.vectorized import build_vector_path
from repro.runtime import BrookRuntime

SOURCE = """
float double_it(float v) {
    return v * 2.0;
}

kernel void straight(float x<>, float y<>, out float r<>) {
    r = x * 3.0 + y;
}

kernel void uniform_branch(float flag, float x<>, out float r<>) {
    if (flag > 0.0) {
        r = x * 2.0;
    } else {
        r = x * 0.5;
    }
}

kernel void divergent(float x<>, out float r<>) {
    if (x > 0.0) {
        r = x * 2.0;
    } else {
        r = x * 0.5;
    }
}

kernel void masked_div(float x<>, float d, out float r<>) {
    if (x > 0.0) {
        r = x / d;
    } else {
        r = x;
    }
}

kernel void whiles(float x<>, out float r<>) {
    float acc = x;
    while (acc < 4.0) {
        acc = acc + 1.0;
    }
    r = acc;
}

kernel void helped(float x<>, out float r<>) {
    if (x > 0.0) {
        r = double_it(x);
    } else {
        r = x;
    }
}

reduce void total(float v<>, reduce float acc) {
    acc += v;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_source(SOURCE, strict=False,
                          options=CompilerOptions(strict=False))


def _analyze(program, name, spec=None, param_bounds=None):
    kernel = program.kernel(name).definition
    return analyze_kernel_vectorization(kernel, program.helpers(),
                                        spec=spec, param_bounds=param_bounds)


# --------------------------------------------------------------------------- #
# Verdict taxonomy
# --------------------------------------------------------------------------- #
class TestVerdicts:
    def test_straight_line_is_vectorized(self, program):
        report = _analyze(program, "straight")
        assert report.verdict == VERDICT_VECTORIZED == "BV-300"
        assert report.vectorizable and not report.divergent

    def test_uniform_branch_stays_unmasked(self, program):
        # The condition only reads a scalar parameter, so every lane
        # agrees and no mask is needed.
        report = _analyze(program, "uniform_branch")
        assert report.verdict == VERDICT_VECTORIZED
        assert not report.divergent

    def test_divergent_branch_is_masked(self, program):
        report = _analyze(program, "divergent")
        assert report.verdict == VERDICT_MASKED == "BV-301"
        assert report.divergent
        assert sum(1 for b in report.branches
                   if b.kind == "divergent") == 1

    def test_while_loop_falls_back_with_location(self, program):
        report = _analyze(program, "whiles")
        assert report.verdict == VERDICT_FALLBACK == "BV-302"
        assert report.blocking()
        assert report.location is not None

    def test_unproved_division_obligation(self, program):
        # ``d`` is unbounded, so the masked-out lanes of ``x / d`` might
        # divide by zero; the obligation fails and names the interval.
        report = _analyze(program, "masked_div")
        assert report.verdict == VERDICT_UNPROVED == "BV-303"
        failed = [o for o in report.obligations if not o.proved]
        assert failed and failed[0].kind == "division-by-zero"
        assert "zero" in report.blocking()

    def test_bounded_divisor_discharges_the_obligation(self, program):
        spec = {"params": {"d": {"min": 1.0, "max": 8.0}}}
        report = _analyze(program, "masked_div", spec=spec)
        assert report.verdict == VERDICT_MASKED
        assert report.obligations_proved == len(report.obligations)

    def test_facts_counters(self, program):
        facts = _analyze(program, "divergent").to_facts()
        assert facts["vector_verdict"] == VERDICT_MASKED
        assert facts["divergent_branches"] == 1
        assert facts["divergent_loops"] == 0


# --------------------------------------------------------------------------- #
# build_vector_path: verdicts never promise a path that will not run
# --------------------------------------------------------------------------- #
class TestConsistency:
    @pytest.mark.parametrize("name", ["straight", "uniform_branch",
                                      "divergent", "helped"])
    def test_approved_kernels_get_a_program(self, program, name):
        kernel = program.kernel(name).definition
        vec, report = build_vector_path(kernel, program.helpers())
        if report.vectorizable:
            assert vec is not None
        else:
            assert vec is None

    @pytest.mark.parametrize("name", ["whiles", "masked_div"])
    def test_rejected_kernels_get_none(self, program, name):
        kernel = program.kernel(name).definition
        vec, report = build_vector_path(kernel, program.helpers())
        assert vec is None
        assert not report.vectorizable

    def test_reductions_are_downgraded(self, program):
        kernel = program.kernel("total").definition
        vec, report = build_vector_path(kernel, program.helpers())
        assert vec is None
        assert report.verdict == VERDICT_FALLBACK
        assert "reduction" in report.reason


# --------------------------------------------------------------------------- #
# Compiler option wiring (satellite: cache fingerprint regression)
# --------------------------------------------------------------------------- #
class TestOptions:
    def test_default_inherits_the_fast_path_switch(self):
        assert CompilerOptions().vector_enabled
        assert not CompilerOptions(enable_fast_path=False).vector_enabled
        assert CompilerOptions(enable_fast_path=False,
                               enable_vector_path=True).vector_enabled
        assert not CompilerOptions(enable_vector_path=False).vector_enabled

    def test_compile_attaches_vector_paths(self):
        compiled = compile_source(
            SOURCE, options=CompilerOptions(strict=False))
        assert compiled.kernel("straight").vector_path is not None
        assert compiled.kernel("divergent").vector_path is not None
        assert compiled.kernel("whiles").vector_path is None
        assert compiled.kernel("whiles").vector_report is not None

    def test_option_disables_compilation(self):
        disabled = compile_source(
            SOURCE, options=CompilerOptions(strict=False,
                                            enable_vector_path=False))
        assert all(k.vector_path is None for k in disabled.kernels.values())

    def test_option_is_part_of_the_fingerprint(self):
        # Regression: toggling enable_vector_path must miss the
        # per-runtime compile cache, exactly like enable_fast_path.
        assert CompilerOptions().fingerprint() != \
            CompilerOptions(enable_vector_path=False).fingerprint()
        assert CompilerOptions(enable_vector_path=True).fingerprint() != \
            CompilerOptions(enable_vector_path=False).fingerprint()

    def test_runtime_cache_round_trip(self):
        source = ("kernel void scale(float g, float x<>, out float r<>) "
                  "{ r = g * x; }")
        with BrookRuntime(backend="cpu") as rt:
            rt.compile(source)
            before = rt.compile_cache_info()
            rt.compile(source)
            after = rt.compile_cache_info()
            assert after["hits"] == before["hits"] + 1
        vector_off = CompilerOptions(enable_vector_path=False)
        with BrookRuntime(backend="cpu", compiler_options=vector_off) as rt:
            module = rt.compile(source)
            assert module.program.kernel("scale").vector_path is None


# --------------------------------------------------------------------------- #
# Lint integration: facts, BL-110 cross-reference, BV notes, SARIF
# --------------------------------------------------------------------------- #
class TestLintIntegration:
    def test_facts_carry_the_verdict(self, program):
        report = lint_program(program)
        assert report.facts["straight"]["vector_verdict"] == VERDICT_VECTORIZED
        assert report.facts["whiles"]["vector_verdict"] == VERDICT_FALLBACK
        assert "vector_verdict" not in report.facts["total"]

    def test_bl110_cross_references_the_verdict(self, program):
        report = lint_program(program)
        by_kernel = {d.kernel: d for d in report.diagnostics
                     if d.rule == "BL-110"}
        assert "whole-array" in by_kernel["divergent"].message
        assert "BV-301" in by_kernel["divergent"].message
        assert "masked interpreter" in by_kernel["whiles"].message
        assert "BV-302" in by_kernel["whiles"].message

    def test_bv_notes_are_opt_in(self, program):
        plain = lint_program(program)
        assert not any(d.rule.startswith("BV-") for d in plain.diagnostics)
        vectorized = lint_program(program, vectorize=True)
        rules = {d.kernel: d.rule for d in vectorized.diagnostics
                 if d.rule.startswith("BV-")}
        assert rules["straight"] == "BV-300"
        assert rules["divergent"] == "BV-301"
        assert rules["whiles"] == "BV-302"
        assert rules["masked_div"] == "BV-303"

    def test_bv_rules_are_registered(self):
        for code in ("BV-300", "BV-301", "BV-302", "BV-303"):
            assert code in LINT_RULES

    def test_sarif_carries_bv_rule_descriptors(self, program):
        report = lint_program(program, vectorize=True)
        sarif = json.loads(sarif_json(report))
        run = sarif["runs"][0]
        rule_ids = {rule["id"]
                    for rule in run["tool"]["driver"]["rules"]}
        assert {"BV-301", "BV-302", "BV-303"} <= rule_ids
        assert any(result["ruleId"] == "BV-303"
                   for result in run["results"])

    def test_lint_source_threads_the_flag(self):
        report = lint_source(SOURCE, vectorize=True)
        assert any(d.rule.startswith("BV-") for d in report.diagnostics)
