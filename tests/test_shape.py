"""Unit and property-based tests for stream shapes and the 2-D translation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis.resources import TargetLimits
from repro.errors import StreamError
from repro.runtime.shape import MAX_STREAM_RANK, StreamShape


class TestConstruction:
    def test_from_int(self):
        shape = StreamShape.of(16)
        assert shape.dims == (16,)
        assert shape.rank == 1

    def test_from_tuple(self):
        assert StreamShape.of((4, 8)).dims == (4, 8)

    def test_from_existing_shape(self):
        shape = StreamShape.of((4, 8))
        assert StreamShape.of(shape) is shape

    def test_zero_extent_rejected(self):
        with pytest.raises(StreamError):
            StreamShape.of((4, 0))

    def test_empty_shape_rejected(self):
        with pytest.raises(StreamError):
            StreamShape(())

    def test_too_many_dimensions_rejected(self):
        with pytest.raises(StreamError):
            StreamShape.of((2,) * (MAX_STREAM_RANK + 1))

    def test_element_count(self):
        assert StreamShape.of((3, 4, 5)).element_count == 60


class TestLayout:
    def test_1d_layout(self):
        shape = StreamShape.of(100)
        assert shape.layout_2d == (1, 100)

    def test_2d_layout(self):
        shape = StreamShape.of((32, 64))
        assert shape.rows == 32
        assert shape.cols == 64

    def test_3d_collapses_leading_dimensions(self):
        shape = StreamShape.of((2, 3, 16))
        assert shape.layout_2d == (6, 16)

    def test_4d_collapses_leading_dimensions(self):
        shape = StreamShape.of((2, 3, 4, 8))
        assert shape.layout_2d == (24, 8)

    def test_texture_extent_pot_padding(self):
        limits = TargetLimits(requires_power_of_two=True)
        assert StreamShape.of((30, 100)).texture_extent(limits) == (128, 32)

    def test_texture_extent_no_padding(self):
        limits = TargetLimits(requires_power_of_two=False)
        assert StreamShape.of((30, 100)).texture_extent(limits) == (100, 30)

    def test_element_positions(self):
        positions = StreamShape.of((2, 3)).element_positions()
        assert positions.shape == (6, 2)
        np.testing.assert_array_equal(positions[:, 0], [0, 1, 2, 0, 1, 2])
        np.testing.assert_array_equal(positions[:, 1], [0, 0, 0, 1, 1, 1])


class TestFlattenUnflatten:
    def test_flatten_2d_identity(self):
        shape = StreamShape.of((4, 8))
        data = np.arange(32, dtype=np.float32).reshape(4, 8)
        np.testing.assert_array_equal(shape.flatten(data), data)

    def test_flatten_1d_makes_row(self):
        shape = StreamShape.of(6)
        flat = shape.flatten(np.arange(6, dtype=np.float32))
        assert flat.shape == (1, 6)

    def test_flatten_3d(self):
        shape = StreamShape.of((2, 3, 4))
        data = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        assert shape.flatten(data).shape == (6, 4)

    def test_flatten_rejects_wrong_shape(self):
        with pytest.raises(StreamError):
            StreamShape.of((4, 4)).flatten(np.zeros((2, 2), dtype=np.float32))

    def test_flatten_vector_elements(self):
        shape = StreamShape.of((2, 3))
        data = np.zeros((2, 3, 4), dtype=np.float32)
        assert shape.flatten(data, element_width=4).shape == (2, 3, 4)

    @given(st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_flatten_unflatten_roundtrip(self, dims):
        shape = StreamShape.of(tuple(dims))
        data = np.random.default_rng(0).uniform(
            size=shape.dims).astype(np.float32)
        restored = shape.unflatten(shape.flatten(data))
        np.testing.assert_array_equal(restored, data)

    @given(st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_layout_preserves_element_count(self, dims):
        shape = StreamShape.of(tuple(dims))
        rows, cols = shape.layout_2d
        assert rows * cols == shape.element_count

    @given(st.integers(min_value=1, max_value=2048),
           st.integers(min_value=1, max_value=2048))
    @settings(max_examples=80, deadline=None)
    def test_pot_padding_is_sufficient_and_power_of_two(self, rows, cols):
        limits = TargetLimits(requires_power_of_two=True, max_texture_size=4096)
        width, height = StreamShape.of((rows, cols)).texture_extent(limits)
        assert width >= cols and height >= rows
        assert width & (width - 1) == 0
        assert height & (height - 1) == 0
