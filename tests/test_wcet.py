"""Tests for the static WCET analysis (``repro.core.analysis.wcet``).

The contract under test: every bound is *sound* on the runtime's own
modelled timeline (the GPU-model time of the work the runtime actually
records never exceeds the priced bound), and kernels outside the
certified subset get a typed :class:`~repro.errors.WCETError` - never a
number.
"""

import numpy as np
import pytest

from repro.core.analysis.wcet import (
    KernelWCET,
    WCETBound,
    analyze_kernel_wcet,
    kernel_wcet,
    plan_wcet,
    platform_limits,
    program_wcet,
    request_wcet,
)
from repro.core.compiler import compile_source
from repro.core.parser import parse
from repro.errors import WCETError
from repro.runtime import BrookRuntime
from repro.service import ServiceRequest, call
from repro.timing.platforms import get_platform


def kernel_from(body, params="float a<>, out float o<>"):
    unit = parse(f"kernel void f({params}) {{ {body} }}")
    return unit.kernels[0]


def modelled_seconds(runtime, marker, platform="target", devices=1):
    """Price the work recorded since ``marker`` - the service's modelled
    actual, replicated for plan-level soundness checks."""
    from repro.timing.gpu_model import GPUWorkload

    aggregate = runtime.statistics.workload_since(marker)
    workload = GPUWorkload(
        passes=aggregate["passes"],
        elements=aggregate["elements"],
        flops=aggregate["flops"],
        texture_fetches=aggregate["texture_fetches"],
        bytes_to_device=aggregate["bytes_uploaded"],
        bytes_from_device=aggregate["bytes_downloaded"],
        transfer_calls=aggregate["transfer_calls"],
        tile_switches=aggregate["extra_tiles"],
        shard_dispatches=aggregate["extra_shards"],
        halo_bytes=aggregate["halo_bytes"],
    )
    model = get_platform(platform).gpu
    if devices > 1:
        return model.sharded_time_seconds(workload, devices)
    return model.time_seconds(workload)


# --------------------------------------------------------------------------- #
# Kernel-level bounds
# --------------------------------------------------------------------------- #
class TestKernelBounds:
    def test_simple_kernel_has_positive_bound(self):
        wcet = analyze_kernel_wcet(kernel_from("o = a * 2.0 + 1.0;"))
        assert isinstance(wcet, KernelWCET)
        assert wcet.flops_per_element > 0
        assert wcet.gather_fetches_per_element == 0
        assert wcet.stream_inputs == 1
        assert wcet.max_loop_iterations == 1

    def test_fetches_per_element_includes_stream_samplers(self):
        wcet = analyze_kernel_wcet(kernel_from("o = a;"))
        assert wcet.fetches_per_element == wcet.stream_inputs

    def test_loop_multiplies_body_cost(self):
        flat = analyze_kernel_wcet(kernel_from("o = 0.0; o += a;"))
        looped = analyze_kernel_wcet(kernel_from(
            "o = 0.0; for (int i = 0; i < 8; i = i + 1) { o += a; }"
        ))
        assert looped.max_loop_iterations == 8
        assert looped.flops_per_element >= 8 * (flat.flops_per_element - 1)

    def test_gather_counts_as_fetch(self):
        gather = analyze_kernel_wcet(kernel_from(
            "o = a[0][0];", params="float a[][], out float o<>"))
        assert gather.gather_fetches_per_element >= 1

    def test_expensive_builtins_cost_more(self):
        cheap = analyze_kernel_wcet(kernel_from("o = a + 1.0;"))
        pricey = analyze_kernel_wcet(kernel_from("o = sqrt(a) + sin(a);"))
        assert pricey.flops_per_element > cheap.flops_per_element

    def test_branches_are_summed_not_maxed(self):
        # The masked interpreter executes both sides of an if, so the
        # bound must cover then + else + condition.
        both = analyze_kernel_wcet(kernel_from(
            "if (a > 0.0) { o = a * 2.0; } else { o = a * 3.0; }"
        ))
        single = analyze_kernel_wcet(kernel_from("o = a * 2.0;"))
        assert both.flops_per_element > single.flops_per_element

    def test_helper_body_inlined_at_full_cost(self):
        unit = parse(
            "float quad(float x) { return x * x * x * x; }\n"
            "kernel void f(float a<>, out float o<>) { o = quad(a); }"
        )
        helpers = {fn.name: fn for fn in unit.helpers}
        with_helper = analyze_kernel_wcet(unit.kernels[0], helpers)
        without = analyze_kernel_wcet(kernel_from("o = a;"))
        assert with_helper.flops_per_element > without.flops_per_element

    def test_recursion_rejected(self):
        unit = parse(
            "float loop_fn(float x) { return loop_fn(x); }\n"
            "kernel void f(float a<>, out float o<>) { o = loop_fn(a); }"
        )
        helpers = {fn.name: fn for fn in unit.helpers}
        with pytest.raises(WCETError, match="recursi"):
            analyze_kernel_wcet(unit.kernels[0], helpers)

    def test_unknown_call_rejected(self):
        with pytest.raises(WCETError):
            analyze_kernel_wcet(kernel_from("o = mystery(a);"))

    def test_while_loop_rejected(self):
        with pytest.raises(WCETError):
            analyze_kernel_wcet(kernel_from(
                "float i = 0.0; while (i < a) { i += 1.0; } o = i;"))

    def test_unbounded_for_rejected_without_declared_bound(self):
        kernel = kernel_from(
            "o = 0.0; for (int i = 0; i < n; i = i + 1) { o += a; }",
            params="float a<>, float n, out float o<>",
        )
        with pytest.raises(WCETError):
            analyze_kernel_wcet(kernel)
        bounded = analyze_kernel_wcet(kernel, param_bounds={"n": 16})
        assert bounded.max_loop_iterations == 16


# --------------------------------------------------------------------------- #
# Program-level entry points (certification-gated)
# --------------------------------------------------------------------------- #
class TestProgramBounds:
    COMPLIANT = """
    kernel void scale(float x<>, float k, out float y<>) { y = x * k; }
    reduce void total(float v<>, reduce float acc) { acc += v; }
    """
    NON_COMPLIANT = """
    kernel void spin(float x<>, out float y<>) {
        float i = 0.0;
        while (i < x) { i += 1.0; }
        y = i;
    }
    """

    def test_program_wcet_covers_every_kernel(self):
        program = compile_source(self.COMPLIANT)
        bounds = program_wcet(program)
        assert set(bounds) == set(program.kernels)
        assert all(isinstance(b, KernelWCET) for b in bounds.values())
        assert any(b.is_reduction for b in bounds.values())

    def test_non_compliant_kernel_gets_no_bound(self):
        program = compile_source(self.NON_COMPLIANT, strict=False)
        name = next(iter(program.kernels))
        with pytest.raises(WCETError) as excinfo:
            kernel_wcet(program, name)
        # The typed error carries the certification rule ids.
        assert excinfo.value.reasons
        assert any("BA-" in reason for reason in excinfo.value.reasons)

    def test_platform_limits_are_conservative(self):
        limits = platform_limits(get_platform("target"))
        assert limits.max_texture_size > 0
        assert limits.max_texture_size <= \
            get_platform("target").max_stream_dimension


# --------------------------------------------------------------------------- #
# Plan-level soundness: bound >= modelled actual on every execution mode
# --------------------------------------------------------------------------- #
PIPELINE_SRC = """
kernel void scale(float x<>, float k, out float y<>) { y = x * k; }
kernel void offset(float x<>, float d, out float y<>) { y = x + d; }
reduce void total(float v<>, reduce float acc) { acc += v; }
"""


class TestPlanSoundness:
    def _frame(self, size=16):
        return np.random.default_rng(0).uniform(
            0, 1, (size, size)).astype(np.float32)

    def test_map_plan_bound_is_sound(self):
        rt = BrookRuntime(backend="cpu")
        module = rt.compile(PIPELINE_SRC)
        x = rt.stream_from(self._frame())
        y = rt.stream((16, 16))
        plan = module.scale.bind(x, 2.0, y)
        bound = plan_wcet(plan, limits=rt.backend.target_limits())
        marker = rt.statistics.marker()
        plan.launch()
        actual = modelled_seconds(rt, marker)
        assert actual > 0
        assert bound.seconds >= actual

    def test_reduction_plan_bound_is_sound(self):
        rt = BrookRuntime(backend="cpu")
        module = rt.compile(PIPELINE_SRC)
        stream = rt.stream_from(self._frame())
        plan = module.total.bind(stream)
        bound = plan_wcet(plan, limits=rt.backend.target_limits())
        marker = rt.statistics.marker()
        plan.launch()
        assert bound.seconds >= modelled_seconds(rt, marker)

    def test_fused_pipeline_bound_is_sound(self):
        rt = BrookRuntime(backend="cpu")
        module = rt.compile(PIPELINE_SRC)
        x = rt.stream_from(self._frame())
        y, z = rt.stream((16, 16)), rt.stream((16, 16))
        pipeline = rt.fuse([
            module.scale.bind(x, 2.0, y),
            module.offset.bind(y, 0.25, z),
        ])
        bound = plan_wcet(pipeline, limits=rt.backend.target_limits())
        marker = rt.statistics.marker()
        pipeline.launch()
        assert bound.seconds >= modelled_seconds(rt, marker)

    def test_sharded_plan_bound_is_sound(self):
        rt = BrookRuntime(backend="cpu", devices=2)
        module = rt.compile(PIPELINE_SRC)
        x = rt.stream_from(self._frame())
        y = rt.stream((16, 16))
        plan = module.scale.bind(x, 2.0, y)
        bound = plan_wcet(plan, devices=2, limits=rt.backend.target_limits())
        marker = rt.statistics.marker()
        plan.launch()
        assert bound.seconds >= modelled_seconds(rt, marker, devices=2)

    def test_tiled_plan_bound_is_sound(self):
        # 40x40 on the constrained ES2 profile forces the tiled engine.
        rt = BrookRuntime(backend="gles2", device="constrained-es2")
        module = rt.compile(PIPELINE_SRC)
        x = rt.stream_from(self._frame(40))
        y = rt.stream((40, 40))
        plan = module.scale.bind(x, 2.0, y)
        bound = plan_wcet(plan, limits=rt.backend.target_limits())
        marker = rt.statistics.marker()
        plan.launch()
        assert bound.seconds >= modelled_seconds(rt, marker)

    def test_scaled_bound(self):
        rt = BrookRuntime(backend="cpu")
        module = rt.compile(PIPELINE_SRC)
        plan = module.scale.bind(rt.stream((8, 8)), 2.0, rt.stream((8, 8)))
        bound = plan_wcet(plan)
        doubled = bound.scaled(2.0)
        assert isinstance(doubled, WCETBound)
        assert doubled.seconds == pytest.approx(2.0 * bound.seconds)


# --------------------------------------------------------------------------- #
# Request-level bounds
# --------------------------------------------------------------------------- #
class TestRequestBounds:
    def _request(self, size=16):
        data = np.random.default_rng(1).uniform(
            0, 1, (size, size)).astype(np.float32)
        return ServiceRequest(
            source=PIPELINE_SRC,
            calls=(call("scale", "x", 2.0, "tmp"),
                   call("offset", "tmp", 0.25, "out")),
            inputs={"x": data},
            outputs={"out": data.shape},
            scratch={"tmp": data.shape},
        )

    def test_request_bound_includes_transfers(self):
        request = self._request()
        program = compile_source(request.source)
        bound = request_wcet(request, program)
        assert bound.seconds > 0
        assert bound.workload.bytes_to_device >= 16 * 16 * 4
        assert bound.workload.bytes_from_device >= 16 * 16 * 4
        assert bound.workload.transfer_calls >= 2

    def test_request_bound_grows_with_devices(self):
        request = self._request()
        program = compile_source(request.source)
        one = request_wcet(request, program, devices=1)
        two = request_wcet(request, program, devices=2)
        # More devices add shard dispatch + halo overhead to the bound.
        assert two.workload.shard_dispatches > one.workload.shard_dispatches

    def test_unknown_kernel_rejected(self):
        request = self._request()
        program = compile_source(
            "kernel void other(float x<>, out float y<>) { y = x; }")
        with pytest.raises(WCETError, match="unknown kernel"):
            request_wcet(request, program)
