"""Edge-case tests for backends and target-dependent certification."""

import numpy as np
import pytest

from repro.apps import get_application, list_applications
from repro.core import compile_source
from repro.errors import BackendError, CertificationError
from repro.gles2.device import get_device_profile
from repro.runtime import BrookRuntime
from repro.runtime.shape import StreamShape


class TestTargetDependentCertification:
    """The same source can be certifiable for one device and not another -
    certification is always relative to a target's limits."""

    def test_constrained_device_rejects_wide_kernels(self):
        constrained = get_device_profile("constrained-es2").limits.to_target_limits()
        params = ", ".join(f"float s{i}<>" for i in range(4)) + ", out float o<>"
        body = "o = " + " + ".join(f"s{i}" for i in range(4)) + ";"
        source = f"kernel void wide({params}) {{ {body} }}"
        # Fine on the default VideoCore IV profile (8 texture units)...
        assert compile_source(source).is_certified
        # ...but over the 2 texture units of the constrained device.
        with pytest.raises(CertificationError):
            compile_source(source, target=constrained)

    def test_constrained_device_rejects_long_kernels(self):
        constrained = get_device_profile("constrained-es2").limits.to_target_limits()
        body = "o = a;" + " o = o * 1.001 + 0.01;" * 200
        source = f"kernel void long_kernel(float a<>, out float o<>) {{ {body} }}"
        # Fits the VideoCore IV instruction budget (2048 slots)...
        assert compile_source(source).is_certified
        # ...but not the 256 slots of the constrained device.
        program = compile_source(source, target=constrained, strict=False)
        assert not program.is_certified
        assert program.certification.violations_for_rule("BA-009")

    def test_suite_certifiable_for_both_embedded_devices(self):
        for device in ("videocore-iv", "mali-400"):
            target = get_device_profile(device).limits.to_target_limits()
            for name in list_applications():
                app = get_application(name)
                program = compile_source(app.brook_source, target=target,
                                         param_bounds=app.param_bounds,
                                         strict=False)
                assert program.is_certified, f"{name} on {device}"


class TestGLES2BackendEdges:
    def test_launch_rejects_multiple_outputs(self, gles2_runtime):
        backend = gles2_runtime.backend
        module = gles2_runtime.compile(
            "kernel void one(float a<>, out float o<>) { o = a; }"
        )
        kernel = module.program.kernel("one")
        a = gles2_runtime.stream((4, 4))
        o1 = gles2_runtime.stream((4, 4))
        o2 = gles2_runtime.stream((4, 4))
        with pytest.raises(BackendError):
            backend.launch(kernel, {}, StreamShape.of((4, 4)),
                           {"a": a}, {}, {}, {"o": o1, "extra": o2})

    def test_stream_larger_than_texture_limit_is_tiled(self, gles2_runtime):
        """A stream exceeding GL_MAX_TEXTURE_SIZE used to raise at
        allocation; the tiled execution engine now backs it with one
        texture per device-sized tile."""
        from repro.runtime.tiling import TiledStorage
        stream = gles2_runtime.stream((4096, 4096))
        assert isinstance(stream.storage, TiledStorage)
        assert stream.storage.tile_count == 4
        for tile_storage in stream.storage.tiles:
            assert tile_storage.texture.width <= 2048
            assert tile_storage.texture.height <= 2048

    def test_mali_device_allows_larger_streams(self):
        runtime = BrookRuntime(backend="gles2", device="mali-400")
        stream = runtime.stream((4096, 2048))
        assert stream.element_count == 4096 * 2048

    def test_out_of_bounds_gather_does_not_crash_gles2(self, gles2_runtime):
        """The availability argument of section 4: a stray access through
        the texture unit clamps instead of faulting."""
        module = gles2_runtime.compile(
            "kernel void stray(float a<>, float lut[], out float o<>) {"
            " o = lut[indexof(a).x + 1000.0]; }"
        )
        a = gles2_runtime.stream_from(np.zeros((4, 4), dtype=np.float32))
        lut = gles2_runtime.stream_from(np.arange(16, dtype=np.float32))
        out = gles2_runtime.stream((4, 4))
        module.stray(a, lut, out)          # must not raise
        np.testing.assert_allclose(out.read(), 15.0)

    def test_same_stray_access_faults_on_cpu_backend(self, cpu_runtime):
        from repro.errors import StreamError
        module = cpu_runtime.compile(
            "kernel void stray(float a<>, float lut[], out float o<>) {"
            " o = lut[indexof(a).x + 1000.0]; }"
        )
        a = cpu_runtime.stream_from(np.zeros((4, 4), dtype=np.float32))
        lut = cpu_runtime.stream_from(np.arange(16, dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        with pytest.raises(StreamError):
            module.stray(a, lut, out)

    def test_input_stream_smaller_than_domain_resamples_on_gles2(self, gles2_runtime):
        """Brook stretches mismatched stream shapes through normalized
        sampling; the GL ES 2 backend inherits that behaviour."""
        module = gles2_runtime.compile(
            "kernel void copy(float a<>, out float o<>) { o = a; }"
        )
        a = gles2_runtime.stream_from(
            np.arange(4, dtype=np.float32).reshape(2, 2))
        out = gles2_runtime.stream((4, 4))
        module.copy(a, out)
        result = out.read()
        assert result.shape == (4, 4)
        assert set(np.unique(result)) <= {0.0, 1.0, 2.0, 3.0}

    def test_cpu_backend_rejects_mismatched_domains(self, cpu_runtime):
        from repro.errors import KernelLaunchError
        module = cpu_runtime.compile(
            "kernel void copy(float a<>, out float o<>) { o = a; }"
        )
        a = cpu_runtime.stream_from(np.zeros((2, 2), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        with pytest.raises(KernelLaunchError):
            module.copy(a, out)


class TestCALBackendEdges:
    def test_vector_kernel_end_to_end(self, cal_runtime):
        """The desktop backend keeps float4 kernels vectorized (as Brook+
        does), which the embedded backend cannot."""
        module = cal_runtime.compile(
            "kernel void scale4(float4 v<>, float k, out float4 o<>) {"
            " o = v * k; }"
        )
        data = np.random.default_rng(0).uniform(-1, 1, (4, 4, 4)).astype(np.float32)
        v = cal_runtime.stream_from(data, element_width=4)
        out = cal_runtime.stream((4, 4), element_width=4)
        module.scale4(v, 2.0, out)
        np.testing.assert_allclose(out.read(), data * 2.0, rtol=1e-6)

    def test_multi_output_kernel_single_pass_on_cal(self, cal_runtime):
        module = cal_runtime.compile(
            "kernel void pair(float a<>, out float x<>, out float y<>) {"
            " x = a + 1.0; y = a - 1.0; }"
        )
        a = cal_runtime.stream_from(np.zeros((4, 4), dtype=np.float32))
        x, y = cal_runtime.stream((4, 4)), cal_runtime.stream((4, 4))
        module.pair(a, x, y)
        # CAL supports multiple render targets: a single pass suffices.
        assert cal_runtime.statistics.total_passes == 1
        np.testing.assert_allclose(x.read(), 1.0)
        np.testing.assert_allclose(y.read(), -1.0)

    def test_dispatches_recorded_on_cal_context(self, cal_runtime):
        module = cal_runtime.compile(
            "kernel void copy(float a<>, out float o<>) { o = a; }"
        )
        a = cal_runtime.stream_from(np.zeros((8, 8), dtype=np.float32))
        out = cal_runtime.stream((8, 8))
        module.copy(a, out)
        assert cal_runtime.backend.context.total_dispatches == 1
