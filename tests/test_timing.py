"""Unit tests for the analytic performance models and platform definitions."""

import pytest

from repro.runtime.profiling import KernelLaunchRecord, RunStatistics, TransferRecord
from repro.timing import (
    CPUModel,
    CPUWorkload,
    GPUCostParameters,
    GPUModel,
    GPUWorkload,
    PLATFORMS,
    Platform,
    REFERENCE_PLATFORM,
    TARGET_PLATFORM,
    get_platform,
)
from repro.errors import TimingModelError


def simple_gpu_workload(**overrides):
    base = dict(passes=1, elements=1_000_000, flops=10_000_000,
                texture_fetches=1_000_000, bytes_to_device=4_000_000,
                bytes_from_device=4_000_000)
    base.update(overrides)
    return GPUWorkload(**base)


class TestCPUModel:
    def setup_method(self):
        self.cpu = CPUModel(name="test", frequency_ghz=1.0, flops_per_cycle=1.0,
                            l1_bytes=32 * 1024, l2_bytes=256 * 1024,
                            memory_bandwidth_gib=1.0)

    def test_compute_bound_time(self):
        workload = CPUWorkload(flops=1e9)
        assert self.cpu.time_seconds(workload) == pytest.approx(1.0)

    def test_ilp_factor_scales_compute(self):
        slow = self.cpu.time_seconds(CPUWorkload(flops=1e9, ilp_factor=1.0))
        fast = self.cpu.time_seconds(CPUWorkload(flops=1e9, ilp_factor=2.0))
        assert fast == pytest.approx(slow / 2.0)

    def test_vectorized_speedup(self):
        cpu = CPUModel(name="simd", frequency_ghz=1.0, flops_per_cycle=1.0,
                       simd_speedup=4.0)
        workload = CPUWorkload(flops=1e9)
        assert cpu.time_seconds(workload, vectorized=True) == pytest.approx(0.25)

    def test_streaming_bandwidth_tiers(self):
        small = CPUWorkload(flops=0, bytes_streamed=1e6, working_set_bytes=1e3)
        large = CPUWorkload(flops=0, bytes_streamed=1e6, working_set_bytes=1e9)
        assert self.cpu.time_seconds(large) > self.cpu.time_seconds(small)

    def test_random_access_latency_tiers(self):
        cached = CPUWorkload(flops=0, random_accesses=1e6, working_set_bytes=1e3)
        uncached = CPUWorkload(flops=0, random_accesses=1e6, working_set_bytes=1e9)
        assert self.cpu.time_seconds(uncached) > self.cpu.time_seconds(cached) * 5

    def test_compute_and_streaming_overlap(self):
        # max(compute, stream) rather than the sum.
        workload = CPUWorkload(flops=1e9, bytes_streamed=1e6, working_set_bytes=1e3)
        assert self.cpu.time_seconds(workload) == pytest.approx(1.0, rel=0.01)

    def test_negative_workload_rejected(self):
        with pytest.raises(TimingModelError):
            self.cpu.time_seconds(CPUWorkload(flops=-1))

    def test_scaled_helper(self):
        workload = CPUWorkload(flops=100, bytes_streamed=10, random_accesses=5)
        doubled = workload.scaled(2.0)
        assert doubled.flops == 200 and doubled.random_accesses == 10


class TestGPUModel:
    def setup_method(self):
        self.model = GPUModel(GPUCostParameters(
            name="test-gpu", effective_gflops=10.0, transfer_gib_per_s=1.0,
            pass_overhead_us=100.0, texture_fetch_ns=2.0,
            fill_rate_mpixels=1000.0, codec_ns_per_byte=1.0,
            transfer_call_overhead_us=0.0,
        ))

    def test_compute_time(self):
        workload = simple_gpu_workload(flops=1e10, texture_fetches=0, elements=0,
                                       bytes_to_device=0, bytes_from_device=0,
                                       passes=0)
        assert self.model.time_seconds(workload) == pytest.approx(1.0)

    def test_efficiency_scales_compute(self):
        fast = simple_gpu_workload(efficiency=1.0)
        slow = simple_gpu_workload(efficiency=0.5)
        assert self.model.kernel_time(slow) > self.model.kernel_time(fast)

    def test_pass_overhead_accumulates(self):
        one = simple_gpu_workload(passes=1)
        many = simple_gpu_workload(passes=100)
        difference = self.model.kernel_time(many) - self.model.kernel_time(one)
        assert difference == pytest.approx(99 * 100e-6, rel=0.01)

    def test_transfer_includes_codec_cost(self):
        workload = simple_gpu_workload()
        no_codec = self.model.with_overrides(codec_ns_per_byte=0.0)
        assert self.model.transfer_time(workload) > no_codec.transfer_time(workload)

    def test_transfer_call_overhead(self):
        with_calls = self.model.with_overrides(transfer_call_overhead_us=500.0)
        workload = simple_gpu_workload(transfer_calls=4)
        delta = with_calls.transfer_time(workload) - self.model.transfer_time(workload)
        assert delta == pytest.approx(4 * 500e-6)

    def test_fill_rate_floor(self):
        # A kernel with almost no arithmetic is bounded by the fill rate.
        workload = simple_gpu_workload(flops=0, texture_fetches=0,
                                       elements=1_000_000_000, passes=1,
                                       bytes_to_device=0, bytes_from_device=0)
        assert self.model.kernel_time(workload) >= 1.0

    def test_from_profiles(self):
        from repro.cal.device import get_cal_device
        from repro.gles2.device import get_device_profile
        embedded = GPUCostParameters.from_gles2_profile(get_device_profile("videocore-iv"))
        desktop = GPUCostParameters.from_cal_profile(get_cal_device("radeon-hd3400"))
        assert embedded.codec_ns_per_byte > 0
        assert desktop.codec_ns_per_byte == 0

    def test_workload_from_statistics(self):
        stats = RunStatistics()
        stats.record_transfer(TransferRecord("s", "upload", 1024, 256))
        stats.record_transfer(TransferRecord("s", "download", 2048, 512))
        stats.record_launch(KernelLaunchRecord("k", elements=256, flops=1000,
                                               texture_fetches=64, passes=2))
        workload = GPUWorkload.from_statistics(stats)
        assert workload.bytes_to_device == 1024
        assert workload.bytes_from_device == 2048
        assert workload.passes == 2
        assert workload.transfer_calls == 2


class TestPlatforms:
    def test_platform_registry(self):
        assert get_platform("target") is TARGET_PLATFORM
        assert get_platform("reference") is REFERENCE_PLATFORM
        assert get_platform(TARGET_PLATFORM.name) is TARGET_PLATFORM
        with pytest.raises(KeyError):
            get_platform("apple-m1")
        assert set(PLATFORMS) >= {"target", "reference"}

    def test_target_is_embedded_gles2(self):
        assert TARGET_PLATFORM.backend_name == "gles2"
        assert TARGET_PLATFORM.gpu.params.codec_ns_per_byte > 0
        assert not TARGET_PLATFORM.cpu_vectorized

    def test_reference_is_desktop_cal(self):
        assert REFERENCE_PLATFORM.backend_name == "cal"
        assert REFERENCE_PLATFORM.max_stream_dimension == 4096

    def test_reference_cpu_is_much_faster(self):
        assert REFERENCE_PLATFORM.cpu.peak_gflops > 5 * TARGET_PLATFORM.cpu.peak_gflops

    def test_speedup_helper(self):
        gpu_workload = simple_gpu_workload()
        cpu_workload = CPUWorkload(flops=1e9, working_set_bytes=1e4)
        speedup = TARGET_PLATFORM.speedup(gpu_workload, cpu_workload)
        assert speedup == pytest.approx(
            TARGET_PLATFORM.cpu_time(cpu_workload)
            / TARGET_PLATFORM.gpu_time(gpu_workload)
        )

    def test_figure1_calibration_holds(self):
        """The headline calibration: 26.7x (target) and 23x (reference)."""
        from repro.apps.flops import FlopsApp
        app = FlopsApp()
        target_ratio = app.modeled_point(512, TARGET_PLATFORM).speedup
        reference_ratio = app.modeled_point(512, REFERENCE_PLATFORM).speedup
        assert target_ratio == pytest.approx(26.7, rel=0.10)
        assert reference_ratio == pytest.approx(23.0, rel=0.10)


class TestProfilingRecords:
    def test_summary_fields(self):
        stats = RunStatistics()
        stats.record_transfer(TransferRecord("a", "upload", 100, 25))
        stats.record_launch(KernelLaunchRecord("k", 25, 250, 10))
        summary = stats.summary()
        assert summary["bytes_uploaded"] == 100
        assert summary["flops"] == 250
        assert summary["passes"] == 1

    def test_clear(self):
        stats = RunStatistics()
        stats.record_launch(KernelLaunchRecord("k", 1, 1, 1))
        stats.clear()
        assert stats.total_passes == 0

    def test_per_kernel_merges_records(self):
        stats = RunStatistics()
        stats.record_launch(KernelLaunchRecord("k", 10, 100, 5))
        stats.record_launch(KernelLaunchRecord("k", 20, 200, 10, passes=3))
        merged = stats.per_kernel()["k"]
        assert merged.elements == 30
        assert merged.flops == 300
        assert merged.passes == 4
