"""Integration tests for the Brook+ reference application suite.

Every application is compiled through the full Brook Auto pipeline,
executed functionally on the CPU and the simulated OpenGL ES 2 backends
at a small input size, and validated against its own CPU reference -
exactly the validation methodology the Brook+ samples implement.
"""

import numpy as np
import pytest

from repro.apps import get_application, list_applications
from repro.apps.base import BrookApplication
from repro.apps.handwritten_sgemm import BrookRuntimeOverheadModel, HandwrittenSgemm
from repro.timing import REFERENCE_PLATFORM, TARGET_PLATFORM

ALL_APPS = list_applications()

#: Functional test sizes, kept small so the SIMT simulation stays fast.
SMALL_SIZE = {
    "flops": 12,
    "binomial": 12,
    "black_scholes": 16,
    "prefix_sum": 16,
    "spmv": 64,
    "binary_search": 16,
    "bitonic_sort": 8,
    "floyd_warshall": 12,
    "image_filter": 16,
    "mandelbrot": 16,
    "sgemm": 16,
}


class TestRegistry:
    def test_eleven_applications_registered(self):
        assert len(ALL_APPS) == 11

    def test_expected_names(self):
        assert set(ALL_APPS) == {
            "flops", "binomial", "black_scholes", "prefix_sum", "spmv",
            "binary_search", "bitonic_sort", "floyd_warshall", "image_filter",
            "mandelbrot", "sgemm",
        }

    def test_unknown_application_raises(self):
        from repro.errors import BrookError
        with pytest.raises(BrookError):
            get_application("raytracer")

    @pytest.mark.parametrize("name", ALL_APPS)
    def test_metadata_complete(self, name):
        app = get_application(name)
        assert isinstance(app, BrookApplication)
        assert app.description
        assert app.figure in ("figure1", "figure2", "figure3", "figure4")
        assert app.brook_source.strip()
        assert app.default_sizes


class TestCompilation:
    @pytest.mark.parametrize("name", ALL_APPS)
    def test_compiles_and_certifies_for_gles2(self, name):
        app = get_application(name)
        runtime = app.create_runtime("gles2", "videocore-iv")
        module = app.compile(runtime)
        assert module.certification.is_compliant

    @pytest.mark.parametrize("name", ALL_APPS)
    def test_glsl_es_artifacts_generated(self, name):
        app = get_application(name)
        runtime = app.create_runtime("gles2", "videocore-iv")
        module = app.compile(runtime)
        for kernel in module.program.kernels.values():
            assert kernel.glsl_es is not None
            assert "gl_FragColor" in kernel.glsl_es


class TestFunctionalValidation:
    @pytest.mark.parametrize("name", ALL_APPS)
    def test_cpu_backend_matches_reference(self, name):
        app = get_application(name)
        result = app.run(backend="cpu", size=SMALL_SIZE[name], seed=7)
        assert result.valid, f"max rel error {result.max_rel_error:.2e}"

    @pytest.mark.parametrize("name", ALL_APPS)
    def test_gles2_backend_matches_reference(self, name):
        app = get_application(name)
        result = app.run(backend="gles2", size=SMALL_SIZE[name], seed=7)
        assert result.valid, f"max rel error {result.max_rel_error:.2e}"

    @pytest.mark.parametrize("name", ["sgemm", "image_filter", "binary_search"])
    def test_cal_backend_matches_reference(self, name):
        app = get_application(name)
        result = app.run(backend="cal", size=SMALL_SIZE[name], seed=7)
        assert result.valid

    @pytest.mark.parametrize("name", ALL_APPS)
    def test_inputs_are_seeded_and_reproducible(self, name):
        app = get_application(name)
        first = app.generate_inputs(SMALL_SIZE[name], seed=3)
        second = app.generate_inputs(SMALL_SIZE[name], seed=3)
        different = app.generate_inputs(SMALL_SIZE[name], seed=4)
        for key in first:
            np.testing.assert_array_equal(first[key], second[key])
        if first:  # mandelbrot has no inputs
            assert any(not np.array_equal(first[k], different[k]) for k in first)

    def test_run_records_statistics(self):
        app = get_application("sgemm")
        result = app.run(backend="gles2", size=16, seed=0)
        assert result.statistics.total_passes >= 1
        assert result.statistics.bytes_uploaded > 0
        assert result.wall_clock_seconds > 0

    def test_validation_detects_corruption(self):
        app = get_application("sgemm")
        inputs = app.generate_inputs(8, seed=0)
        reference = app.cpu_reference(8, inputs)
        corrupted = {"c": reference["c"] + 1.0}
        valid, error = app.validate(corrupted, reference)
        assert not valid and error > app.validation_rtol

    def test_validation_detects_missing_output(self):
        app = get_application("sgemm")
        inputs = app.generate_inputs(8, seed=0)
        reference = app.cpu_reference(8, inputs)
        valid, _ = app.validate({}, reference)
        assert not valid

    def test_bitonic_sort_requires_power_of_two_count(self):
        app = get_application("bitonic_sort")
        with pytest.raises(ValueError):
            app.generate_inputs(12)


class TestWorkloadModels:
    @pytest.mark.parametrize("name", ALL_APPS)
    def test_workloads_are_positive_and_monotonic(self, name):
        app = get_application(name)
        sizes = app.sizes_for(TARGET_PLATFORM)[:3]
        previous_flops = 0.0
        for size in sizes:
            gpu = app.gpu_workload(size, TARGET_PLATFORM)
            cpu = app.cpu_workload(size, TARGET_PLATFORM)
            assert gpu.flops > 0 and gpu.passes >= 1
            assert cpu.flops >= 0
            assert gpu.flops >= previous_flops
            previous_flops = gpu.flops

    @pytest.mark.parametrize("name", ALL_APPS)
    def test_speedup_series_has_expected_sizes(self, name):
        app = get_application(name)
        series = app.speedup_series(TARGET_PLATFORM)
        assert len(series) == len(app.sizes_for(TARGET_PLATFORM))
        assert all(speedup > 0 for _, speedup in series)

    def test_spmv_capped_at_1024_on_target(self):
        app = get_application("spmv")
        assert max(app.sizes_for(TARGET_PLATFORM)) == 1024
        assert max(app.sizes_for(REFERENCE_PLATFORM)) == 2048

    def test_flops_workload_matches_paper_configuration(self):
        app = get_application("flops")
        workload = app.gpu_workload(512, TARGET_PLATFORM)
        # ~2 GFLOP over 1 MB of data (512 x 512 floats).
        assert workload.flops == pytest.approx(2.0e9, rel=0.15)
        assert workload.bytes_to_device == 512 * 512 * 4

    def test_measured_flops_close_to_model(self):
        """Cross-check the closed-form workload model against the counters
        of the functional simulation (per DESIGN.md section 5)."""
        app = get_application("sgemm")
        size = 16
        result = app.run(backend="gles2", size=size, seed=0)
        modeled = app.gpu_workload(size, TARGET_PLATFORM)
        measured = result.statistics.total_flops
        # The evaluator additionally counts loop bookkeeping, so the two
        # agree to within a small factor, not exactly.
        assert modeled.flops <= measured <= 3.0 * modeled.flops

    def test_measured_transfers_match_model_exactly(self):
        app = get_application("image_filter")
        size = 32
        result = app.run(backend="gles2", size=size, seed=0)
        modeled = app.gpu_workload(size, TARGET_PLATFORM)
        assert result.statistics.bytes_uploaded == modeled.bytes_to_device
        assert result.statistics.bytes_downloaded == modeled.bytes_from_device


class TestHandwrittenSgemm:
    def test_matches_reference(self):
        hand = HandwrittenSgemm()
        result = hand.run(32, seed=5)
        np.testing.assert_allclose(result.c, hand.reference(32, seed=5),
                                   rtol=2e-3, atol=1e-3)

    def test_counts_gl_level_work(self):
        hand = HandwrittenSgemm()
        result = hand.run(16, seed=1)
        assert result.fragments == 16 * 16
        assert result.texture_fetches == 2 * 16 ** 3
        assert result.bytes_uploaded == 2 * 16 * 16 * 4

    def test_brook_overhead_model_band(self):
        overhead = BrookRuntimeOverheadModel()
        assert overhead.brook_time(1.0) > 1.0
        # Large kernels amortise the fixed overhead towards the code penalty.
        ratio_large = 10.0 / overhead.brook_time(10.0)
        ratio_small = 0.005 / overhead.brook_time(0.005)
        assert ratio_small < ratio_large <= 0.95
