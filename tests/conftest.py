"""Shared fixtures for the Brook Auto reproduction test suite."""

import numpy as np
import pytest

from repro.core import analyze, parse
from repro.runtime import BrookRuntime

#: A small, fully compliant translation unit exercising most language
#: features: scalar constants, streams, gathers, indexof, a helper
#: function, a bounded loop and a reduction.
SAMPLE_SOURCE = """
float square(float value) {
    return value * value;
}

kernel void saxpy(float alpha, float x<>, float y<>, out float result<>) {
    result = alpha * x + y;
}

kernel void gather_scale(float data<>, float lut[], float n, out float scaled<>) {
    float2 position = indexof(data);
    float acc = 0.0;
    for (int i = 0; i < 4; i = i + 1) {
        acc = acc + square(data) * 0.25;
    }
    scaled = acc + lut[position.x] * n;
}

reduce void total(float value<>, reduce float accumulator) {
    accumulator += value;
}
"""


@pytest.fixture(scope="session")
def sample_source():
    return SAMPLE_SOURCE


@pytest.fixture(scope="session")
def sample_unit():
    return parse(SAMPLE_SOURCE, "sample.br")


@pytest.fixture(scope="session")
def sample_program():
    return analyze(parse(SAMPLE_SOURCE, "sample.br"))


@pytest.fixture
def cpu_runtime():
    return BrookRuntime(backend="cpu")


@pytest.fixture
def gles2_runtime():
    return BrookRuntime(backend="gles2", device="videocore-iv")


@pytest.fixture
def cal_runtime():
    return BrookRuntime(backend="cal", device="radeon-hd3400")


@pytest.fixture(params=["cpu", "gles2", "cal"])
def any_runtime(request):
    """Parametrised runtime covering every backend."""
    return BrookRuntime(backend=request.param)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
