"""Differential suite: the vector path vs. the masked interpreter.

Every kernel brookvec marks BV-300/BV-301 must produce *bitwise*
identical outputs (and identical statistics) whether it runs through
``core.exec.vectorized`` or the masked SIMT interpreter - on the cpu and
gles2 backends, through gathers, in-place launches and the fusion /
tiling / sharding compositions.  Every BV-302/BV-303 kernel must fall
back with zero behavior change.

Coverage here mirrors the acceptance criteria: all reference-application
kernels, seeded random kernels, divergent-branch NaN propagation,
integer division, gather edge-clamp semantics and the composition
matrix.
"""

import random

import numpy as np
import pytest

from repro.apps.base import get_application, list_applications
from repro.backends.gles2_backend import GLES2Backend
from repro.core.compiler import CompilerOptions, compile_source
from repro.core.exec.evaluator import KernelEvaluator
from repro.core.exec.gather import NumpyGatherSource
from repro.core.exec.vectorized import build_vector_path
from repro.gles2.device import GPUDeviceProfile
from repro.gles2.limits import GLES2Limits
from repro.runtime import BrookRuntime

INTERP = CompilerOptions(enable_fast_path=False, enable_vector_path=False)
VECTOR = CompilerOptions(enable_fast_path=False, enable_vector_path=True)


def assert_bitwise(got, want, label=""):
    got = np.asarray(got, dtype=np.float32)
    want = np.asarray(want, dtype=np.float32)
    assert got.shape == want.shape, label
    assert np.array_equal(got.view(np.uint32), want.view(np.uint32)), \
        f"{label}: vector path diverges from the interpreter"


def run_differential(source, kernel, size, stream_inputs, scalar_args=None,
                     gathers=None):
    """Interpreter vs. vector path on one kernel; asserts bitwise + stats."""
    program = compile_source(source, options=CompilerOptions(strict=False))
    handle = program.kernel(kernel)
    helpers = program.helpers()
    evaluator = KernelEvaluator(handle.definition, helpers)
    interpreted = evaluator.run(
        size, stream_inputs=stream_inputs, scalar_args=scalar_args,
        gathers={k: NumpyGatherSource(v._data) for k, v in
                 (gathers or {}).items()})
    vec, report = build_vector_path(handle.definition, helpers)
    assert vec is not None, \
        f"{kernel}: expected a vector program, got {report.verdict}"
    vectorized, stats = vec.run(
        size, stream_inputs=stream_inputs, scalar_args=scalar_args,
        gathers={k: NumpyGatherSource(v._data) for k, v in
                 (gathers or {}).items()})
    assert interpreted.keys() == vectorized.keys()
    for key in interpreted:
        assert_bitwise(vectorized[key], interpreted[key], f"{kernel}.{key}")
    istats = evaluator.stats
    assert stats.flops == istats.flops
    assert stats.stream_reads == istats.stream_reads
    assert stats.stream_writes == istats.stream_writes
    assert stats.gather_fetches == istats.gather_fetches
    assert stats.divergent_branches == istats.divergent_branches
    assert stats.elements == istats.elements
    return report


def run_app(app_name, backend, options, size=None, seed=11, devices=1):
    app = get_application(app_name)
    size = size or min(16, app.max_target_size)
    inputs = app.generate_inputs(size, seed=seed)
    with BrookRuntime(backend=backend, compiler_options=options,
                      devices=devices) as rt:
        module = app.compile(rt)
        return app.run_brook(rt, module, size, inputs)


# --------------------------------------------------------------------------- #
# All reference applications, cpu and gles2
# --------------------------------------------------------------------------- #
class TestApplications:
    @pytest.mark.parametrize("backend", ["cpu", "gles2"])
    @pytest.mark.parametrize("app_name", sorted(list_applications()))
    def test_every_app_is_bitwise_identical(self, app_name, backend):
        want = run_app(app_name, backend, INTERP)
        got = run_app(app_name, backend, VECTOR)
        for key in want:
            assert_bitwise(got[key], want[key],
                           f"{app_name}.{key} on {backend}")

    def test_apps_actually_take_the_vector_path(self):
        # Guard against the suite silently passing because everything
        # fell back: every app map kernel must carry a vector program.
        for app_name in list_applications():
            app = get_application(app_name)
            with BrookRuntime(backend="cpu",
                              compiler_options=VECTOR) as rt:
                module = app.compile(rt)
                for kernel in module.program.kernels.values():
                    if kernel.definition.is_reduction:
                        continue
                    assert kernel.vector_path is not None, \
                        f"{app_name}:{kernel.name} fell back " \
                        f"({kernel.vector_report.verdict})"


# --------------------------------------------------------------------------- #
# Seeded random kernels
# --------------------------------------------------------------------------- #
_OPS = ["+", "-", "*"]
_FUNCS = ["abs", "sqrt", "exp", "floor", "min", "max"]


def _random_expr(rnd, depth):
    if depth <= 0:
        return rnd.choice(["x", "y", "s", f"{rnd.uniform(-2, 2):.3f}"])
    choice = rnd.random()
    if choice < 0.55:
        a = _random_expr(rnd, depth - 1)
        b = _random_expr(rnd, depth - 1)
        return f"({a} {rnd.choice(_OPS)} {b})"
    if choice < 0.8:
        func = rnd.choice(_FUNCS)
        if func in ("min", "max"):
            return (f"{func}({_random_expr(rnd, depth - 1)}, "
                    f"{_random_expr(rnd, depth - 1)})")
        return f"{func}({_random_expr(rnd, depth - 1)})"
    return f"({_random_expr(rnd, depth - 1)} / (abs(y) + 0.5))"


def _random_kernel(seed):
    rnd = random.Random(seed)
    body = [f"float t{i} = {_random_expr(rnd, 3)};" for i in range(3)]
    merged = " + ".join(f"t{i}" for i in range(3))
    if rnd.random() < 0.5:
        threshold = f"{rnd.uniform(-1, 1):.3f}"
        tail = (f"if (x > {threshold}) {{ r = {merged}; }} "
                f"else {{ r = {_random_expr(rnd, 2)} - ({merged}); }}")
    else:
        tail = f"r = {merged};"
    return ("kernel void fuzzed(float s, float x<>, float y<>, "
            "out float r<>) { " + " ".join(body) + " " + tail + " }")


class TestSeededRandomKernels:
    @pytest.mark.parametrize("seed", range(10))
    def test_fuzzed_kernel_bitwise(self, seed, rng):
        source = _random_kernel(seed)
        size = 257
        inputs = {
            "x": rng.uniform(-3.0, 3.0, size).astype(np.float32),
            "y": rng.uniform(-3.0, 3.0, size).astype(np.float32),
        }
        run_differential(source, "fuzzed", size, inputs, {"s": 1.25})


# --------------------------------------------------------------------------- #
# Targeted semantics
# --------------------------------------------------------------------------- #
class TestSemanticEdges:
    def test_divergent_branch_nan_propagation(self, rng):
        # sqrt of negatives on the speculatively evaluated side must
        # produce the interpreter's exact NaN bit patterns after the
        # np.where merge (and the NaNs must stay confined to the lanes
        # whose branch actually produced them).
        source = """
        kernel void nans(float x<>, out float r<>) {
            if (x > 0.0) {
                r = sqrt(x - 2.0) * 3.0;
            } else {
                r = sqrt(x) - 1.0;
            }
        }
        """
        size = 128
        inputs = {"x": rng.uniform(-4.0, 4.0, size).astype(np.float32)}
        report = run_differential(source, "nans", size, inputs)
        assert report.divergent

    def test_integer_division_truncation(self, rng):
        source = """
        kernel void intdiv(float x<>, out float r<>) {
            int n = int(x);
            if (x > 0.0) {
                r = float(n / 3) + float(n - (n / 3) * 3);
            } else {
                r = float(n / 2);
            }
        }
        """
        size = 200
        inputs = {"x": rng.uniform(-50.0, 50.0, size).astype(np.float32)}
        run_differential(source, "intdiv", size, inputs)

    def test_gather_edge_clamp_on_gles2(self, rng):
        # Unguarded neighbor fetches: the GLES2 gather source clamps to
        # the edge, and the vector path must observe the identical
        # clamped values because it fetches through the same source.
        source = """
        kernel void blur(float x<>, float src[], out float r<>) {
            float2 p = indexof(r);
            r = (src[p.x - 1.0] + src[p.x] + src[p.x + 1.0]) / 3.0;
        }
        """
        data = rng.uniform(0.0, 1.0, (1, 32)).astype(np.float32)
        results = {}
        for label, options in (("interp", INTERP), ("vector", VECTOR)):
            with BrookRuntime(backend="gles2",
                              compiler_options=options) as rt:
                module = rt.compile(source, strict=False)
                src = rt.stream_from(data)
                out = rt.stream((1, 32))
                module.blur(src, src, out)
                results[label] = out.read()
        assert_bitwise(results["vector"], results["interp"], "blur edge")

    def test_in_place_launch(self, rng):
        source = ("kernel void bump(float x<>, out float r<>) "
                  "{ r = x * 1.5 + 0.25; }")
        data = rng.uniform(-1.0, 1.0, (8, 8)).astype(np.float32)
        results = {}
        for label, options in (("interp", INTERP), ("vector", VECTOR)):
            with BrookRuntime(backend="cpu", compiler_options=options) as rt:
                module = rt.compile(source)
                x = rt.stream_from(data)
                module.bump(x, x)  # in-place: output is the input stream
                module.bump(x, x)
                results[label] = x.read()
        assert_bitwise(results["vector"], results["interp"], "in-place")

    def test_member_store_invalidates_index_binding(self, rng):
        # Regression: ``p.y = p.y + 3.0`` must kill the indexof-derived
        # binding, or the stencil slice planner serves shifted rows.
        source = """
        kernel void shifted(float src[][], out float dst<>) {
            float2 p = indexof(dst);
            p.y = p.y + 3.0;
            dst = src[min(p.y, 7.0)][p.x];
        }
        """
        data = rng.uniform(0.0, 1.0, (8, 8)).astype(np.float32)
        program = compile_source(source,
                                 options=CompilerOptions(strict=False))
        kernel = program.kernel("shifted")
        evaluator = KernelEvaluator(kernel.definition, program.helpers())
        layout = (8, 8)
        index = np.stack(np.meshgrid(np.arange(8, dtype=np.float32),
                                     np.arange(8, dtype=np.float32)),
                         axis=-1).reshape(-1, 2)
        want = evaluator.run(64, stream_inputs={},
                             gathers={"src": NumpyGatherSource(data)},
                             index=index)
        vec, report = build_vector_path(kernel.definition, program.helpers())
        assert vec is not None, report.verdict
        got, _ = vec.run(64, stream_inputs={},
                         gathers={"src": NumpyGatherSource(data)},
                         layout=layout)
        assert_bitwise(got["dst"], want["dst"], "member-store kill")

    def test_stencil_fusion_on_non_square_layout(self, rng):
        # 3x3 literal-weight stencil on a rows != cols domain: exercises
        # the fused 2-d padded-slice peephole and its reshape ordering.
        source = """
        kernel void filt(float src[][], out float dst<>) {
            float2 p = indexof(dst);
            float acc = 0.0;
            acc = acc + 0.25 * src[p.y - 1.0][p.x];
            acc = acc + 0.50 * src[p.y][p.x - 1.0];
            acc = acc + 1.00 * src[p.y][p.x];
            acc = acc + 0.50 * src[p.y][p.x + 1.0];
            acc = acc + 0.25 * src[p.y + 1.0][p.x];
            dst = acc;
        }
        """
        rows, cols = 5, 9
        data = rng.uniform(-1.0, 1.0, (rows, cols)).astype(np.float32)
        results = {}
        for label, options in (("interp", INTERP), ("vector", VECTOR)):
            with BrookRuntime(backend="gles2",
                              compiler_options=options) as rt:
                module = rt.compile(source, strict=False)
                src = rt.stream_from(data)
                out = rt.stream((rows, cols))
                module.filt(src, out)
                results[label] = out.read()
        assert_bitwise(results["vector"], results["interp"], "stencil")


# --------------------------------------------------------------------------- #
# Fallback: BV-302/BV-303 kernels change nothing
# --------------------------------------------------------------------------- #
class TestFallback:
    SOURCE = """
    kernel void spinner(float x<>, out float r<>) {
        float acc = x;
        while (acc < 2.0) {
            acc = acc + 0.5;
        }
        r = acc;
    }

    kernel void risky(float x<>, float d, out float r<>) {
        if (x > 0.0) {
            r = x / d;
        } else {
            r = x;
        }
    }
    """

    @pytest.mark.parametrize("kernel,args", [("spinner", ()),
                                             ("risky", (2.0,))])
    def test_fallback_is_behavior_free(self, kernel, args, rng):
        data = rng.uniform(-1.0, 1.0, 64).astype(np.float32)
        results = {}
        for label, options in (("interp", INTERP), ("vector", VECTOR)):
            with BrookRuntime(backend="cpu", compiler_options=options) as rt:
                module = rt.compile(self.SOURCE, strict=False)
                handle = module.program.kernel(kernel)
                assert handle.vector_path is None
                if label == "vector":
                    assert handle.vector_report is not None
                    assert not handle.vector_report.vectorizable
                x = rt.stream_from(data)
                out = rt.stream(64)
                module.kernel(kernel)(x, *args, out)
                results[label] = out.read()
        assert_bitwise(results["vector"], results["interp"], kernel)


# --------------------------------------------------------------------------- #
# Compositions: fusion, tiling, sharding
# --------------------------------------------------------------------------- #
PIPE = """
kernel void scale(float x<>, float g, out float y<>) {
    y = x * g;
}

kernel void clamp01(float y<>, out float z<>) {
    if (y > 1.0) {
        z = 1.0;
    } else {
        z = y;
    }
}
"""


def tiny_gles2_runtime(options, max_texture_size=8):
    profile = GPUDeviceProfile(
        name=f"tiny-{max_texture_size}",
        limits=GLES2Limits(name=f"tiny-{max_texture_size}",
                           max_texture_size=max_texture_size),
        effective_gflops=1.0,
        transfer_gib_per_s=1.0,
        pass_overhead_us=100.0,
        texture_fetch_ns=2.0,
        fill_rate_mpixels=100.0,
    )
    return BrookRuntime(backend=GLES2Backend(profile),
                        compiler_options=options)


class TestCompositions:
    def _run_fused(self, options, data, fuse=True):
        with BrookRuntime(backend="cpu", compiler_options=options) as rt:
            module = rt.compile(PIPE)
            x = rt.stream_from(data)
            y = rt.stream(data.shape)
            z = rt.stream(data.shape)
            plans = [module.scale.bind(x, 1.75, y),
                     module.clamp01.bind(y, z)]
            if fuse:
                rt.fuse(plans).launch()
            else:
                for plan in plans:
                    plan.launch()
            return z.read(), rt.statistics

    def test_fused_pipeline_bitwise(self, rng):
        data = rng.uniform(0.0, 2.0, (16, 16)).astype(np.float32)
        want, _ = self._run_fused(INTERP, data, fuse=False)
        got, stats = self._run_fused(VECTOR, data, fuse=True)
        assert stats.kernels_fused == 1
        assert_bitwise(got, want, "fused")

    def test_tiled_launch_bitwise(self, rng):
        data = rng.uniform(-1.0, 1.0, (16, 16)).astype(np.float32)
        results = {}
        for label, options in (("interp", INTERP), ("vector", VECTOR)):
            with tiny_gles2_runtime(options) as rt:
                module = rt.compile(PIPE)
                x = rt.stream_from(data)
                z = rt.stream((16, 16))
                module.clamp01(x, z)
                results[label] = z.read()
                assert rt.statistics.launches[-1].tiles > 1
        assert_bitwise(results["vector"], results["interp"], "tiled")

    def test_sharded_launch_bitwise(self, rng):
        data = rng.uniform(-1.0, 1.0, (16, 16)).astype(np.float32)
        results = {}
        for label, options in (("interp", INTERP), ("vector", VECTOR)):
            with BrookRuntime(backend="cpu", compiler_options=options,
                              devices=2) as rt:
                module = rt.compile(PIPE)
                x = rt.stream_from(data)
                z = rt.stream((16, 16))
                module.clamp01(x, z)
                results[label] = z.read()
        assert_bitwise(results["vector"], results["interp"], "sharded")
