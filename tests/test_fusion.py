"""Tests for kernel fusion: legality, AST merging, runtime pipelines.

Covers the AST transform (repro.core.transforms.fuse), the runtime entry
points (``rt.fuse``, ``rt.queue(fuse=True)``), equivalence of fused and
unfused pipelines on the CPU and OpenGL ES 2 backends, fallback
behaviour for illegal pairs and the statistics/timing accounting of the
saved passes and stream traffic.
"""

import numpy as np
import pytest

from repro.core.compiler import CompilerOptions, compile_source
from repro.core.transforms.fuse import (
    check_fusable,
    fuse_compiled,
    fuse_definitions,
)
from repro.errors import FusionError, KernelLaunchError
from repro.runtime import BrookRuntime, FusedPipeline, FusedPlan
from repro.timing import GPUModel, GPUCostParameters

PIPELINE_SOURCE = """
kernel void scale(float x<>, float a, out float y<>) {
    y = a * x;
}

kernel void offset(float y<>, float b, out float z<>) {
    z = y + b;
}

kernel void blend(float p<>, float q<>, out float r<>) {
    r = 0.5 * (p + q);
}

kernel void probe(float src<>, float table[], out float r<>) {
    float2 pos = indexof(r);
    r = src + table[pos.x];
}

reduce void total(float v<>, reduce float acc) {
    acc += v;
}
"""

SIZE = 24


@pytest.fixture(scope="module")
def pipeline_program():
    return compile_source(PIPELINE_SOURCE)


@pytest.fixture
def pipeline_data(rng):
    return rng.uniform(0.5, 2.0, (SIZE, SIZE)).astype(np.float32)


# --------------------------------------------------------------------------- #
# AST-level transform
# --------------------------------------------------------------------------- #
class TestFuseDefinitions:
    def test_merges_into_single_kernel(self, pipeline_program):
        result = fuse_definitions(
            pipeline_program.kernel("scale").definition,
            pipeline_program.kernel("offset").definition,
            {"y": "y"},
        )
        fused = result.definition
        assert fused.is_kernel and not fused.is_reduction
        assert fused.name == "scale__offset"
        # The intermediate is no longer a parameter...
        param_names = [p.name for p in fused.params]
        assert "y" not in param_names
        assert len(fused.output_params) == 1
        # ...but a local declaration carrying the producer's value.
        declared = [node.name for node in fused.body.walk()
                    if type(node).__name__ == "DeclStatement"]
        assert result.consumer_renames["y"] in declared
        assert result.eliminated_widths == (1,)

    def test_fused_kernel_compiles_and_gets_fast_path(self, pipeline_program):
        fused, _ = fuse_compiled(
            pipeline_program.kernel("scale"),
            pipeline_program.kernel("offset"),
            {"y": "y"}, pipeline_program.helpers(),
        )
        assert fused.glsl_es is not None
        assert fused.c_source is not None
        assert fused.fast_path is not None
        assert fused.fused_from == ("scale", "offset")
        assert fused.fused_saved_components == 1

    def test_rejects_reductions(self, pipeline_program):
        reason = check_fusable(
            pipeline_program.kernel("scale").definition,
            pipeline_program.kernel("total").definition,
            {"v": "y"},
        )
        assert reason is not None and "map kernel" in reason

    def test_rejects_gather_on_the_intermediate(self, pipeline_program):
        reason = check_fusable(
            pipeline_program.kernel("scale").definition,
            pipeline_program.kernel("probe").definition,
            {"table": "y"},
        )
        assert reason is not None and "gather" in reason

    def test_rejects_unknown_connections(self, pipeline_program):
        scale = pipeline_program.kernel("scale").definition
        offset = pipeline_program.kernel("offset").definition
        assert check_fusable(scale, offset, {}) is not None
        assert check_fusable(scale, offset, {"y": "x"}) is not None
        assert check_fusable(scale, offset, {"nope": "y"}) is not None
        with pytest.raises(FusionError):
            fuse_definitions(scale, offset, {"y": "x"})


# --------------------------------------------------------------------------- #
# Runtime pipelines
# --------------------------------------------------------------------------- #
def _run_pipeline(backend, data, fuse):
    with BrookRuntime(backend=backend) as rt:
        module = rt.compile(PIPELINE_SOURCE)
        x = rt.stream_from(data, name="x")
        y = rt.stream((SIZE, SIZE), name="y")
        z = rt.stream((SIZE, SIZE), name="z")
        plans = [module.scale.bind(x, 2.0, y), module.offset.bind(y, 0.25, z)]
        if fuse:
            pipeline = rt.fuse(plans)
            pipeline.launch()
        else:
            for plan in plans:
                plan.launch()
        return z.read(), rt.statistics


class TestRuntimeFusion:
    @pytest.mark.parametrize("backend", ["cpu", "gles2"])
    def test_fused_pipeline_is_bitwise_identical(self, backend, pipeline_data):
        unfused, _ = _run_pipeline(backend, pipeline_data, fuse=False)
        fused, stats = _run_pipeline(backend, pipeline_data, fuse=True)
        assert np.array_equal(fused.view(np.uint32), unfused.view(np.uint32))
        assert stats.total_passes == 1
        assert stats.kernels_fused == 1
        assert stats.saved_intermediate_bytes == SIZE * SIZE * 4 * 2

    def test_three_stage_chain_becomes_one_pass(self, pipeline_data):
        with BrookRuntime() as rt:
            module = rt.compile(PIPELINE_SOURCE)
            x = rt.stream_from(pipeline_data)
            y = rt.stream((SIZE, SIZE))
            z = rt.stream((SIZE, SIZE))
            w = rt.stream((SIZE, SIZE))
            pipeline = rt.fuse([
                module.scale.bind(x, 2.0, y),
                module.offset.bind(y, 0.25, z),
                module.scale.bind(z, 0.5, w),
            ])
            assert isinstance(pipeline, FusedPipeline)
            assert pipeline.pass_count == 1
            assert pipeline.kernels_fused == 2
            plan = pipeline.segments[0][0]
            assert isinstance(plan, FusedPlan)
            assert plan.fused_kernel_names == ("scale", "offset", "scale")
            pipeline.launch()
            expected = (2.0 * pipeline_data + 0.25) * 0.5
            np.testing.assert_allclose(w.read(), expected, rtol=1e-6)

    def test_intermediate_needed_later_blocks_fusion(self, pipeline_data):
        with BrookRuntime() as rt:
            module = rt.compile(PIPELINE_SOURCE)
            x = rt.stream_from(pipeline_data)
            y = rt.stream((SIZE, SIZE))
            z = rt.stream((SIZE, SIZE))
            r = rt.stream((SIZE, SIZE))
            # `blend` re-reads y after `offset` consumed it, so scale->offset
            # must materialise y and stay unfused; offset->blend (over z)
            # remains legal and still merges.
            pipeline = rt.fuse([
                module.scale.bind(x, 2.0, y),
                module.offset.bind(y, 0.25, z),
                module.blend.bind(y, z, r),
            ])
            assert pipeline.pass_count == 2
            assert pipeline.kernels_fused == 1
            assert pipeline.kernel_names[0] == "scale"
            pipeline.launch()
            scaled = 2.0 * pipeline_data
            np.testing.assert_allclose(y.read(), scaled, rtol=1e-6)
            np.testing.assert_allclose(
                r.read(), 0.5 * (scaled + (scaled + 0.25)), rtol=1e-6)

    def test_gather_consumer_falls_back_to_two_passes(self, pipeline_data):
        flat = pipeline_data.reshape(1, -1)
        with BrookRuntime() as rt:
            module = rt.compile(PIPELINE_SOURCE)
            x = rt.stream_from(flat)
            y = rt.stream(flat.shape)
            r = rt.stream(flat.shape)
            src = rt.stream_from(np.zeros(flat.shape, dtype=np.float32))
            pipeline = rt.fuse([
                module.scale.bind(x, 2.0, y),
                module.probe.bind(src, y, r),  # gathers from y
            ])
            assert pipeline.pass_count == 2
            assert pipeline.kernels_fused == 0
            pipeline.launch()
            np.testing.assert_allclose(r.read(), 2.0 * flat, rtol=1e-6)

    def test_early_return_producer_blocks_fusion(self):
        """A producer's early return must not mask the consumer's body.

        Regression test: fused, the producer's return would set the SIMT
        returned-mask and suppress the consumer statements for those
        threads; the pair has to stay two passes.
        """
        source = """
        kernel void gate(float x<>, out float tmp<>) {
            if (x < 0.0) {
                return;
            }
            tmp = x * 2.0;
        }

        kernel void inc(float tmp<>, out float y<>) {
            y = tmp + 1.0;
        }
        """
        data = np.array([[-1.0, 1.0, -2.0, 2.0]], dtype=np.float32)
        with BrookRuntime() as rt:
            module = rt.compile(source)
            x = rt.stream_from(data)
            tmp = rt.stream((1, 4))
            y = rt.stream((1, 4))
            pipeline = rt.fuse([
                module.gate.bind(x, tmp),
                module.inc.bind(tmp, y),
            ])
            assert pipeline.kernels_fused == 0
            pipeline.launch()
            np.testing.assert_allclose(y.read(),
                                       [[1.0, 3.0, 1.0, 5.0]], rtol=1e-6)

    def test_gather_from_unconnected_producer_output_blocks_fusion(self):
        """A consumer gathering from ANY producer output needs two passes.

        Regression test: `twin` writes both `a` (consumed positionally)
        and `b` (gathered).  Fusing would snapshot `b` before the fused
        pass writes it, silently yielding stale values.
        """
        source = PIPELINE_SOURCE + """
        kernel void twin(float x<>, out float a<>, out float b<>) {
            a = x + 1.0;
            b = x * 2.0;
        }

        kernel void consume(float a<>, float b[], out float r<>) {
            float2 pos = indexof(r);
            r = a + b[pos.x];
        }
        """
        data = np.arange(16, dtype=np.float32).reshape(1, 16)
        with BrookRuntime() as rt:
            module = rt.compile(source)
            x = rt.stream_from(data)
            a = rt.stream((1, 16))
            b = rt.stream((1, 16))
            r = rt.stream((1, 16))
            pipeline = rt.fuse([
                module.twin.bind(x, a, b),
                module.consume.bind(a, b, r),
            ])
            assert pipeline.kernels_fused == 0
            pipeline.launch()
            np.testing.assert_allclose(r.read(), (data + 1.0) + (data * 2.0),
                                       rtol=1e-6)

    def test_aliased_consumer_output_blocks_fusion(self, pipeline_data):
        """The consumer writing a producer output must stay a second pass."""
        with BrookRuntime() as rt:
            module = rt.compile(PIPELINE_SOURCE)
            x = rt.stream_from(pipeline_data)
            y = rt.stream((SIZE, SIZE))
            pipeline = rt.fuse([
                module.scale.bind(x, 2.0, y),
                module.offset.bind(y, 0.25, y),  # reads and rewrites y
            ])
            assert pipeline.kernels_fused == 0
            pipeline.launch()
            np.testing.assert_allclose(y.read(), 2.0 * pipeline_data + 0.25,
                                       rtol=1e-6)

    def test_mismatched_domains_block_fusion(self, pipeline_data):
        with BrookRuntime() as rt:
            module = rt.compile(PIPELINE_SOURCE)
            x = rt.stream_from(pipeline_data)
            y = rt.stream((SIZE, SIZE))
            half = rt.stream((SIZE // 2, SIZE))
            pipeline = rt.fuse([
                module.scale.bind(x, 2.0, y),
                module.offset.bind(half, 0.25, rt.stream((SIZE // 2, SIZE))),
            ])
            assert pipeline.kernels_fused == 0

    def test_reduction_tail_runs_as_own_segment(self, pipeline_data):
        with BrookRuntime() as rt:
            module = rt.compile(PIPELINE_SOURCE)
            x = rt.stream_from(pipeline_data)
            y = rt.stream((SIZE, SIZE))
            z = rt.stream((SIZE, SIZE))
            pipeline = rt.fuse([
                module.scale.bind(x, 2.0, y),
                module.offset.bind(y, 0.25, z),
                module.total.bind(z),
            ])
            assert pipeline.pass_count == 2  # fused map pass + reduction
            assert pipeline.kernels_fused == 1
            result = pipeline.launch()
            expected = float(np.sum(2.0 * pipeline_data + 0.25,
                                    dtype=np.float64))
            assert result == pytest.approx(expected, rel=1e-3)

    def test_fuse_validates_inputs(self, pipeline_data):
        with BrookRuntime() as rt:
            module = rt.compile(PIPELINE_SOURCE)
            with pytest.raises(KernelLaunchError):
                rt.fuse([])
            with pytest.raises(KernelLaunchError):
                rt.fuse([module.scale])  # a handle, not a bound plan
            with BrookRuntime() as other:
                other_module = other.compile(PIPELINE_SOURCE)
                x = other.stream_from(pipeline_data)
                y = other.stream((SIZE, SIZE))
                foreign = other_module.scale.bind(x, 2.0, y)
                with pytest.raises(KernelLaunchError):
                    rt.fuse([foreign])

    def test_fast_path_disabled_propagates_to_fused_kernel(self, pipeline_data):
        options = CompilerOptions(enable_fast_path=False)
        with BrookRuntime(compiler_options=options) as rt:
            module = rt.compile(PIPELINE_SOURCE)
            x = rt.stream_from(pipeline_data)
            y = rt.stream((SIZE, SIZE))
            z = rt.stream((SIZE, SIZE))
            pipeline = rt.fuse([
                module.scale.bind(x, 2.0, y),
                module.offset.bind(y, 0.25, z),
            ])
            plan = pipeline.segments[0][0]
            assert isinstance(plan, FusedPlan)
            assert plan.kernel.fast_path is None
            pipeline.launch()
            np.testing.assert_allclose(z.read(), 2.0 * pipeline_data + 0.25,
                                       rtol=1e-6)


# --------------------------------------------------------------------------- #
# Scalable-app pipeline (image_filter, Figure 3)
# --------------------------------------------------------------------------- #
POST_SOURCE = """
kernel void normalize_px(float v<>, float inv_range, out float n<>) {
    n = clamp(v * inv_range, 0.0, 1.0);
}

kernel void gamma_px(float n<>, out float g<>) {
    g = n * n;
}
"""


class TestScalableAppPipeline:
    """filter3x3 -> normalize -> gamma, fused vs. unfused."""

    @pytest.mark.parametrize("backend", ["cpu", "gles2"])
    def test_image_filter_pipeline_equivalence(self, backend):
        from repro.apps.image_filter import BROOK_SOURCE, FILTER_3X3

        size = 32
        image = (np.random.default_rng(3).uniform(0.0, 255.0, (size, size))
                 .astype(np.float32))
        weights = [float(w) for w in FILTER_3X3.reshape(-1)]
        results = {}
        for fuse in (False, True):
            with BrookRuntime(backend=backend) as rt:
                module = rt.compile(BROOK_SOURCE)
                post = rt.compile(POST_SOURCE)
                src = rt.stream_from(image, name="image")
                filtered = rt.stream((size, size), name="filtered")
                norm = rt.stream((size, size), name="norm")
                out = rt.stream((size, size), name="out")
                plans = [
                    module.filter3x3.bind(src, float(size), float(size),
                                          *weights, filtered),
                    post.normalize_px.bind(filtered, 1.0 / 255.0, norm),
                    post.gamma_px.bind(norm, out),
                ]
                if fuse:
                    pipeline = rt.fuse(plans)
                    # The whole three-stage ADAS-style pipeline collapses
                    # into one pass (the gather input survives fusion).
                    assert pipeline.pass_count == 1
                    assert pipeline.kernels_fused == 2
                    pipeline.launch()
                else:
                    for plan in plans:
                        plan.launch()
                results[fuse] = (out.read(), rt.statistics.total_passes)
        fused_out, fused_passes = results[True]
        plain_out, plain_passes = results[False]
        assert plain_passes == 3 and fused_passes == 1
        assert np.array_equal(fused_out.view(np.uint32),
                              plain_out.view(np.uint32))


# --------------------------------------------------------------------------- #
# Fusing command queues
# --------------------------------------------------------------------------- #
class TestQueueFusion:
    def test_fusing_queue_matches_plain_queue(self, pipeline_data):
        results = {}
        for fuse in (False, True):
            with BrookRuntime() as rt:
                module = rt.compile(PIPELINE_SOURCE)
                x = rt.stream_from(pipeline_data)
                y = rt.stream((SIZE, SIZE))
                z = rt.stream((SIZE, SIZE))
                with rt.queue(fuse=fuse) as queue:
                    module.scale(x, 2.0, y)
                    module.offset(y, 0.25, z)
                results[fuse] = (z.read(), rt.statistics.total_passes,
                                 queue.flushed_launches)
        fused_out, fused_passes, fused_flushed = results[True]
        plain_out, plain_passes, plain_flushed = results[False]
        assert np.array_equal(fused_out.view(np.uint32),
                              plain_out.view(np.uint32))
        assert plain_passes == 2 and fused_passes == 1
        assert fused_flushed == plain_flushed == 2

    def test_fusing_queue_keeps_reduction_results(self, pipeline_data):
        with BrookRuntime() as rt:
            module = rt.compile(PIPELINE_SOURCE)
            x = rt.stream_from(pipeline_data)
            y = rt.stream((SIZE, SIZE))
            z = rt.stream((SIZE, SIZE))
            with rt.queue(fuse=True) as queue:
                module.scale(x, 2.0, y)
                module.offset(y, 0.25, z)
                queued = module.total(z)
            assert queued.done
            expected = float(np.sum(2.0 * pipeline_data + 0.25,
                                    dtype=np.float64))
            assert queued.result == pytest.approx(expected, rel=1e-3)


# --------------------------------------------------------------------------- #
# Timing accounting
# --------------------------------------------------------------------------- #
class TestFusionTiming:
    PARAMS = GPUCostParameters(
        name="test", effective_gflops=1.0, transfer_gib_per_s=1.0,
        pass_overhead_us=100.0, texture_fetch_ns=10.0, fill_rate_mpixels=100.0,
    )

    def test_savings_are_positive_and_scale(self):
        model = GPUModel(self.PARAMS)
        small = model.fusion_savings(1, 1024)
        large = model.fusion_savings(2, 1024 * 1024)
        assert 0.0 < small < large
        # One saved pass contributes at least its fixed overhead.
        assert small >= 100.0 * 1e-6

    def test_zero_fusion_saves_nothing(self):
        model = GPUModel(self.PARAMS)
        assert model.fusion_savings(0, 0) == 0.0

    def test_statistics_feed_the_model(self, pipeline_data):
        _, stats = _run_pipeline("gles2", pipeline_data, fuse=True)
        model = GPUModel(self.PARAMS)
        saved = model.fusion_savings(stats.kernels_fused,
                                     stats.saved_intermediate_bytes)
        assert saved > 0.0
