"""Unit tests for the simulated OpenGL ES 2.0 substrate."""

import numpy as np
import pytest

from repro.errors import GLES2Error
from repro.gles2 import (
    DEVICE_PROFILES,
    Framebuffer,
    FragmentShader,
    GLES2Context,
    GLES2Limits,
    ShaderProgram,
    Texture2D,
    get_device_profile,
)
from repro.gles2.shader import FragmentJob
from repro.runtime.numerics import decode_float_rgba8, encode_float_rgba8


class TestLimits:
    def test_default_limits_are_minimal_es2(self):
        limits = GLES2Limits()
        assert limits.max_color_attachments == 1
        assert not limits.float_textures_supported
        assert not limits.npot_textures_supported

    def test_to_target_limits(self):
        target = GLES2Limits(max_texture_size=1024).to_target_limits()
        assert target.max_texture_size == 1024
        assert target.max_kernel_outputs == 1
        assert target.requires_power_of_two

    def test_device_profiles_available(self):
        assert "videocore-iv" in DEVICE_PROFILES
        assert "mali-400" in DEVICE_PROFILES
        profile = get_device_profile("videocore-iv")
        assert profile.limits.max_texture_size == 2048

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            get_device_profile("geforce-rtx")


class TestTexture:
    def make(self, width=64, height=32, **limit_overrides):
        limits = GLES2Limits(**limit_overrides) if limit_overrides else GLES2Limits()
        return Texture2D(width, height, limits)

    def test_creation_and_size(self):
        texture = self.make(64, 32)
        assert texture.shape == (32, 64)
        assert texture.size_bytes == 64 * 32 * 4

    def test_non_power_of_two_rejected(self):
        with pytest.raises(GLES2Error):
            self.make(100, 64)

    def test_npot_allowed_when_supported(self):
        texture = self.make(100, 60, npot_textures_supported=True)
        assert texture.width == 100

    def test_square_only_constraint(self):
        with pytest.raises(GLES2Error):
            self.make(64, 32, square_textures_only=True)

    def test_oversized_texture_rejected(self):
        with pytest.raises(GLES2Error):
            self.make(4096, 4096, max_texture_size=2048)

    def test_upload_download_roundtrip(self):
        texture = self.make(8, 8)
        rgba = np.random.default_rng(0).integers(0, 255, (8, 8, 4)).astype(np.uint8)
        texture.tex_image_2d(rgba)
        np.testing.assert_array_equal(texture.read_pixels(), rgba)

    def test_upload_wrong_shape_rejected(self):
        texture = self.make(8, 8)
        with pytest.raises(GLES2Error):
            texture.tex_image_2d(np.zeros((4, 4, 4), dtype=np.uint8))

    def test_sub_image_update(self):
        texture = self.make(8, 8)
        patch = np.full((2, 2, 4), 255, dtype=np.uint8)
        texture.tex_sub_image_2d(2, 3, patch)
        np.testing.assert_array_equal(texture.data[3:5, 2:4], patch)
        assert texture.data[0, 0, 0] == 0

    def test_sub_image_out_of_bounds_rejected(self):
        texture = self.make(8, 8)
        with pytest.raises(GLES2Error):
            texture.tex_sub_image_2d(7, 7, np.zeros((4, 4, 4), dtype=np.uint8))

    def test_normalized_sampling_nearest(self):
        texture = self.make(4, 4)
        data = np.arange(4 * 4 * 4, dtype=np.uint8).reshape(4, 4, 4)
        texture.tex_image_2d(data)
        # Centre of texel (2, 1): u = (2+0.5)/4, v = (1+0.5)/4.
        sample = texture.sample_normalized(np.array([0.625]), np.array([0.375]))
        np.testing.assert_array_equal(sample[0], data[1, 2])

    def test_out_of_range_coordinates_clamp_instead_of_crashing(self):
        texture = self.make(4, 4)
        data = np.arange(4 * 4 * 4, dtype=np.uint8).reshape(4, 4, 4)
        texture.tex_image_2d(data)
        sample = texture.sample_normalized(np.array([-5.0, 9.0]), np.array([0.1, 2.0]))
        np.testing.assert_array_equal(sample[0], data[0, 0])
        np.testing.assert_array_equal(sample[1], data[3, 3])

    def test_sample_count_tracked(self):
        texture = self.make(4, 4)
        texture.sample_normalized(np.zeros(10), np.zeros(10))
        assert texture.sample_count == 10


class TestFramebuffer:
    def test_incomplete_without_attachment(self):
        framebuffer = Framebuffer("fbo")
        assert not framebuffer.is_complete
        with pytest.raises(GLES2Error):
            _ = framebuffer.width

    def test_complete_with_attachment(self):
        limits = GLES2Limits()
        framebuffer = Framebuffer("fbo")
        framebuffer.attach_color(Texture2D(16, 8, limits))
        assert framebuffer.is_complete
        assert framebuffer.width == 16
        assert framebuffer.height == 8

    def test_detach(self):
        framebuffer = Framebuffer("fbo")
        framebuffer.attach_color(Texture2D(16, 16, GLES2Limits()))
        framebuffer.detach_color()
        assert not framebuffer.is_complete


class _ConstantShader(FragmentShader):
    """Writes a constant float into every fragment (encoded as RGBA8)."""

    def __init__(self, value):
        self.value = value

    def run(self, job: FragmentJob):
        values = np.full(job.fragment_count, self.value, dtype=np.float32)
        return encode_float_rgba8(values)


class _CopyShader(FragmentShader):
    """Copies the bound "source" texture through the RGBA8 codec."""

    def run(self, job: FragmentJob):
        texture = job.sampler("source")
        texels = texture.sample_normalized(job.texcoord[:, 0], job.texcoord[:, 1])
        return encode_float_rgba8(decode_float_rgba8(texels) * 2.0)


class TestContext:
    def test_draw_requires_program_and_framebuffer(self):
        context = GLES2Context()
        with pytest.raises(GLES2Error):
            context.draw_fullscreen_quad()
        context.use_program(ShaderProgram(_ConstantShader(1.0), name="c"))
        with pytest.raises(GLES2Error):
            context.draw_fullscreen_quad()

    def test_constant_fill_draw(self):
        context = GLES2Context()
        target = context.create_texture(8, 8, name="target")
        framebuffer = context.create_framebuffer()
        framebuffer.attach_color(target)
        context.use_program(ShaderProgram(_ConstantShader(3.5), name="fill"))
        context.bind_framebuffer(framebuffer)
        stats = context.draw_fullscreen_quad()
        assert stats.fragments == 64
        np.testing.assert_allclose(decode_float_rgba8(target.data), 3.5)

    def test_copy_shader_reads_bound_texture(self):
        context = GLES2Context()
        source = context.create_texture(4, 4, name="source")
        target = context.create_texture(4, 4, name="target")
        values = np.arange(16, dtype=np.float32).reshape(4, 4)
        context.upload(source, encode_float_rgba8(values))
        program = ShaderProgram(_CopyShader(), name="copy")
        program.bind_texture("source", source)
        framebuffer = context.create_framebuffer()
        framebuffer.attach_color(target)
        context.use_program(program)
        context.bind_framebuffer(framebuffer)
        stats = context.draw_fullscreen_quad()
        np.testing.assert_allclose(decode_float_rgba8(target.data), values * 2.0)
        assert stats.texture_fetches == 16

    def test_viewport_restricts_fragments(self):
        context = GLES2Context()
        target = context.create_texture(8, 8)
        framebuffer = context.create_framebuffer()
        framebuffer.attach_color(target)
        context.use_program(ShaderProgram(_ConstantShader(1.0), name="fill"))
        context.bind_framebuffer(framebuffer)
        stats = context.draw_fullscreen_quad(viewport=(4, 2))
        assert stats.fragments == 8

    def test_transfer_statistics(self):
        context = GLES2Context()
        texture = context.create_texture(16, 16)
        context.upload(texture, np.zeros((16, 16, 4), dtype=np.uint8))
        context.download(texture)
        assert context.transfers.bytes_uploaded == 16 * 16 * 4
        assert context.transfers.bytes_downloaded == 16 * 16 * 4
        context.reset_statistics()
        assert context.transfers.bytes_uploaded == 0

    def test_device_memory_accounting(self):
        context = GLES2Context()
        texture = context.create_texture(32, 32)
        assert context.device_memory_in_use() == 32 * 32 * 4
        context.delete_texture(texture)
        assert context.device_memory_in_use() == 0
