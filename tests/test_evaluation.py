"""Tests for the evaluation harness (Figures 1-4, productivity, compliance)."""

import pytest

from repro.evaluation import compliance, figure1, figure2, figure3, figure4, productivity
from repro.evaluation.report import full_report
from repro.evaluation.__main__ import main as evaluation_main


class TestFigure1:
    def test_ratios_match_paper(self):
        result = figure1.run()
        by_platform = {row.platform: row for row in result.rows}
        target = by_platform["arm-videocore-iv"]
        reference = by_platform["x86-core2-hd3400"]
        assert target.measured_ratio == pytest.approx(26.7, rel=0.10)
        assert reference.measured_ratio == pytest.approx(23.0, rel=0.10)

    def test_same_order_of_magnitude(self):
        assert figure1.run().ratios_same_order

    def test_gpu_faster_than_cpu_on_both_platforms(self):
        for row in figure1.run().rows:
            assert row.gpu_seconds < row.cpu_seconds

    def test_render_mentions_reproduced(self):
        text = figure1.render()
        assert "REPRODUCED" in text
        assert "26.7" in text


class TestFigure2:
    def test_covers_the_four_applications(self):
        result = figure2.run()
        assert {entry.app for entry in result.series} == set(figure2.APPLICATIONS)

    def test_no_application_beats_the_cpu(self):
        for entry in figure2.run().series:
            assert entry.target_max < 1.0, entry.app

    def test_financial_apps_below_20_percent(self):
        result = figure2.run()
        assert result.series_for("binomial").target_max < 0.25
        assert result.series_for("black_scholes").target_max < 0.25

    def test_all_paper_expectations_hold(self):
        assert figure2.run().all_expectations_hold

    def test_trend_agrees_with_reference_platform(self):
        for entry in figure2.run().series:
            assert entry.trend_matches_reference, entry.app

    def test_render_contains_tables(self):
        text = figure2.render()
        assert "binomial" in text and "spmv" in text
        assert "MISMATCH" not in text


class TestFigure3:
    def test_covers_the_six_applications(self):
        result = figure3.run()
        assert {entry.app for entry in result.series} == set(figure3.APPLICATIONS)

    def test_every_application_reaches_a_speedup(self):
        for entry in figure3.run().series:
            assert entry.target_max > 1.0, entry.app

    def test_headline_magnitudes(self):
        result = figure3.run()
        assert 70 <= result.series_for("bitonic_sort").target_at(256) <= 270
        assert 8 <= result.series_for("sgemm").target_max <= 15
        assert result.series_for("mandelbrot").target_max >= 15
        assert 4 <= result.series_for("floyd_warshall").target_final <= 8
        assert 1.3 <= result.series_for("binary_search").target_at(2048) <= 3.5

    def test_all_paper_expectations_hold(self):
        assert figure3.run().all_expectations_hold

    def test_trend_agrees_with_reference_platform(self):
        for entry in figure3.run().series:
            assert entry.trend_matches_reference, entry.app

    def test_render_contains_every_app(self):
        text = figure3.render()
        for name in figure3.APPLICATIONS:
            assert name in text
        assert "MISMATCH" not in text


class TestFigure4:
    def test_ratios_inside_paper_band(self):
        result = figure4.run()
        assert result.within_paper_band
        for row in result.rows:
            assert 0.40 <= row.ratio <= 1.0

    def test_ratio_grows_with_matrix_size(self):
        assert figure4.run().ratio_grows_with_size

    def test_smallest_size_near_50_percent(self):
        first = figure4.run().rows[0]
        assert first.ratio < 0.70

    def test_largest_size_near_90_percent(self):
        last = figure4.run().rows[-1]
        assert last.ratio > 0.80

    def test_functional_check_passes(self):
        assert figure4.functional_check(size=16)

    def test_render_mentions_band(self):
        assert "50-90%" in figure4.render()


class TestProductivity:
    def test_brook_version_is_an_order_of_magnitude_smaller(self):
        result = productivity.run()
        assert result.measured_ratio >= 5.0
        assert result.order_of_magnitude_reproduced

    def test_brook_loc_same_ballpark_as_paper(self):
        result = productivity.run()
        brook = next(e for e in result.entries if "Brook" in e.implementation)
        # The paper's Brook sgemm is 70 lines; ours is of the same order
        # (tens of lines, not hundreds).
        assert 10 <= brook.measured_loc <= 150

    def test_count_code_lines_ignores_comments(self):
        text = "// comment\nfloat x;\n/* block\n comment */\nfloat y;\n\n"
        assert productivity.count_code_lines(text) == 2

    def test_render_includes_paper_numbers(self):
        text = productivity.render()
        assert "70" in text and "1500" in text


class TestCompliance:
    def test_every_application_compliant(self):
        result = compliance.run()
        assert result.all_applications_compliant
        assert len(result.applications) == 11

    def test_counter_example_rejected_with_many_rules(self):
        result = compliance.run()
        assert result.counter_example_rejected
        violated = set(result.counter_example.violated_rules)
        assert {"BA-001", "BA-002", "BA-003", "BA-004", "BA-005"} <= violated

    def test_overall_reproduced(self):
        assert compliance.run().reproduced

    def test_render_contains_rule_catalogue(self):
        text = compliance.render()
        assert "BA-001" in text and "BA-012" in text
        assert "REJECTED" in text


class TestReportAndCli:
    def test_full_report_contains_every_section(self):
        text = full_report()
        for marker in ("Figure 1", "Figure 2", "Figure 3", "Figure 4",
                       "Productivity", "ISO 26262"):
            assert marker in text

    def test_module_cli_single_experiment(self, capsys):
        assert evaluation_main(["figure1"]) == 0
        captured = capsys.readouterr()
        assert "Figure 1" in captured.out

    def test_module_cli_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            evaluation_main(["figure9"])
