"""Unit tests for semantic analysis (name resolution and type checking)."""

import pytest

from repro.core import ast_nodes as ast
from repro.core.parser import parse
from repro.core.semantic import analyze
from repro.core.types import BOOL, FLOAT, FLOAT2, ParamKind
from repro.errors import BrookTypeError


def analyze_source(source):
    return analyze(parse(source))


def analyze_kernel_body(body, params="float a<>, float lut[], out float o<>"):
    program = analyze_source(f"kernel void f({params}) {{ {body} }}")
    return program.kernel_info("f")


class TestAcceptedPrograms:
    def test_sample_program(self, sample_source):
        program = analyze_source(sample_source)
        assert {info.name for info in program.kernels} == \
            {"saxpy", "gather_scale", "total"}
        assert {info.name for info in program.helpers} == {"square"}

    def test_expression_types_are_annotated(self):
        program = analyze_source(
            "kernel void f(float a<>, out float o<>) { o = a * 2.0; }"
        )
        kernel = program.kernel_info("f").definition
        assignment = kernel.body.statements[0].expr
        assert assignment.type == FLOAT
        assert assignment.value.type == FLOAT

    def test_indexof_is_float2(self):
        info = analyze_kernel_body("float2 p = indexof(a); o = p.x;")
        decl = info.definition.body.statements[0]
        assert decl.init.type == FLOAT2

    def test_comparison_yields_bool(self):
        info = analyze_kernel_body("o = (a > 1.0) ? 1.0 : 0.0;")
        conditional = info.definition.body.statements[0].expr.value
        assert conditional.cond.type == BOOL

    def test_helper_call_types(self):
        program = analyze_source(
            "float doubled(float x) { return x * 2.0; }\n"
            "kernel void f(float a<>, out float o<>) { o = doubled(a); }"
        )
        info = program.kernel_info("f")
        assert info.callees == ["doubled"]

    def test_gather_2d_chained_access(self):
        analyze_source(
            "kernel void f(float m[][], out float o<>) {"
            " float2 p = indexof(o); o = m[p.y][p.x]; }"
        )

    def test_gather_2d_single_float2_index(self):
        analyze_source(
            "kernel void f(float m[][], out float o<>) {"
            " o = m[indexof(o)]; }"
        )

    def test_scalar_broadcast_into_vector(self):
        analyze_source(
            "kernel void f(float a<>, out float o<>) {"
            " float2 v = float2(a, a); v = 0.0; o = v.x; }"
        )

    def test_reduce_kernel_signature(self):
        program = analyze_source(
            "reduce void total(float a<>, reduce float r) { r += a; }"
        )
        assert program.kernel_info("total").definition.is_reduction


class TestRejectedPrograms:
    def test_undeclared_identifier(self):
        with pytest.raises(BrookTypeError):
            analyze_kernel_body("o = missing;")

    def test_duplicate_function(self):
        with pytest.raises(BrookTypeError):
            analyze_source(
                "kernel void f(float a<>, out float o<>) { o = a; }\n"
                "kernel void f(float b<>, out float o<>) { o = b; }"
            )

    def test_redeclared_local(self):
        with pytest.raises(BrookTypeError):
            analyze_kernel_body("float x = 1.0; float x = 2.0; o = x;")

    def test_unassigned_output_rejected(self):
        with pytest.raises(BrookTypeError):
            analyze_source("kernel void f(float a<>, out float o<>) { float x = a; }")

    def test_call_to_unknown_function(self):
        with pytest.raises(BrookTypeError):
            analyze_kernel_body("o = mystery(a);")

    def test_kernel_calling_kernel_rejected(self):
        with pytest.raises(BrookTypeError):
            analyze_source(
                "kernel void g(float a<>, out float o<>) { o = a; }\n"
                "kernel void f(float a<>, out float o<>) { o = g(a); }"
            )

    def test_wrong_argument_count_for_helper(self):
        with pytest.raises(BrookTypeError):
            analyze_source(
                "float h(float x) { return x; }\n"
                "kernel void f(float a<>, out float o<>) { o = h(a, a); }"
            )

    def test_indexing_non_gather_rejected(self):
        with pytest.raises(BrookTypeError):
            analyze_kernel_body("o = a[0];")

    def test_too_many_gather_indices(self):
        with pytest.raises(BrookTypeError):
            analyze_kernel_body("o = lut[0.0][1.0];")

    def test_invalid_swizzle_rejected(self):
        with pytest.raises(BrookTypeError):
            analyze_kernel_body("float2 v = indexof(a); o = v.z;")

    def test_indexof_of_scalar_rejected(self):
        with pytest.raises(BrookTypeError):
            analyze_source(
                "kernel void f(float a<>, float s, out float o<>) {"
                " o = indexof(s).x; }"
            )

    def test_indexof_of_gather_rejected(self):
        with pytest.raises(BrookTypeError):
            analyze_kernel_body("o = indexof(lut).x;")

    def test_incompatible_binary_operands(self):
        with pytest.raises(BrookTypeError):
            analyze_source(
                "kernel void f(float2 a<>, float3 b<>, out float o<>) {"
                " o = (a + b).x; }"
            )

    def test_return_value_from_void_kernel(self):
        with pytest.raises(BrookTypeError):
            analyze_kernel_body("return a;")

    def test_non_void_helper_must_return_value(self):
        with pytest.raises(BrookTypeError):
            analyze_source("float h(float x) { return; }")

    def test_reduce_param_outside_reduce_kernel(self):
        with pytest.raises(BrookTypeError):
            analyze_source(
                "kernel void f(float a<>, reduce float r) { r += a; }"
            )

    def test_reduce_kernel_with_gather_rejected(self):
        with pytest.raises(BrookTypeError):
            analyze_source(
                "reduce void total(float a<>, float lut[], reduce float r) {"
                " r += a + lut[0]; }"
            )

    def test_helper_with_stream_parameter_rejected(self):
        with pytest.raises(BrookTypeError):
            analyze_source("float h(float x<>) { return x; }")

    def test_void_parameter_rejected(self):
        with pytest.raises(BrookTypeError):
            analyze_source("kernel void f(void a, out float o<>) { o = 0.0; }")

    def test_writing_vector_into_scalar_rejected(self):
        with pytest.raises(BrookTypeError):
            analyze_source(
                "kernel void f(float2 a<>, out float o<>) { o = a; }"
            )


class TestLegacyAnalysisMode:
    """CUDA/OpenCL-style constructs must survive analysis so the
    certification checker can report them as rule violations."""

    def test_pointer_parameter_indexing_is_tolerated(self):
        program = analyze_source(
            "kernel void f(float *data, out float o<>) { o = data[0]; }"
        )
        assert "f" in {info.name for info in program.kernels}

    def test_malloc_free_are_tolerated(self):
        analyze_source(
            "kernel void f(float a<>, out float o<>) {"
            " float p = malloc(16.0); free(p); o = a; }"
        )

    def test_goto_is_tolerated_by_analysis(self):
        analyze_source(
            "kernel void f(float a<>, out float o<>) { o = a; goto end; }"
        )

    def test_recursion_is_tolerated_by_analysis(self):
        program = analyze_source(
            "float rec(float x) { return rec(x - 1.0); }\n"
            "kernel void f(float a<>, out float o<>) { o = rec(a); }"
        )
        assert program.functions["rec"].callees == ["rec"]
