"""Unit tests for the simulated AMD CAL substrate (reference platform)."""

import numpy as np
import pytest

from repro.cal import CAL_DEVICE_PROFILES, CALContext, CALResource, get_cal_device
from repro.errors import CALError


class TestDeviceProfiles:
    def test_reference_gpu_present(self):
        device = get_cal_device("radeon-hd3400")
        assert device.max_resource_size == 4096
        assert device.max_outputs >= 2

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            get_cal_device("radeon-rx7900")

    def test_target_limits_support_float_textures(self):
        limits = get_cal_device("radeon-hd3400").to_target_limits()
        assert limits.supports_float_textures
        assert not limits.requires_power_of_two
        assert limits.max_texture_size == 4096


class TestResource:
    def test_creation_scalar(self):
        resource = CALResource(64, 32)
        assert resource.shape == (32, 64)
        assert resource.size_bytes == 64 * 32 * 4

    def test_creation_vector_components(self):
        resource = CALResource(16, 16, components=4)
        assert resource.size_bytes == 16 * 16 * 16

    def test_npot_sizes_allowed(self):
        resource = CALResource(100, 30)
        assert resource.width == 100

    def test_oversized_rejected(self):
        with pytest.raises(CALError):
            CALResource(8192, 8192, max_size=4096)

    def test_invalid_components_rejected(self):
        with pytest.raises(CALError):
            CALResource(8, 8, components=5)

    def test_write_read_roundtrip_is_exact_float32(self):
        resource = CALResource(8, 4)
        data = np.random.default_rng(1).standard_normal((4, 8)).astype(np.float32)
        resource.write(data)
        np.testing.assert_array_equal(resource.read(), data)

    def test_write_wrong_shape_rejected(self):
        resource = CALResource(8, 4)
        with pytest.raises(CALError):
            resource.write(np.zeros((8, 4), dtype=np.float32))

    def test_fetch_clamps_out_of_bounds(self):
        resource = CALResource(4, 4)
        data = np.arange(16, dtype=np.float32).reshape(4, 4)
        resource.write(data)
        values = resource.fetch(np.array([-3, 10]), np.array([0, 10]))
        assert values[0] == data[0, 0]
        assert values[1] == data[3, 3]
        assert resource.fetch_count == 2


class TestContext:
    def test_alloc_and_memory_accounting(self):
        context = CALContext()
        resource = context.alloc_resource(64, 64)
        assert context.device_memory_in_use() == 64 * 64 * 4
        context.free_resource(resource)
        assert context.device_memory_in_use() == 0

    def test_transfer_statistics(self):
        context = CALContext()
        resource = context.alloc_resource(16, 16)
        context.upload(resource, np.zeros((16, 16), dtype=np.float32))
        context.download(resource)
        assert context.transfers.bytes_uploaded == 16 * 16 * 4
        assert context.transfers.bytes_downloaded == 16 * 16 * 4

    def test_dispatch_recording(self):
        context = CALContext()
        context.record_dispatch("sgemm", 4096, flops=1000, fetches=200)
        assert context.total_dispatches == 1
        assert context.dispatches[0].kernel == "sgemm"

    def test_empty_dispatch_rejected(self):
        context = CALContext()
        with pytest.raises(CALError):
            context.record_dispatch("bad", 0, 0, 0)

    def test_reset_statistics(self):
        context = CALContext()
        context.record_dispatch("k", 16, 1, 1)
        context.reset_statistics()
        assert context.total_dispatches == 0
