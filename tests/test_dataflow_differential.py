"""Differential property suite: static dataflow vs dynamic execution.

Two properties, each over a family of randomly generated pipelines:

1. **Equivalence** (30 seeds): when the static analysis proves a
   pipeline race-free (``StreamDependencyGraph.race_free``), executing
   it through the :class:`AsyncExecutor` worker pool produces results
   bitwise identical to serial in-order execution - and a sanitized run
   records zero findings (no false positives).
2. **Conflict injection** (20 seeds): pipelines given a tracker-blind
   write/write conflict (two storages over views of one NumPy buffer)
   are flagged by the static analysis (BF-201) AND caught at run time
   by BrookSanitizer's executor cross-check (SanitizerError).

Together the two directions make the static analyzer, the dynamic
hazard tracker and the sanitizer audit each other.
"""

import time

import numpy as np
import pytest

from repro.core.analysis.dataflow import analyze_pipeline, build_dataflow_graph
from repro.errors import SanitizerError
from repro.runtime import BrookRuntime
from repro.runtime.launch import LaunchPlan

SOURCE = """
kernel void scale(float x<>, float k, out float y<>) {
    y = x * k;
}

kernel void add(float a<>, float b<>, out float o<>) {
    o = a + b;
}

kernel void mix(float a<>, float b<>, float k, out float o<>) {
    o = a * k + b * (1.0 - k);
}
"""

POOL = 6
SHAPE = (6, 6)


def _make_runtime(sanitize):
    runtime = BrookRuntime(backend="cpu", sanitize=sanitize)
    module = runtime.compile(SOURCE)
    return runtime, module


def _make_pool(runtime, rng_data):
    streams = []
    for data in rng_data:
        stream = runtime.stream(SHAPE)
        stream.write(data)
        streams.append(stream)
    return streams


def _random_recipe(seed):
    """A pipeline recipe: list of (kernel, input indices, scalar, out)."""
    rng = np.random.default_rng(seed)
    data = [rng.random(SHAPE).astype(np.float32) for _ in range(POOL)]
    recipe = []
    for _ in range(int(rng.integers(4, 9))):
        kernel = rng.choice(["scale", "add", "mix"])
        out = int(rng.integers(0, POOL))
        if kernel == "scale":
            args = ([int(rng.integers(0, POOL))],
                    round(float(rng.uniform(0.5, 2.0)), 3))
        elif kernel == "add":
            args = ([int(rng.integers(0, POOL)),
                     int(rng.integers(0, POOL))], None)
        else:
            args = ([int(rng.integers(0, POOL)),
                     int(rng.integers(0, POOL))],
                    round(float(rng.uniform(0.0, 1.0)), 3))
        recipe.append((str(kernel), args[0], args[1], out))
    return data, recipe


def _bind(module, streams, recipe):
    plans = []
    for kernel, inputs, scalar, out in recipe:
        handle = getattr(module, kernel)
        bound_inputs = [streams[i] for i in inputs]
        if scalar is None:
            plans.append(handle.bind(*bound_inputs, streams[out]))
        else:
            plans.append(handle.bind(*bound_inputs, scalar, streams[out]))
    return plans


class _SlowLaunchPlan(LaunchPlan):
    def launch(self):
        time.sleep(0.15)
        return super().launch()


# --------------------------------------------------------------------- #
# Property 1: static race-free => executor bitwise-identical to serial
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(30))
def test_race_free_pipelines_execute_identically(seed):
    data, recipe = _random_recipe(seed)

    # Serial reference.
    rt_serial, mod_serial = _make_runtime(sanitize=False)
    serial_streams = _make_pool(rt_serial, data)
    for plan in _bind(mod_serial, serial_streams, recipe):
        plan.launch()
    expected = [stream.read().copy() for stream in serial_streams]
    rt_serial.close()

    # Concurrent execution under the sanitizer.
    rt_pool, mod_pool = _make_runtime(sanitize=True)
    pool_streams = _make_pool(rt_pool, data)
    plans = _bind(mod_pool, pool_streams, recipe)

    graph = build_dataflow_graph(plans)
    assert graph.race_free, \
        "pool streams only alias via shared storage the tracker keys"

    executor = rt_pool.executor(workers=4)
    for plan in plans:
        executor.submit(plan)
    assert executor.wait_all(timeout=30)
    executor.shutdown()

    for index, stream in enumerate(pool_streams):
        np.testing.assert_array_equal(
            stream.read(), expected[index],
            err_msg=f"seed {seed}: stream {index} diverged from serial")
    assert rt_pool.sanitizer.findings == [], \
        f"seed {seed}: sanitizer false positive on a clean pipeline"
    rt_pool.close()


# --------------------------------------------------------------------- #
# Property 2: injected conflicts are reported AND caught
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(30, 50))
def test_injected_conflicts_reported_and_caught(seed):
    data, recipe = _random_recipe(seed)

    rt, mod = _make_runtime(sanitize=True)
    streams = _make_pool(rt, data)
    prefix = _bind(mod, streams, recipe)

    # Inject a tracker-blind WAW conflict: two fresh streams whose
    # distinct storages sit over views of one NumPy buffer.
    rng = np.random.default_rng(seed)
    y1, y2 = rt.stream(SHAPE), rt.stream(SHAPE)
    y2.storage.data = y1.storage.data[:]
    source = streams[int(rng.integers(0, POOL))]
    slow = mod.scale.bind(source, 2.0, y1)
    slow.__class__ = _SlowLaunchPlan
    fast = mod.scale.bind(source, 3.0, y2)

    # Static side: brookflow reports the blind pair as BF-201.
    report = analyze_pipeline([*prefix, slow, fast])
    bf201 = [diag for diag in report.diagnostics if diag.rule == "BF-201"]
    assert bf201, f"seed {seed}: injected conflict not reported statically"
    assert report.has_errors

    # Dynamic side: the sanitizer cross-check catches the overlap.
    executor = rt.executor(workers=2)
    for plan in prefix:
        executor.submit(plan)
    assert executor.wait_all(timeout=30)    # clean prefix drains quietly
    executor.submit(slow)
    executor.submit(fast)
    with pytest.raises(SanitizerError) as excinfo:
        executor.wait_all(timeout=30)
    executor.shutdown(wait=False)
    assert any(finding.kind == "hazard-divergence"
               for finding in excinfo.value.findings), f"seed {seed}"
    rt.close()
