"""Unit tests for the source-to-source transformation passes."""

import pytest

from repro.core import ast_nodes as ast
from repro.core.parser import parse
from repro.core.semantic import analyze
from repro.core.transforms.constant_fold import fold_constants
from repro.core.transforms.scalarize import scalarize_kernel
from repro.core.transforms.split_outputs import split_kernel_outputs
from repro.core.types import FLOAT, ParamKind
from repro.errors import CodegenError


def first_kernel(source):
    return parse(source).kernels[0]


class TestSplitOutputs:
    TWO_OUTPUT = (
        "kernel void both(float a<>, out float plus<>, out float minus<>) {"
        " plus = a + 1.0; minus = a - 1.0; }"
    )

    def test_single_output_kernel_unchanged(self):
        kernel = first_kernel("kernel void f(float a<>, out float o<>) { o = a; }")
        assert split_kernel_outputs(kernel) == [kernel]

    def test_two_outputs_produce_two_kernels(self):
        pieces = split_kernel_outputs(first_kernel(self.TWO_OUTPUT))
        assert len(pieces) == 2
        assert [p.name for p in pieces] == ["both__plus", "both__minus"]

    def test_each_piece_has_single_output(self):
        for piece in split_kernel_outputs(first_kernel(self.TWO_OUTPUT)):
            assert len(piece.output_params) == 1

    def test_demoted_output_becomes_local(self):
        piece = split_kernel_outputs(first_kernel(self.TWO_OUTPUT))[0]
        first_statement = piece.body.statements[0]
        assert isinstance(first_statement, ast.DeclStatement)
        assert first_statement.name == "minus"

    def test_split_pieces_pass_semantic_analysis(self):
        pieces = split_kernel_outputs(first_kernel(self.TWO_OUTPUT))
        unit = ast.TranslationUnit(functions=pieces)
        program = analyze(unit)
        assert len(program.kernels) == 2

    def test_reduction_kernel_not_split(self):
        kernel = parse(
            "reduce void total(float a<>, reduce float r) { r += a; }"
        ).kernels[0]
        assert split_kernel_outputs(kernel) == [kernel]

    def test_original_kernel_unmodified(self):
        kernel = first_kernel(self.TWO_OUTPUT)
        split_kernel_outputs(kernel)
        assert len(kernel.output_params) == 2

    def test_three_outputs(self):
        kernel = first_kernel(
            "kernel void f(float a<>, out float x<>, out float y<>, out float z<>)"
            " { x = a; y = a; z = a; }"
        )
        assert len(split_kernel_outputs(kernel)) == 3


class TestScalarize:
    def test_scalar_kernel_unchanged(self):
        kernel = first_kernel("kernel void f(float a<>, out float o<>) { o = a; }")
        clone = scalarize_kernel(kernel)
        assert [p.name for p in clone.params] == ["a", "o"]

    def test_vector_stream_split_into_components(self):
        kernel = first_kernel(
            "kernel void f(float2 a<>, out float o<>) { o = a.x + a.y; }"
        )
        clone = scalarize_kernel(kernel)
        names = [p.name for p in clone.params]
        assert names == ["a_x", "a_y", "o"]
        assert all(p.type == FLOAT for p in clone.params)

    def test_vector_output_split(self):
        kernel = first_kernel(
            "kernel void f(float a<>, out float2 o<>) { o.x = a; o.y = a * 2.0; }"
        )
        clone = scalarize_kernel(kernel)
        assert [p.name for p in clone.params] == ["a", "o_x", "o_y"]
        assert all(p.kind is ParamKind.OUT_STREAM for p in clone.params[1:])

    def test_swizzle_rewritten_to_scalar_name(self):
        kernel = first_kernel(
            "kernel void f(float2 a<>, out float o<>) { o = a.y; }"
        )
        clone = scalarize_kernel(kernel)
        assignment = clone.body.statements[0].expr
        assert isinstance(assignment.value, ast.Identifier)
        assert assignment.value.name == "a_y"

    def test_scalarized_kernel_passes_analysis(self):
        kernel = first_kernel(
            "kernel void f(float4 a<>, out float o<>) {"
            " o = a.x + a.y + a.z + a.w; }"
        )
        clone = scalarize_kernel(kernel)
        analyze(ast.TranslationUnit(functions=[clone]))

    def test_whole_vector_use_rejected(self):
        kernel = first_kernel(
            "kernel void f(float2 a<>, float2 b<>, out float o<>) { o = dot(a, b); }"
        )
        with pytest.raises(CodegenError):
            scalarize_kernel(kernel)

    def test_multi_component_swizzle_rejected(self):
        kernel = first_kernel(
            "kernel void f(float4 a<>, out float o<>) { o = length(a.xy); }"
        )
        with pytest.raises(CodegenError):
            scalarize_kernel(kernel)

    def test_original_kernel_unmodified(self):
        kernel = first_kernel(
            "kernel void f(float2 a<>, out float o<>) { o = a.x; }"
        )
        scalarize_kernel(kernel)
        assert kernel.param("a") is not None


class TestConstantFolding:
    def fold_value(self, expression):
        kernel = first_kernel(
            f"kernel void f(float a<>, out float o<>) {{ o = {expression}; }}"
        )
        folded = fold_constants(kernel)
        return folded.body.statements[0].expr.value

    def test_addition_folded(self):
        value = self.fold_value("1.0 + 2.0")
        assert isinstance(value, ast.NumberLiteral)
        assert value.value == pytest.approx(3.0)

    def test_nested_arithmetic_folded(self):
        value = self.fold_value("(2.0 + 2.0) * (3.0 - 1.0)")
        assert isinstance(value, ast.NumberLiteral)
        assert value.value == pytest.approx(8.0)

    def test_unary_minus_folded(self):
        value = self.fold_value("-(2.0 * 4.0)")
        assert value.value == pytest.approx(-8.0)

    def test_builtin_call_folded(self):
        value = self.fold_value("sqrt(16.0)")
        assert isinstance(value, ast.NumberLiteral)
        assert value.value == pytest.approx(4.0)

    def test_division_by_zero_not_folded(self):
        value = self.fold_value("1.0 / 0.0")
        assert isinstance(value, ast.BinaryOp)

    def test_non_constant_expression_untouched(self):
        value = self.fold_value("a * 2.0 + 1.0")
        assert isinstance(value, ast.BinaryOp)

    def test_integer_division_stays_integer(self):
        value = self.fold_value("7 / 2")
        assert isinstance(value, ast.NumberLiteral)
        assert not value.is_float
        assert value.value == 3

    def test_conditional_with_constant_condition(self):
        value = self.fold_value("1.0 > 0.0 ? 5.0 : 7.0")
        # The condition folds only if it is a literal; comparison folding is
        # conservative, so either form is acceptable as long as it is valid.
        assert isinstance(value, (ast.NumberLiteral, ast.Conditional))

    def test_fold_inside_loop_bounds(self):
        kernel = first_kernel(
            "kernel void f(float a<>, out float o<>) {"
            " o = 0.0; for (int i = 0; i < 4 * 4; i = i + 1) { o += a; } }"
        )
        folded = fold_constants(kernel)
        loop = folded.body.statements[1]
        assert isinstance(loop.cond.right, ast.NumberLiteral)
        assert loop.cond.right.value == 16

    def test_in_place_folding(self):
        kernel = first_kernel(
            "kernel void f(float a<>, out float o<>) { o = 2.0 + 3.0; }"
        )
        result = fold_constants(kernel, in_place=True)
        assert result is kernel
        assert isinstance(kernel.body.statements[0].expr.value, ast.NumberLiteral)

    def test_copy_by_default(self):
        kernel = first_kernel(
            "kernel void f(float a<>, out float o<>) { o = 2.0 + 3.0; }"
        )
        fold_constants(kernel)
        assert isinstance(kernel.body.statements[0].expr.value, ast.BinaryOp)
