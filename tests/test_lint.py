"""Tests for brooklint (``repro.core.analysis.lint``).

Three contracts:

* every BL rule fires on a minimal kernel exhibiting the defect — with
  the stable code, the right severity and a source location — and stays
  silent on the corresponding clean kernel (no false positives);
* the whole seed application suite is lint-clean at error *and* warning
  severity, with every gather proved in-bounds, while a deliberately
  out-of-bounds fixture is flagged as a BL-101 error; and
* the ``brookauto lint`` CLI and the SARIF serialisation expose the same
  findings (exit code 1 on error severity).
"""

import json

import numpy as np
import pytest

from repro.apps.base import get_application, list_applications
from repro.cli import main
from repro.core.analysis.lint import (
    LINT_RULES,
    LintSeverity,
    lint_source,
    to_sarif,
)
from repro.core.compiler import CompilerOptions, compile_source
from repro.errors import GatherBoundsError, KernelLaunchError, StreamError
from repro.runtime import BrookRuntime

#: A gather that is provably out of bounds: the stream index is 0..3 and
#: the lookup adds 10 against a declared extent of 4.
OOB_SOURCE = """
kernel void oob(float i<>, float lut[], out float o<>) {
    o = lut[i + 10.0];
}
"""

OOB_SPEC = {"oob": {"gathers": {"lut": (4,)},
                    "params": {"i": (0, 3)}}}


def codes(report):
    return [d.rule for d in report.diagnostics]


class TestRuleRegistry:
    def test_codes_are_stable(self):
        assert set(LINT_RULES) == {
            "BL-100", "BL-101", "BL-102", "BL-103", "BL-104", "BL-105",
            "BL-106", "BL-107", "BL-110", "BL-111", "BL-112",
            "BF-200", "BF-201", "BF-202", "BF-203", "BF-204", "BF-205",
            "BF-206",
            "BV-300", "BV-301", "BV-302", "BV-303"}

    def test_severities(self):
        assert LINT_RULES["BL-101"].severity is LintSeverity.ERROR
        assert LINT_RULES["BL-102"].severity is LintSeverity.WARNING
        assert LINT_RULES["BL-110"].severity is LintSeverity.NOTE


class TestRules:
    def test_bl100_skipped_source(self):
        report = lint_source("this is not brook", source_file="junk.br")
        assert codes(report) == ["BL-100"]
        assert not report.has_errors

    def test_bl101_proved_out_of_bounds(self):
        report = lint_source(OOB_SOURCE, specs=OOB_SPEC,
                             source_file="fixture.br")
        oob = [d for d in report.diagnostics if d.rule == "BL-101"]
        assert len(oob) == 1
        assert oob[0].severity is LintSeverity.ERROR
        assert oob[0].kernel == "oob"
        assert oob[0].source_file == "fixture.br"
        assert oob[0].location is not None
        assert (oob[0].location.line, oob[0].location.column) == (3, 12)
        assert report.has_errors

    def test_bl102_unproven_gather(self):
        report = lint_source(
            "kernel void g(float i<>, float lut[], out float o<>) {"
            " o = lut[i]; }",
            specs={"g": {"gathers": {"lut": (16,)}}})
        assert "BL-102" in codes(report)
        assert not report.has_errors

    def test_proved_gather_is_silent(self):
        report = lint_source(
            "kernel void g(float i<>, float lut[], float n, out float o<>) {"
            " o = lut[clamp(i, 0.0, n - 1.0)]; }",
            specs={"g": {"gathers": {"lut": ("n",)},
                         "params": {"n": (1, 16)}}})
        assert "BL-102" not in codes(report)
        assert report.summary()["gathers_proved"] == 1

    def test_bl103_division_range_contains_zero(self):
        report = lint_source(
            "kernel void d(float a<>, float k, out float o<>) {"
            " o = a / k; }",
            specs={"d": {"params": {"k": (-1.0, 1.0)}}})
        bl103 = [d for d in report.diagnostics if d.rule == "BL-103"]
        assert len(bl103) == 1
        assert bl103[0].severity is LintSeverity.WARNING

    def test_bl103_provably_zero_is_error(self):
        report = lint_source(
            "kernel void d(float a<>, out float o<>) {"
            " o = a / 0.0; }")
        bl103 = [d for d in report.diagnostics if d.rule == "BL-103"]
        assert len(bl103) == 1
        assert bl103[0].severity is LintSeverity.ERROR

    def test_bl103_positive_divisor_is_silent(self):
        report = lint_source(
            "kernel void d(float a<>, float k, out float o<>) {"
            " o = a / k; }",
            specs={"d": {"params": {"k": (0.5, 2.0)}}})
        assert "BL-103" not in codes(report)

    def test_bl104_float_equality(self):
        report = lint_source(
            "kernel void e(float a<>, out float o<>) {"
            " o = (a == 0.5) ? 1.0 : 0.0; }")
        assert "BL-104" in codes(report)

    def test_bl104_integer_equality_is_silent(self):
        report = lint_source(
            "kernel void e(float a<>, out float o<>) {"
            " o = a; for (int i = 0; i < 4; i = i + 1) {"
            " if (i == 2) { o = o + 1.0; } } }")
        assert "BL-104" not in codes(report)

    def test_bl105_uninitialized_read(self):
        report = lint_source(
            "kernel void u(float a<>, out float o<>) {"
            " float t; o = a + t; }")
        assert "BL-105" in codes(report)

    def test_bl105_branch_assignment_counts(self):
        # One path assigns before the read: union semantics stay silent.
        report = lint_source(
            "kernel void u(float a<>, out float o<>) {"
            " float t; if (a > 0.0) { t = 1.0; } o = a + t; }")
        assert "BL-105" not in codes(report)

    def test_bl106_dead_store(self):
        report = lint_source(
            "kernel void s(float a<>, out float o<>) {"
            " float unused = a * 2.0; o = a; }")
        assert "BL-106" in codes(report)

    def test_bl107_unassigned_output(self):
        # The compiler itself rejects never-assigned outputs, so the rule
        # is exercised on the raw parse tree (the linter's defence in
        # depth for ASTs that bypass semantic analysis).
        from repro.core.analysis.lint.rules import kernel_diagnostics
        from repro.core.analysis.ranges import (RangeContext,
                                                analyze_kernel_ranges)
        from repro.core.parser import parse

        unit = parse("kernel void w(float a<>, out float o<>, out float p<>)"
                     " { o = a; }")
        kernel = unit.kernels[0]
        diagnostics = kernel_diagnostics(
            kernel, analyze_kernel_ranges(kernel), RangeContext(None),
            "<source>")
        bl107 = [d for d in diagnostics if d.rule == "BL-107"]
        assert len(bl107) == 1
        assert "p" in bl107[0].message

    def test_bl110_fast_path_note(self):
        report = lint_source(
            "kernel void n(float a<>, out float o<>) {"
            " o = 0.0; if (a > 0.0) { o = a; } }")
        assert "BL-110" in codes(report)

    def test_bl111_fusion_boundary(self):
        # The producer's early return carries a mask that would suppress
        # the consumer's statements, so the pair cannot fuse.
        report = lint_source(
            "kernel void first(float a<>, out float mid<>) {\n"
            "    if (a > 0.0) { mid = a; return; }\n"
            "    mid = 0.0;\n"
            "}\n"
            "kernel void second(float mid<>, out float o<>)"
            " { o = mid * 2.0; }")
        bl111 = [d for d in report.diagnostics if d.rule == "BL-111"]
        assert len(bl111) == 1
        assert "first" in bl111[0].message and "second" in bl111[0].message

    def test_bl111_silent_when_fusable(self):
        report = lint_source(
            "kernel void first(float a<>, out float mid<>) { mid = a; }\n"
            "kernel void second(float mid<>, out float o<>)"
            " { o = mid * 2.0; }")
        assert "BL-111" not in codes(report)


class TestSuiteLintClean:
    """Every reference application is clean; the OOB fixture is not."""

    @pytest.mark.parametrize("name", list_applications())
    def test_app_is_lint_clean(self, name):
        from repro.core.analysis.lint import lint_program

        app = get_application(name)
        options = CompilerOptions(param_bounds=dict(app.param_bounds),
                                  range_specs=dict(app.range_specs),
                                  strict=False)
        program = compile_source(app.brook_source, filename=f"{name}.br",
                                 options=options)
        report = lint_program(program)
        noisy = report.at_severity(LintSeverity.WARNING)
        assert noisy == [], [str(d) for d in noisy]

    @pytest.mark.parametrize("name", list_applications())
    def test_app_gathers_all_proved(self, name):
        from repro.core.analysis.lint import lint_program

        app = get_application(name)
        options = CompilerOptions(param_bounds=dict(app.param_bounds),
                                  range_specs=dict(app.range_specs),
                                  strict=False)
        program = compile_source(app.brook_source, filename=f"{name}.br",
                                 options=options)
        summary = lint_program(program).summary()
        assert summary["gathers_proved"] == summary["gathers"]

    def test_oob_fixture_is_flagged(self):
        report = lint_source(OOB_SOURCE, specs=OOB_SPEC)
        assert report.has_errors
        assert "BL-101" in codes(report)


class TestSarif:
    def test_sarif_structure(self):
        report = lint_source(OOB_SOURCE, specs=OOB_SPEC,
                             source_file="fixture.br")
        doc = to_sarif(report)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "brooklint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "BL-101" in rule_ids
        results = [r for r in run["results"] if r["ruleId"] == "BL-101"]
        assert len(results) == 1
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "fixture.br"
        assert location["region"]["startLine"] == 3

    def test_sarif_only_lists_used_rules(self):
        report = lint_source(
            "kernel void ok(float a<>, out float o<>) { o = a; }")
        doc = to_sarif(report)
        assert doc["runs"][0]["tool"]["driver"]["rules"] == []
        assert doc["runs"][0]["results"] == []


class TestLintCli:
    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.br"
        path.write_text("kernel void ok(float a<>, out float o<>) { o = a; }")
        assert main(["lint", str(path)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_error_file_exits_one(self, tmp_path, capsys):
        # Provably-zero divisor: the only error-severity finding that
        # needs no range spec.
        path = tmp_path / "bad.br"
        path.write_text("kernel void d(float a<>, out float o<>) {"
                        " o = a / 0.0; }")
        assert main(["lint", str(path)]) == 1
        assert "BL-103" in capsys.readouterr().out

    def test_lint_apps_is_clean(self, capsys):
        assert main(["lint", "--apps"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_lint_python_file_extraction(self, tmp_path, capsys):
        path = tmp_path / "app.py"
        path.write_text('SOURCE = """\n'
                        'kernel void py(float a<>, out float o<>) {'
                        ' o = (a == 1.0) ? a : 0.0; }\n'
                        '"""\n')
        assert main(["lint", str(path)]) == 0
        assert "BL-104" in capsys.readouterr().out

    def test_lint_json_format(self, tmp_path, capsys):
        path = tmp_path / "ok.br"
        path.write_text("kernel void ok(float a<>, out float o<>) { o = a; }")
        assert main(["lint", str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernels"] == ["ok"]

    def test_lint_sarif_output_file(self, tmp_path, capsys):
        path = tmp_path / "ok.br"
        path.write_text("kernel void ok(float a<>, out float o<>) { o = a; }")
        sarif_path = tmp_path / "out.sarif"
        assert main(["lint", str(path), "--format", "sarif",
                     "--output", str(sarif_path)]) == 0
        doc = json.loads(sarif_path.read_text())
        assert doc["runs"][0]["tool"]["driver"]["name"] == "brooklint"

    def test_lint_no_inputs_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "no inputs" in capsys.readouterr().err

    def test_certify_lint_flag(self, tmp_path, capsys):
        path = tmp_path / "ok.br"
        path.write_text("kernel void ok(float a<>, out float o<>) { o = a; }")
        assert main(["certify", str(path), "--lint"]) == 0
        out = capsys.readouterr().out
        assert "brooklint summary:" in out
        assert "certification COMPLIANT" in out


class TestGatherBoundsCrossBackend:
    """The divergence BL-101/BL-102 warn about, observed at run time.

    The same out-of-bounds gather raises a typed error on the CPU backend
    (host memory is unprotected) and silently edge-clamps on the OpenGL
    ES 2 backend (texture sampler semantics) — see docs/runtime.md.
    """

    SOURCE = OOB_SOURCE

    def _run(self, backend):
        with BrookRuntime(backend=backend) as runtime:
            module = runtime.compile(self.SOURCE)
            lut = runtime.stream_from(
                np.arange(4, dtype=np.float32), name="lut")
            i = runtime.stream_from(
                np.arange(4, dtype=np.float32), name="i")
            out = runtime.stream((4,), name="o")
            module.oob(i, lut, out)
            return out.read()

    def test_cpu_backend_raises_kernel_launch_error(self):
        with pytest.raises(KernelLaunchError):
            self._run("cpu")

    def test_cpu_backend_error_is_also_a_stream_error(self):
        with pytest.raises(StreamError) as excinfo:
            self._run("cpu")
        assert isinstance(excinfo.value, GatherBoundsError)

    def test_gles2_backend_edge_clamps(self):
        result = self._run("gles2")
        np.testing.assert_allclose(result, 3.0)
