"""Tests for the service-grade runtime API.

Covers the backend registry, the runtime compile cache, prepared launch
plans, deferred command queues and the session lifecycle (``with
BrookRuntime(...)``, ``Stream.release``, ``BrookRuntime.close``).
"""

import gc

import numpy as np
import pytest

from repro.backends import (
    CPUBackend,
    available_backends,
    backend_entry,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.core.compiler import BrookAutoCompiler, CompilerOptions
from repro.errors import KernelLaunchError, RuntimeBrookError, StreamError
from repro.runtime import BrookRuntime, CommandQueue, LaunchPlan, QueuedLaunch

SAXPY = "kernel void saxpy(float a, float x<>, float y<>, out float r<>) { r = a * x + y; }"
SUM = "reduce void total(float v<>, reduce float acc) { acc += v; }"


# --------------------------------------------------------------------------- #
# Backend registry
# --------------------------------------------------------------------------- #
class FakeBackend(CPUBackend):
    """A custom backend registered by the tests."""

    name = "fake"

    def __init__(self, device=None):
        super().__init__()
        self.device = device


@pytest.fixture
def fake_backend_registered():
    register_backend("fake", FakeBackend, aliases=("test-double",),
                     description="test backend")
    try:
        yield
    finally:
        unregister_backend("fake")


class TestBackendRegistry:
    def test_builtins_are_registered(self):
        assert {"cpu", "gles2", "cal"} <= set(available_backends())

    def test_register_and_create(self, fake_backend_registered):
        backend = create_backend("fake")
        assert isinstance(backend, FakeBackend)
        assert "fake" in available_backends()

    def test_alias_resolution(self, fake_backend_registered):
        assert isinstance(create_backend("test-double"), FakeBackend)

    def test_device_forwarded_to_factory(self, fake_backend_registered):
        assert create_backend("fake", "some-device").device == "some-device"

    def test_runtime_constructs_registered_backend(self, fake_backend_registered):
        rt = BrookRuntime(backend="fake")
        assert isinstance(rt.backend, FakeBackend)
        module = rt.compile(SAXPY)
        x = rt.stream_from(np.ones((4, 4), dtype=np.float32))
        y = rt.stream_from(np.ones((4, 4), dtype=np.float32))
        out = rt.stream((4, 4))
        module.saxpy(2.0, x, y, out)
        np.testing.assert_allclose(out.read(), 3.0)

    def test_unknown_name_rejected_with_available_list(self):
        with pytest.raises(ValueError, match="registered backends"):
            create_backend("vulkan")

    def test_duplicate_registration_rejected(self, fake_backend_registered):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("fake", FakeBackend)
        with pytest.raises(ValueError, match="already registered"):
            register_backend("other", FakeBackend, aliases=("fake",))

    def test_replace_allows_overriding(self):
        register_backend("tmp", FakeBackend)
        try:
            register_backend("tmp", FakeBackend, replace=True)
        finally:
            unregister_backend("tmp")
        assert "tmp" not in available_backends()

    def test_replace_cannot_steal_another_backends_alias(self, fake_backend_registered):
        # replace=True only overrides the same backend's registration; a
        # name or alias owned by a different backend still collides.
        with pytest.raises(ValueError, match="already registered"):
            register_backend("other", FakeBackend, aliases=("fake",),
                             replace=True)
        assert "other" not in available_backends()

    def test_replace_can_drop_own_alias(self):
        register_backend("tmp2", FakeBackend, aliases=("tmp2-alias",))
        try:
            register_backend("tmp2", FakeBackend, replace=True)
            with pytest.raises(ValueError, match="unknown backend"):
                create_backend("tmp2-alias")
        finally:
            unregister_backend("tmp2")

    def test_unregister_unknown_rejected(self):
        with pytest.raises(ValueError):
            unregister_backend("never-registered")

    def test_entry_metadata(self):
        entry = backend_entry("gles2")
        assert entry.name == "gles2"
        assert "es2" in entry.aliases
        assert "videocore-iv" in entry.devices
        assert backend_entry("es2") is entry

    def test_non_callable_factory_rejected(self):
        with pytest.raises(TypeError):
            register_backend("bogus", object())


# --------------------------------------------------------------------------- #
# Compile cache
# --------------------------------------------------------------------------- #
class TestCompileCache:
    def test_second_compile_returns_cached_program(self, monkeypatch):
        calls = []
        real_compile = BrookAutoCompiler.compile

        def counting_compile(self, source, filename="<string>"):
            calls.append(source)
            return real_compile(self, source, filename)

        monkeypatch.setattr(BrookAutoCompiler, "compile", counting_compile)
        rt = BrookRuntime(backend="cpu")
        first = rt.compile(SAXPY)
        second = rt.compile(SAXPY)
        assert len(calls) == 1
        assert second.program is first.program
        assert rt.compile_cache_info()["hits"] == 1
        assert rt.compile_cache_info()["misses"] == 1

    def test_cached_modules_produce_identical_results(self, cpu_runtime):
        module_a = cpu_runtime.compile(SAXPY)
        module_b = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        y = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        module_b.saxpy(2.0, x, y, out)
        np.testing.assert_allclose(out.read(), 3.0)

    def test_different_source_misses(self, cpu_runtime):
        cpu_runtime.compile(SAXPY)
        cpu_runtime.compile(SUM)
        assert cpu_runtime.compile_cache_info()["misses"] == 2

    def test_differing_options_miss(self, cpu_runtime):
        cpu_runtime.compile(SAXPY)
        cpu_runtime.compile(SAXPY, strict=False)
        cpu_runtime.compile(SAXPY, param_bounds={"saxpy": {"a": 8.0}})
        info = cpu_runtime.compile_cache_info()
        assert info["misses"] == 3
        assert info["hits"] == 0

    def test_different_backends_do_not_share_entries(self):
        cpu_rt = BrookRuntime(backend="cpu")
        gles2_rt = BrookRuntime(backend="gles2")
        cpu_program = cpu_rt.compile(SAXPY).program
        gles2_program = gles2_rt.compile(SAXPY).program
        assert cpu_program is not gles2_program

    def test_lru_eviction(self):
        rt = BrookRuntime(backend="cpu", compile_cache_size=1)
        rt.compile(SAXPY)
        rt.compile(SUM)      # evicts SAXPY
        rt.compile(SAXPY)    # miss again
        assert rt.compile_cache_info()["misses"] == 3
        assert rt.compile_cache_info()["entries"] == 1

    def test_cache_disabled(self):
        rt = BrookRuntime(backend="cpu", compile_cache_size=0)
        rt.compile(SAXPY)
        rt.compile(SAXPY)
        assert rt.compile_cache_info()["misses"] == 2
        assert rt.compile_cache_info()["entries"] == 0

    def test_clear_compile_cache(self, cpu_runtime):
        cpu_runtime.compile(SAXPY)
        cpu_runtime.clear_compile_cache()
        cpu_runtime.compile(SAXPY)
        assert cpu_runtime.compile_cache_info()["misses"] == 2

    def test_fingerprint_stability(self):
        assert CompilerOptions().fingerprint() == CompilerOptions().fingerprint()
        assert CompilerOptions().fingerprint() != \
            CompilerOptions(strict=False).fingerprint()


# --------------------------------------------------------------------------- #
# Prepared launches
# --------------------------------------------------------------------------- #
class TestLaunchPlans:
    def test_plan_matches_direct_call(self, any_runtime):
        module = any_runtime.compile(SAXPY)
        data = np.random.default_rng(0).uniform(-1, 1, (8, 8)).astype(np.float32)
        x = any_runtime.stream_from(data)
        y = any_runtime.stream_from(np.ones((8, 8), dtype=np.float32))
        direct = any_runtime.stream((8, 8))
        planned = any_runtime.stream((8, 8))
        module.saxpy(3.0, x, y, direct)
        plan = module.saxpy.bind(3.0, x, y, planned)
        assert isinstance(plan, LaunchPlan)
        plan.launch()
        np.testing.assert_array_equal(planned.read(), direct.read())

    def test_relaunch_skips_revalidation(self, cpu_runtime, monkeypatch):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        y = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        handle = module.saxpy
        binds = []
        real_bind = type(handle)._bind_arguments

        def counting_bind(self, args, kwargs):
            binds.append(args)
            return real_bind(self, args, kwargs)

        monkeypatch.setattr(type(handle), "_bind_arguments", counting_bind)
        plan = handle.bind(2.0, x, y, out)
        plan.launch()
        plan.launch()
        plan.launch()
        assert len(binds) == 1
        np.testing.assert_allclose(out.read(), 3.0)

    def test_plan_records_statistics(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        y = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        plan = module.saxpy.bind(1.0, x, y, out)
        plan.launch()
        plan.launch()
        assert cpu_runtime.statistics.total_passes == 2

    def test_reduction_plan_returns_value(self, any_runtime):
        module = any_runtime.compile(SUM)
        data = np.arange(16, dtype=np.float32).reshape(4, 4)
        stream = any_runtime.stream_from(data)
        plan = module.total.bind(stream)
        assert plan.launch() == pytest.approx(float(data.sum()), rel=1e-4)

    def test_bind_still_validates(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        with pytest.raises(KernelLaunchError):
            module.saxpy.bind(2.0, x)

    def test_multi_element_scalar_raises_launch_error(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        y = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        with pytest.raises(KernelLaunchError, match="scalar"):
            module.saxpy(np.array([1.0, 2.0]), x, y, out)

    def test_size_one_array_accepted_as_scalar(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        y = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        module.saxpy(np.array([2.0]), x, y, out)
        np.testing.assert_allclose(out.read(), 3.0)

    def test_plan_rejects_closed_runtime(self):
        rt = BrookRuntime(backend="cpu")
        module = rt.compile(SAXPY)
        x = rt.stream_from(np.ones((4, 4), dtype=np.float32))
        y = rt.stream_from(np.ones((4, 4), dtype=np.float32))
        out = rt.stream((4, 4))
        plan = module.saxpy.bind(2.0, x, y, out)
        rt.close()
        with pytest.raises(RuntimeBrookError):
            plan.launch()

    def test_launch_rejects_released_stream(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        y = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        plan = module.saxpy.bind(2.0, x, y, out)
        out.release()
        with pytest.raises(StreamError):
            plan.launch()
        with pytest.raises(StreamError):
            module.saxpy(2.0, x, y, out)

    def test_non_numeric_scalar_raises_launch_error(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        y = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        with pytest.raises(KernelLaunchError):
            module.saxpy("not-a-number", x, y, out)


# --------------------------------------------------------------------------- #
# Command queues
# --------------------------------------------------------------------------- #
class TestCommandQueue:
    def test_queue_defers_and_flushes(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        y = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        with cpu_runtime.queue() as q:
            queued = module.saxpy(2.0, x, y, out)
            assert isinstance(queued, QueuedLaunch)
            assert not queued.done
            assert len(q) == 1
            # Nothing executed yet: no launch statistics recorded.
            assert cpu_runtime.statistics.total_passes == 0
        assert queued.done
        assert cpu_runtime.statistics.total_passes == 1
        np.testing.assert_allclose(out.read(), 3.0)

    def test_queue_preserves_submission_order(self, cpu_runtime):
        module = cpu_runtime.compile(
            "kernel void copy(float a<>, out float o<>) { o = a; }"
        )
        a = cpu_runtime.stream_from(np.full((4, 4), 5.0, dtype=np.float32))
        b = cpu_runtime.stream((4, 4))
        c = cpu_runtime.stream((4, 4))
        with cpu_runtime.queue():
            module.copy(a, b)
            module.copy(b, c)   # depends on the first launch
        np.testing.assert_allclose(c.read(), 5.0)

    def test_queued_reduction_result_after_flush(self, cpu_runtime):
        module = cpu_runtime.compile(SUM)
        stream = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        with cpu_runtime.queue():
            queued = module.total(stream)
        assert queued.done
        assert queued.result == pytest.approx(16.0)

    def test_manual_flush(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        y = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        queue = cpu_runtime.queue()
        queue.submit(module.saxpy.bind(2.0, x, y, out))
        results = queue.flush()
        assert results == [None]
        assert queue.flushed_launches == 1
        np.testing.assert_allclose(out.read(), 3.0)

    def test_exception_discards_pending_launches(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        y = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        with pytest.raises(RuntimeError):
            with cpu_runtime.queue():
                module.saxpy(2.0, x, y, out)
                raise RuntimeError("boom")
        assert cpu_runtime.statistics.total_passes == 0
        np.testing.assert_allclose(out.read(), 0.0)

    def test_foreign_plan_rejected(self, cpu_runtime):
        other = BrookRuntime(backend="cpu")
        module = other.compile(SAXPY)
        x = other.stream_from(np.ones((4, 4), dtype=np.float32))
        y = other.stream_from(np.ones((4, 4), dtype=np.float32))
        out = other.stream((4, 4))
        plan = module.saxpy.bind(1.0, x, y, out)
        with pytest.raises(KernelLaunchError):
            cpu_runtime.queue().submit(plan)

    def test_partial_flush_failure_keeps_executed_statistics(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY + SUM)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        y = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        bad_target = cpu_runtime.stream((3, 3))   # does not divide (4, 4)
        queue = cpu_runtime.queue()
        first = queue.submit(module.saxpy.bind(2.0, x, y, out))
        queue.submit(module.total.bind(out, bad_target))
        with pytest.raises(KernelLaunchError):
            queue.flush()
        # The saxpy pass ran on the device before the failure: it must
        # stay recorded so the performance model sees the real work.
        assert first.done
        assert cpu_runtime.statistics.total_passes == 1
        np.testing.assert_allclose(out.read(), 3.0)

    def test_statistics_recorded_in_bulk(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        y = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        with cpu_runtime.queue():
            for _ in range(5):
                module.saxpy(1.0, x, y, out)
        assert cpu_runtime.statistics.total_passes == 5


# --------------------------------------------------------------------------- #
# Session lifecycle
# --------------------------------------------------------------------------- #
class TestSessionLifecycle:
    def test_context_manager_releases_device_memory(self):
        with BrookRuntime(backend="gles2") as rt:
            rt_streams = [rt.stream((32, 32)) for _ in range(3)]
            assert rt.device_memory_in_use() > 0
        assert rt.closed
        assert rt.device_memory_in_use() == 0
        assert all(stream.released for stream in rt_streams)

    def test_release_is_idempotent(self, gles2_runtime):
        stream = gles2_runtime.stream((8, 8))
        stream.release()
        stream.release()
        assert gles2_runtime.device_memory_in_use() == 0

    def test_released_stream_rejects_access(self, cpu_runtime):
        stream = cpu_runtime.stream((4, 4))
        stream.release()
        with pytest.raises(StreamError):
            stream.read()
        with pytest.raises(StreamError):
            stream.write(np.zeros((4, 4), dtype=np.float32))
        with pytest.raises(StreamError):
            stream.peek()

    def test_garbage_collected_stream_frees_device_memory(self):
        rt = BrookRuntime(backend="gles2")
        stream = rt.stream((64, 64))
        assert rt.device_memory_in_use() > 0
        del stream
        gc.collect()
        assert rt.device_memory_in_use() == 0
        assert rt.live_streams() == []

    def test_memory_report_agrees_with_device_after_release(self, gles2_runtime):
        keep = gles2_runtime.stream((16, 16), name="keep")
        drop = gles2_runtime.stream((16, 16), name="drop")
        drop.release()
        report = gles2_runtime.memory_usage_report()
        assert "keep" in report.per_stream_bytes
        assert "drop" not in report.per_stream_bytes
        assert gles2_runtime.device_memory_in_use() == keep.size_bytes

    def test_closed_runtime_rejects_new_work(self):
        rt = BrookRuntime(backend="cpu")
        rt.close()
        with pytest.raises(RuntimeBrookError):
            rt.stream((4, 4))
        with pytest.raises(RuntimeBrookError):
            rt.compile(SAXPY)
        with pytest.raises(RuntimeBrookError):
            rt.queue()

    def test_close_is_idempotent_and_keeps_statistics(self):
        rt = BrookRuntime(backend="cpu")
        module = rt.compile(SAXPY)
        x = rt.stream_from(np.ones((4, 4), dtype=np.float32))
        y = rt.stream_from(np.ones((4, 4), dtype=np.float32))
        out = rt.stream((4, 4))
        module.saxpy(1.0, x, y, out)
        rt.close()
        rt.close()
        assert rt.statistics.total_passes == 1


# --------------------------------------------------------------------------- #
# Partial reduction preconditions
# --------------------------------------------------------------------------- #
class TestReduceIntoValidation:
    def test_rank_mismatch_rejected(self, cpu_runtime):
        module = cpu_runtime.compile(SUM)
        stream = cpu_runtime.stream_from(np.ones((4, 6), dtype=np.float32))
        # (2,) flattens to a (1, 2) layout which would divide (4, 6); the
        # logical extents still must match the input's rank.
        target = cpu_runtime.stream((2,))
        with pytest.raises(KernelLaunchError, match="evenly divide"):
            module.total(stream, target)

    def test_non_dividing_extents_rejected(self, cpu_runtime):
        module = cpu_runtime.compile(SUM)
        stream = cpu_runtime.stream_from(np.ones((8, 8), dtype=np.float32))
        target = cpu_runtime.stream((3, 4))
        with pytest.raises(KernelLaunchError, match="evenly divide"):
            module.total(stream, target)

    def test_valid_partial_reduction_still_works(self, cpu_runtime):
        module = cpu_runtime.compile(SUM)
        data = np.arange(64, dtype=np.float32).reshape(8, 8)
        stream = cpu_runtime.stream_from(data)
        target = cpu_runtime.stream((4, 4))
        result = module.total(stream, target)
        expected = data.reshape(4, 2, 4, 2).sum(axis=(1, 3))
        np.testing.assert_allclose(result, expected)


# --------------------------------------------------------------------------- #
# Application runs on the new session machinery
# --------------------------------------------------------------------------- #
class TestApplicationSessions:
    def test_run_with_reused_runtime_hits_compile_cache(self):
        from repro.apps.base import get_application

        app = get_application("black_scholes")
        with app.create_runtime("cpu") as rt:
            first = app.run(size=8, runtime=rt)
            second = app.run(size=8, runtime=rt)
            assert first.valid and second.valid
            assert rt.compile_cache_info()["hits"] >= 1
            assert not rt.closed
        assert rt.closed

    def test_run_owned_runtime_releases_memory(self):
        from repro.apps.base import get_application

        app = get_application("black_scholes")
        result = app.run(backend="cpu", size=8)
        assert result.valid
        assert result.statistics.total_passes > 0
