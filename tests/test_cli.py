"""Tests for the ``brookauto`` command-line interface."""

import json

import pytest

from repro.cli import main

COMPLIANT = """
kernel void scale(float a<>, float k, out float o<>) {
    o = a * k;
}
"""

NON_COMPLIANT = """
kernel void f(float *p, out float o<>) {
    o = p[0];
}
"""


@pytest.fixture
def compliant_file(tmp_path):
    path = tmp_path / "scale.br"
    path.write_text(COMPLIANT)
    return path


@pytest.fixture
def non_compliant_file(tmp_path):
    path = tmp_path / "legacy.br"
    path.write_text(NON_COMPLIANT)
    return path


class TestCompileCommand:
    def test_compile_writes_artifacts(self, compliant_file, tmp_path, capsys):
        output = tmp_path / "out"
        exit_code = main(["compile", str(compliant_file),
                          "--output-dir", str(output)])
        assert exit_code == 0
        assert (output / "scale.es2.frag").exists()
        assert (output / "scale.gl.frag").exists()
        assert (output / "scale.cpu.c").exists()
        assert "COMPLIANT" in capsys.readouterr().out

    def test_compile_rejects_non_compliant_source(self, non_compliant_file, capsys):
        exit_code = main(["compile", str(non_compliant_file)])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_compile_no_strict_accepts_it(self, non_compliant_file, tmp_path):
        exit_code = main(["compile", str(non_compliant_file), "--no-strict",
                          "--output-dir", str(tmp_path / "o")])
        assert exit_code == 0


class TestCheckCommand:
    def test_check_compliant(self, compliant_file, capsys):
        assert main(["check", str(compliant_file)]) == 0
        assert "COMPLIANT" in capsys.readouterr().out

    def test_check_non_compliant_exit_code(self, non_compliant_file, capsys):
        assert main(["check", str(non_compliant_file)]) == 2
        assert "BA-001" in capsys.readouterr().out

    def test_check_json_format(self, compliant_file, capsys):
        main(["check", str(compliant_file), "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        assert data["compliant"] is True

    def test_check_markdown_format(self, compliant_file, capsys):
        main(["check", str(compliant_file), "--format", "markdown"])
        assert "| Rule |" in capsys.readouterr().out

    def test_check_on_constrained_device(self, compliant_file):
        assert main(["check", str(compliant_file),
                     "--device", "constrained-es2"]) == 0


class TestRunAppAndEvaluate:
    def test_run_app_validates(self, capsys):
        exit_code = main(["run-app", "image_filter", "--backend", "gles2",
                          "--size", "16"])
        assert exit_code == 0
        assert "validation PASSED" in capsys.readouterr().out

    def test_run_app_cpu_backend(self, capsys):
        assert main(["run-app", "sgemm", "--backend", "cpu", "--size", "8"]) == 0

    def test_run_app_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["run-app", "raytracer"])

    def test_evaluate_figure1(self, capsys):
        assert main(["evaluate", "figure1"]) == 0
        assert "26.7" in capsys.readouterr().out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestBackendsCommand:
    def test_lists_registered_backends(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("cpu", "gles2", "cal"):
            assert name in out
        assert "videocore-iv" in out
        assert "aliases" in out

    def test_lists_custom_backend(self, capsys):
        from repro.backends import CPUBackend, register_backend, unregister_backend

        register_backend("cli-test", lambda device=None: CPUBackend(),
                         description="registered by the CLI test")
        try:
            assert main(["backends"]) == 0
            assert "cli-test" in capsys.readouterr().out
        finally:
            unregister_backend("cli-test")


class TestCertifyCommand:
    def test_certify_compliant_exits_zero(self, compliant_file, capsys):
        assert main(["certify", str(compliant_file)]) == 0
        out = capsys.readouterr().out
        assert "certification COMPLIANT" in out

    def test_certify_non_compliant_exits_one(self, non_compliant_file, capsys):
        assert main(["certify", str(non_compliant_file)]) == 1
        assert "NON-COMPLIANT" in capsys.readouterr().out

    def test_certify_wcet_table(self, compliant_file, capsys):
        assert main(["certify", str(compliant_file), "--wcet"]) == 0
        out = capsys.readouterr().out
        assert "Worst-case work bounds" in out
        assert "scale" in out

    def test_certify_wcet_reports_missing_bound(self, tmp_path, capsys):
        path = tmp_path / "spin.br"
        path.write_text("""
kernel void spin(float x<>, out float y<>) {
    float i = 0.0;
    while (i < x) { i += 1.0; }
    y = i;
}
""")
        assert main(["certify", str(path), "--wcet"]) == 1
        assert "NO BOUND" in capsys.readouterr().out

    def test_certify_json_format(self, compliant_file, capsys):
        assert main(["certify", str(compliant_file), "--format", "json"]) == 0
        json.loads(capsys.readouterr().out.split("\n\n")[0])

    def test_certify_unparsable_source(self, tmp_path, capsys):
        path = tmp_path / "broken.br"
        path.write_text("kernel void f( {")
        assert main(["certify", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestAutoplanCommand:
    def test_prints_candidate_table(self, capsys):
        assert main(["autoplan", "--size", "16"]) == 0
        out = capsys.readouterr().out
        assert "auto-plan for" in out
        assert "devices" in out
        assert "modelled_ms" in out
        assert "baseline" in out

    def test_json_format_parses(self, capsys):
        assert main(["autoplan", "--size", "16", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["chosen"]["modelled_ms"] \
            <= payload["baseline"]["modelled_ms"]
        assert payload["candidates"]

    def test_json_file_output(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        assert main(["autoplan", "--size", "16", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["label"].startswith("filter3x3+")

    def test_unmeetable_deadline_exits_one(self, capsys):
        exit_code = main(["autoplan", "--size", "16",
                          "--deadline-ms", "0.000001"])
        assert exit_code == 1
        assert "deadline budget" in capsys.readouterr().err

    def test_meetable_deadline_reports_choice(self, capsys):
        assert main(["autoplan", "--size", "16",
                     "--deadline-ms", "60000"]) == 0
        assert "deadline budget" in capsys.readouterr().out


class TestServeBenchDeadlineMode:
    def test_overload_run_writes_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        exit_code = main(["serve-bench", "--size", "16", "--requests", "8",
                          "--pool-sizes", "1", "--overload", "2.0",
                          "--json", str(tmp_path / "bench.json")])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "edf+admission" in out
        payload = json.loads((tmp_path / "bench.json").read_text())
        assert payload["benchmark"] == "deadline"
        assert payload["bitwise_identical"]
        assert payload["wcet_sound"]
        assert set(payload["configs"]) == {"fifo", "edf", "edf+admission"}

    def test_deadline_ms_axis(self, tmp_path, capsys):
        exit_code = main(["serve-bench", "--size", "16", "--requests", "6",
                          "--pool-sizes", "1", "--deadline-ms", "1000",
                          "--json", str(tmp_path / "bench.json")])
        assert exit_code == 0
        payload = json.loads((tmp_path / "bench.json").read_text())
        assert payload["timing"]["relative_deadline_s"] == pytest.approx(1.0)


class TestDataflowCommand:
    def test_table_reports_race_free_pipeline(self, capsys):
        assert main(["dataflow", "--size", "16"]) == 0
        out = capsys.readouterr().out
        assert "race-free: yes" in out
        assert "RAW on s0" in out
        assert "halo=image" in out

    def test_fused_pipeline_is_single_node(self, capsys):
        assert main(["dataflow", "--size", "16", "--fused"]) == 0
        out = capsys.readouterr().out
        assert "1 launches, 0 dependency edges" in out

    def test_json_format_carries_graph_and_lint(self, capsys):
        assert main(["dataflow", "--size", "16", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["graph"]["race_free"] is True
        assert len(payload["graph"]["nodes"]) == 8
        assert "diagnostics" in payload["lint"]

    def test_sarif_output_file(self, tmp_path, capsys):
        path = tmp_path / "dataflow.sarif"
        assert main(["dataflow", "--size", "16", "--format", "sarif",
                     "--output", str(path)]) == 0
        sarif = json.loads(path.read_text())
        assert sarif["runs"][0]["tool"]["driver"]["name"]

    def test_sharded_runtime_analyzes_clean(self, capsys):
        assert main(["dataflow", "--size", "16", "--backend", "gles2",
                     "--devices", "2"]) == 0
        assert "race-free: yes" in capsys.readouterr().out


class TestLintPipelinesFlag:
    def test_lint_pipelines_merges_bf_rules(self, capsys):
        assert main(["lint", "--pipelines"]) == 0
        out = capsys.readouterr().out
        assert "BF-206" in out      # unfused chain: fusable intermediates
        assert "error(s)" in out


class TestServeBenchSanitize:
    def test_sanitize_overhead_in_report(self, tmp_path, capsys):
        exit_code = main(["serve-bench", "--size", "16", "--requests", "6",
                          "--pool-sizes", "1", "--sanitize",
                          "--json", str(tmp_path / "bench.json")])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "BrookSanitizer (BROOKSAN) overhead:" in out
        payload = json.loads((tmp_path / "bench.json").read_text())
        assert payload["sanitize"] is True
        sanitized = payload["pools"]["1"]["sanitize"]
        assert sanitized["bitwise_identical"] is True
        assert "overhead_pct" in sanitized
        assert sanitized["sanitizer"]["counts"] == {}


class TestVectorizeCommand:
    DIVERGENT = """
kernel void shade(float knee, float x<>, out float r<>) {
    if (x > knee) { r = x * 0.5; } else { r = x * x; }
}
"""
    UNPROVED = """
kernel void risky(float d, float x<>, out float r<>) {
    if (x > 0.0) { r = x / d; } else { r = x; }
}
"""

    @pytest.fixture
    def divergent_file(self, tmp_path):
        path = tmp_path / "shade.br"
        path.write_text(self.DIVERGENT)
        return path

    def test_no_inputs_rejected(self, capsys):
        assert main(["vectorize"]) == 2
        assert "no inputs" in capsys.readouterr().err

    def test_plain_br_file(self, divergent_file, capsys):
        # Regression: a path without --apps compiles with empty (not
        # None) param_bounds/range_specs.
        assert main(["vectorize", str(divergent_file)]) == 0
        out = capsys.readouterr().out
        assert "BV-301" in out
        assert "1/1 kernel(s) take the vector path" in out

    def test_unproved_obligation_row(self, tmp_path, capsys):
        path = tmp_path / "risky.br"
        path.write_text(self.UNPROVED)
        assert main(["vectorize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "BV-303" in out
        assert "includes zero" in out

    def test_apps_are_vector_clean(self, capsys):
        assert main(["vectorize", "--apps"]) == 0
        out = capsys.readouterr().out
        assert "15/15 kernel(s) take the vector path" in out

    def test_json_format(self, divergent_file, capsys):
        assert main(["vectorize", str(divergent_file),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernels"][0]["verdict"] == "BV-301"
        assert payload["kernels"][0]["file"].endswith("shade.br")

    def test_sarif_format(self, divergent_file, tmp_path, capsys):
        sarif_path = tmp_path / "vectorize.sarif"
        assert main(["vectorize", str(divergent_file), "--format", "sarif",
                     "--output", str(sarif_path)]) == 0
        run = json.loads(sarif_path.read_text())["runs"][0]
        assert any(result["ruleId"] == "BV-301"
                   for result in run["results"])

    def test_certify_vectorize_appends_table(self, divergent_file, capsys):
        assert main(["certify", str(divergent_file), "--vectorize"]) == 0
        out = capsys.readouterr().out
        assert "COMPLIANT" in out
        assert "brookvec vector-path eligibility:" in out
        assert "BV-301" in out

    def test_lint_vectorize_merges_notes(self, divergent_file, capsys):
        assert main(["lint", str(divergent_file), "--vectorize"]) == 0
        assert "BV-301" in capsys.readouterr().out
