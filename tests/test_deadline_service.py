"""Tests for deadline-aware serving: EDF queues, WCET admission control
and the modelled-timeline accounting in :class:`BrookService`."""

import queue as stdlib_queue
from dataclasses import dataclass
from typing import Optional

import numpy as np
import pytest

from repro.errors import BrookError, RuntimeBrookError, WCETError
from repro.service import (
    BrookService,
    DeadlineRejected,
    DeadlineStats,
    EDFQueue,
    ServiceRequest,
    ServiceResponse,
    call,
)

SRC = """
kernel void scale(float x<>, float k, out float y<>) { y = x * k; }
kernel void offset(float x<>, float d, out float y<>) { y = x + d; }
"""

UNCERTIFIABLE = """
kernel void spin(float x<>, out float y<>) {
    float i = 0.0;
    while (i < x) { i += 1.0; }
    y = i;
}
"""


def make_request(data, k=2.0, d=1.0, name="", **extra):
    return ServiceRequest(
        source=SRC,
        calls=(call("scale", "x", k, "tmp"), call("offset", "tmp", d, "out")),
        inputs={"x": data},
        outputs={"out": data.shape},
        scratch={"tmp": data.shape},
        name=name,
        **extra,
    )


def frame(size=8, seed=0):
    return np.random.default_rng(seed).uniform(
        0, 1, (size, size)).astype(np.float32)


# --------------------------------------------------------------------------- #
# Request validation
# --------------------------------------------------------------------------- #
class TestDeadlineFields:
    def test_non_positive_deadline_rejected(self):
        for bad in (0, -1.5):
            with pytest.raises(RuntimeBrookError, match="deadline"):
                make_request(frame(), deadline=bad)

    def test_non_integer_priority_rejected(self):
        with pytest.raises(RuntimeBrookError, match="priority"):
            make_request(frame(), priority=1.5)

    def test_negative_release_rejected(self):
        with pytest.raises(RuntimeBrookError, match="release"):
            make_request(frame(), release=-0.1)

    def test_valid_fields_normalized(self):
        request = make_request(frame(), deadline=np.float64(0.5),
                               priority=np.int64(2), release=0)
        assert request.deadline == 0.5
        assert request.priority == 2
        assert request.release == 0.0

    def test_signature_ignores_deadline_fields(self):
        a = make_request(frame())
        b = make_request(frame(), deadline=0.25, priority=3, release=0.1)
        assert a.signature() == b.signature()


# --------------------------------------------------------------------------- #
# EDF queue
# --------------------------------------------------------------------------- #
@dataclass
class _FakeRequest:
    deadline: Optional[float] = None
    priority: int = 0


@dataclass
class _FakeItem:
    request: _FakeRequest
    tag: str = ""


class TestEDFQueue:
    def test_orders_by_deadline(self):
        q = EDFQueue()
        for tag, deadline in (("late", 3.0), ("early", 1.0), ("mid", 2.0)):
            q.put(_FakeItem(_FakeRequest(deadline=deadline), tag))
        assert [q.get_nowait().tag for _ in range(3)] == \
            ["early", "mid", "late"]

    def test_priority_breaks_deadline_ties(self):
        q = EDFQueue()
        q.put(_FakeItem(_FakeRequest(deadline=1.0, priority=5), "low"))
        q.put(_FakeItem(_FakeRequest(deadline=1.0, priority=1), "high"))
        assert q.get_nowait().tag == "high"

    def test_best_effort_sorts_after_every_deadline(self):
        q = EDFQueue()
        q.put(_FakeItem(_FakeRequest(deadline=None), "besteffort"))
        q.put(_FakeItem(_FakeRequest(deadline=99.0), "deadline"))
        assert q.get_nowait().tag == "deadline"
        assert q.get_nowait().tag == "besteffort"

    def test_fifo_among_equal_keys(self):
        q = EDFQueue()
        for tag in ("first", "second", "third"):
            q.put(_FakeItem(_FakeRequest(deadline=1.0), tag))
        assert [q.get_nowait().tag for _ in range(3)] == \
            ["first", "second", "third"]

    def test_sentinel_released_only_after_work_drains(self):
        q = EDFQueue()
        stop = object()  # no .request attribute, like the service's _STOP
        q.put(stop)
        q.put(_FakeItem(_FakeRequest(deadline=1.0), "work"))
        assert q.qsize() == 2
        assert q.get_nowait().tag == "work"
        assert q.get_nowait() is stop

    def test_empty_queue_raises(self):
        q = EDFQueue()
        assert q.empty()
        with pytest.raises(stdlib_queue.Empty):
            q.get_nowait()

    def test_blocking_get_with_timeout(self):
        q = EDFQueue()
        q.put(_FakeItem(_FakeRequest(deadline=1.0), "work"))
        assert q.get(block=True, timeout=0.1).tag == "work"


# --------------------------------------------------------------------------- #
# DeadlineStats
# --------------------------------------------------------------------------- #
class TestDeadlineStats:
    def test_completion_accounting(self):
        stats = DeadlineStats()
        stats.record_completion(True, wcet_s=1.0, modelled_s=0.25)
        stats.record_completion(False, wcet_s=1.0, modelled_s=0.5)
        stats.record_completion(None, wcet_s=None, modelled_s=None)
        assert stats.hits == 1 and stats.misses == 1
        assert stats.best_effort == 1
        assert stats.hit_rate == 0.5
        summary = stats.summary()
        assert summary["wcet_margin"]["count"] == 2
        assert summary["wcet_margin"]["min"] == 0.5
        assert summary["wcet_margin"]["max"] == 0.75

    def test_hit_rate_none_without_deadline_completions(self):
        assert DeadlineStats().hit_rate is None

    def test_reset(self):
        stats = DeadlineStats()
        stats.admitted = 3
        stats.record_completion(True, 1.0, 0.5)
        stats.reset()
        assert stats.admitted == 0 and stats.hits == 0
        assert not stats.margins


# --------------------------------------------------------------------------- #
# Service construction validation
# --------------------------------------------------------------------------- #
class TestServiceValidation:
    def test_unknown_scheduler_rejected(self):
        with pytest.raises(RuntimeBrookError, match="scheduler"):
            BrookService(scheduler="lifo")

    def test_unknown_platform_rejected(self):
        with pytest.raises(RuntimeBrookError, match="platform"):
            BrookService(platform="quantum")

    def test_report_names_scheduler_and_admission(self):
        with BrookService(backend="cpu", pool_size=1) as service:
            report = service.service_report()
        assert report["scheduler"] == "fifo"
        assert report["admission"] is False
        assert "deadline" not in report


# --------------------------------------------------------------------------- #
# Deadline tracking, admission and the modelled timeline
# --------------------------------------------------------------------------- #
class TestDeadlineServing:
    def test_tracked_response_carries_wcet_and_modelled_time(self):
        with BrookService(backend="cpu", pool_size=1,
                          platform="target") as service:
            response = service.process(make_request(frame()))
        assert isinstance(response, ServiceResponse)
        assert response.modelled_s is not None and response.modelled_s > 0
        assert response.wcet_s is not None
        assert response.modelled_s <= response.wcet_s
        assert response.virtual_finish_s is not None
        assert response.deadline_met is None  # no deadline on the request

    def test_generous_deadline_is_met(self):
        with BrookService(backend="cpu", pool_size=1, scheduler="edf",
                          admission=True) as service:
            response = service.process(make_request(frame(), deadline=60.0))
        assert response.deadline_met is True
        assert response.virtual_finish_s <= 60.0

    def test_impossible_deadline_rejected_with_typed_response(self):
        with BrookService(backend="cpu", pool_size=1, scheduler="edf",
                          admission=True) as service:
            # Far below any request's WCET bound on the modelled timeline.
            rejected = service.process(make_request(frame(), deadline=1e-12))
            report = service.service_report()
        assert isinstance(rejected, DeadlineRejected)
        assert rejected.deadline_s == 1e-12
        assert rejected.projected_s > rejected.deadline_s
        assert rejected.wcet_s > 0
        assert report["deadline"]["rejected"] == 1

    def test_rejection_is_not_an_exception(self):
        with BrookService(backend="cpu", pool_size=1, scheduler="edf",
                          admission=True) as service:
            future = service.submit(make_request(frame(), deadline=1e-12))
            result = future.result(timeout=10)
        assert isinstance(result, DeadlineRejected)

    def test_admission_fills_up_to_the_deadline(self):
        data = frame()
        with BrookService(backend="cpu", pool_size=1, scheduler="edf",
                          admission=True) as service:
            probe = service.process(make_request(data, deadline=60.0))
            # The backlog clock sits at the probe's WCET projection
            # (committed time never decays to the faster actual), so this
            # leaves room for exactly two more WCETs.
            deadline = 3.5 * probe.wcet_s
            futures = [service.submit(make_request(data, deadline=deadline))
                       for _ in range(4)]
            results = [f.result(timeout=30) for f in futures]
        admitted = [r for r in results if isinstance(r, ServiceResponse)]
        rejected = [r for r in results if isinstance(r, DeadlineRejected)]
        assert len(admitted) == 2
        assert len(rejected) == 2
        assert all(r.deadline_met for r in admitted)

    def test_uncertifiable_request_raises_typed_error_at_submit(self):
        data = frame()
        request = ServiceRequest(
            source=UNCERTIFIABLE,
            calls=(call("spin", "x", "out"),),
            inputs={"x": data},
            outputs={"out": data.shape},
        )
        with BrookService(backend="cpu", pool_size=1, scheduler="edf",
                          admission=True) as service:
            with pytest.raises(BrookError):
                service.submit(request)

    def test_completed_responses_bitwise_identical_across_schedulers(self):
        data = frame()
        request = make_request(data, deadline=60.0)
        with BrookService(backend="cpu", pool_size=1) as fifo:
            baseline = fifo.process(make_request(data))
        with BrookService(backend="cpu", pool_size=1, scheduler="edf",
                          admission=True) as edf:
            tracked = edf.process(request)
        np.testing.assert_array_equal(baseline.outputs["out"],
                                      tracked.outputs["out"])
        assert baseline.outputs["out"].tobytes() == \
            tracked.outputs["out"].tobytes()

    def test_report_deadline_section(self):
        with BrookService(backend="cpu", pool_size=1, scheduler="edf",
                          admission=True) as service:
            service.process(make_request(frame(), deadline=60.0))
            service.process(make_request(frame()))
            report = service.service_report()
        deadline = report["deadline"]
        assert report["scheduler"] == "edf"
        assert report["admission"] is True
        assert deadline["platform"] == "target"
        assert deadline["admitted"] == 2
        assert deadline["deadline_hits"] == 1
        assert deadline["best_effort"] == 1
        assert deadline["hit_rate"] == 1.0
        assert deadline["wcet_margin"]["count"] == 2
        assert 0.0 <= deadline["wcet_margin"]["min"] <= 1.0
        assert deadline["virtual_s"] > 0

    def test_reset_clears_deadline_stats_and_clocks(self):
        with BrookService(backend="cpu", pool_size=1, scheduler="edf",
                          admission=True) as service:
            service.process(make_request(frame(), deadline=60.0))
            service.reset_service_stats()
            report = service.service_report()
            assert report["deadline"]["admitted"] == 0
            assert report["deadline"]["virtual_s"] == 0.0
            # The service still serves correctly after a reset.
            response = service.process(make_request(frame(), deadline=60.0))
        assert response.deadline_met is True

    def test_deterministic_accounting_across_runs(self):
        def run_once():
            with BrookService(backend="cpu", pool_size=2, scheduler="edf",
                              admission=True) as service:
                futures = [
                    service.submit(make_request(frame(seed=i), deadline=60.0,
                                                name=f"r{i}"))
                    for i in range(6)
                ]
                return [f.result(timeout=30).virtual_finish_s
                        for f in futures]

        assert run_once() == run_once()
