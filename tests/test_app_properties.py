"""Algorithm-level property tests for the reference applications.

Each application's CPU reference and Brook implementation should not just
agree with each other - they should satisfy the mathematical properties
of the algorithm they claim to implement.  These tests check those
invariants (mostly on the Brook/GL ES 2 path, since that is the paper's
contribution).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_application
from repro.apps.black_scholes import RISK_FREE_RATE, _cnd
from repro.apps.image_filter import FILTER_3X3
from repro.apps.mandelbrot import MAX_ITERATIONS


def brook_outputs(name, size, seed=0, backend="gles2", **app_kwargs):
    app = get_application(name)
    for key, value in app_kwargs.items():
        setattr(app, key, value)
    runtime = app.create_runtime(backend)
    module = app.compile(runtime)
    inputs = app.generate_inputs(size, seed)
    return inputs, app.run_brook(runtime, module, size, inputs)


class TestFinancialKernels:
    def test_black_scholes_put_call_parity(self):
        """C - P = S - K * exp(-rT) must hold for every option priced."""
        inputs, outputs = brook_outputs("black_scholes", 12, seed=5)
        s, k, t = inputs["price"], inputs["strike"], inputs["years"]
        parity = s - k * np.exp(-RISK_FREE_RATE * t)
        np.testing.assert_allclose(outputs["call"] - outputs["put"], parity,
                                   rtol=5e-3, atol=1e-2)

    def test_black_scholes_call_within_no_arbitrage_bounds(self):
        inputs, outputs = brook_outputs("black_scholes", 12, seed=6)
        s, k, t = inputs["price"], inputs["strike"], inputs["years"]
        lower = np.maximum(s - k * np.exp(-RISK_FREE_RATE * t), 0.0)
        assert np.all(outputs["call"] >= lower - 1e-2)
        assert np.all(outputs["call"] <= s + 1e-2)

    def test_cnd_is_a_distribution_function(self):
        xs = np.linspace(-6, 6, 201)
        values = _cnd(xs)
        assert np.all(np.diff(values) >= -1e-7)           # monotone
        assert values[0] == pytest.approx(0.0, abs=1e-5)
        assert values[-1] == pytest.approx(1.0, abs=1e-5)
        assert _cnd(np.array([0.0]))[0] == pytest.approx(0.5, abs=1e-6)

    def test_binomial_price_is_nonnegative_and_bounded(self):
        inputs, outputs = brook_outputs("binomial", 10, seed=2)
        values = outputs["value"]
        assert np.all(values >= -1e-4)
        assert np.all(values <= inputs["price"] + 1e-3)

    def test_binomial_approaches_black_scholes(self):
        """With matching parameters the CRR lattice approximates the
        Black-Scholes closed form (European call, no dividends)."""
        from repro.apps.binomial import BinomialOptionApp, VOLATILITY, YEARS
        app = BinomialOptionApp(num_steps=63)
        price = np.full((4, 4), 50.0, dtype=np.float32)
        strike = np.full((4, 4), 45.0, dtype=np.float32)
        lattice = app.cpu_reference(4, {"price": price, "strike": strike})["value"]
        sqrt_t = np.sqrt(YEARS)
        d1 = (np.log(50.0 / 45.0) + (RISK_FREE_RATE + 0.5 * VOLATILITY ** 2) * YEARS) \
            / (VOLATILITY * sqrt_t)
        d2 = d1 - VOLATILITY * sqrt_t
        closed_form = 50.0 * _cnd(np.array([d1]))[0] \
            - 45.0 * np.exp(-RISK_FREE_RATE * YEARS) * _cnd(np.array([d2]))[0]
        assert lattice[0, 0] == pytest.approx(closed_form, rel=0.02)


class TestDataProcessingKernels:
    def test_prefix_sum_last_element_is_total(self):
        inputs, outputs = brook_outputs("prefix_sum", 12, seed=1)
        scan = outputs["scan"].reshape(-1)
        total = inputs["values"].sum(dtype=np.float64)
        assert scan[-1] == pytest.approx(float(total), rel=1e-4)

    def test_prefix_sum_is_monotone_for_nonnegative_inputs(self):
        _, outputs = brook_outputs("prefix_sum", 12, seed=3)
        scan = outputs["scan"].reshape(-1)
        assert np.all(np.diff(scan) >= -1e-4)

    def test_bitonic_sort_output_is_sorted_permutation(self):
        inputs, outputs = brook_outputs("bitonic_sort", 8, seed=4)
        result = outputs["sorted"].reshape(-1)
        assert np.all(np.diff(result) >= 0)
        np.testing.assert_array_equal(np.sort(inputs["values"].reshape(-1)), result)

    def test_binary_search_finds_every_key(self):
        inputs, outputs = brook_outputs("binary_search", 12, seed=5)
        table = inputs["table"].reshape(-1)
        keys = inputs["keys"].reshape(-1)
        positions = outputs["position"].reshape(-1).astype(int)
        assert np.all(positions >= 0)
        np.testing.assert_array_equal(table[positions], keys)

    def test_spmv_is_linear_in_the_vector(self):
        """SpMV(A, 2x) == 2 * SpMV(A, x)."""
        app = get_application("spmv")
        runtime = app.create_runtime("cpu")
        module = app.compile(runtime)
        inputs = app.generate_inputs(64, seed=6)
        base = app.run_brook(runtime, module, 64, inputs)["row_sum"]
        scaled_inputs = dict(inputs)
        scaled_inputs["vector"] = inputs["vector"] * 2.0
        runtime2 = app.create_runtime("cpu")
        module2 = app.compile(runtime2)
        doubled = app.run_brook(runtime2, module2, 64, scaled_inputs)["row_sum"]
        np.testing.assert_allclose(doubled, 2.0 * base, rtol=1e-5, atol=1e-5)


class TestGraphAndImageKernels:
    def test_floyd_warshall_triangle_inequality(self):
        _, outputs = brook_outputs("floyd_warshall", 10, seed=7)
        dist = outputs["dist"].astype(np.float64)
        n = dist.shape[0]
        # d(i, j) <= d(i, k) + d(k, j) for every k after convergence.
        for k in range(n):
            through = dist[:, k:k + 1] + dist[k:k + 1, :]
            assert np.all(dist <= through + 1e-3)

    def test_floyd_warshall_never_increases_distances(self):
        inputs, outputs = brook_outputs("floyd_warshall", 10, seed=8)
        assert np.all(outputs["dist"] <= inputs["weights"] + 1e-4)

    def test_floyd_warshall_diagonal_is_zero(self):
        _, outputs = brook_outputs("floyd_warshall", 10, seed=9)
        np.testing.assert_allclose(np.diag(outputs["dist"]), 0.0, atol=1e-6)

    def test_image_filter_preserves_constant_images(self):
        app = get_application("image_filter")
        runtime = app.create_runtime("gles2")
        module = app.compile(runtime)
        constant = {"image": np.full((16, 16), 25.0, dtype=np.float32)}
        filtered = app.run_brook(runtime, module, 16, constant)["filtered"]
        np.testing.assert_allclose(filtered, 25.0, rtol=1e-5)

    def test_image_filter_kernel_weights_sum_to_one(self):
        assert FILTER_3X3.sum() == pytest.approx(1.0)

    def test_image_filter_output_within_input_range(self):
        inputs, outputs = brook_outputs("image_filter", 16, seed=10)
        assert outputs["filtered"].min() >= inputs["image"].min() - 1e-3
        assert outputs["filtered"].max() <= inputs["image"].max() + 1e-3

    def test_mandelbrot_known_points(self):
        """The origin never escapes; points far outside the set escape
        immediately."""
        _, outputs = brook_outputs("mandelbrot", 16)
        iterations = outputs["iterations"]
        assert iterations.max() == MAX_ITERATIONS       # interior points
        assert iterations.min() <= 2                     # far exterior corners

    def test_mandelbrot_is_deterministic(self):
        _, first = brook_outputs("mandelbrot", 16)
        _, second = brook_outputs("mandelbrot", 16, seed=99)
        np.testing.assert_array_equal(first["iterations"], second["iterations"])

    def test_sgemm_identity_matrix(self):
        app = get_application("sgemm")
        runtime = app.create_runtime("gles2")
        module = app.compile(runtime)
        rng = np.random.default_rng(11)
        a = rng.uniform(-1, 1, (16, 16)).astype(np.float32)
        identity = np.eye(16, dtype=np.float32)
        outputs = app.run_brook(runtime, module, 16, {"a": a, "b": identity})
        np.testing.assert_allclose(outputs["c"], a, rtol=1e-5, atol=1e-5)

    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_sgemm_matches_numpy_for_random_seeds(self, seed):
        app = get_application("sgemm")
        runtime = app.create_runtime("cpu")
        module = app.compile(runtime)
        inputs = app.generate_inputs(12, seed=seed)
        outputs = app.run_brook(runtime, module, 12, inputs)
        expected = inputs["a"].astype(np.float64) @ inputs["b"].astype(np.float64)
        np.testing.assert_allclose(outputs["c"], expected, rtol=2e-3, atol=1e-3)
