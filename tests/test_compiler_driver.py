"""Tests for the compiler driver (BrookAutoCompiler / compile_source)."""

import pytest

from repro.core import TargetLimits, compile_source
from repro.core.compiler import BrookAutoCompiler, CompilerOptions
from repro.errors import CertificationError


TWO_OUTPUT = (
    "kernel void pair(float a<>, out float lo<>, out float hi<>) {"
    " lo = min(a, 0.0); hi = max(a, 0.0); }"
)


class TestDriver:
    def test_compile_simple_kernel(self, sample_source):
        program = compile_source(sample_source)
        assert program.is_certified
        assert set(program.kernels) == {"saxpy", "gather_scale", "total"}
        assert program.kernel_groups["saxpy"] == ["saxpy"]

    def test_artifacts_emitted_for_all_backends(self, sample_source):
        program = compile_source(sample_source)
        kernel = program.kernel("saxpy")
        assert kernel.glsl_es and "gl_FragColor" in kernel.glsl_es
        assert kernel.desktop_glsl and "texture2DRect" not in kernel.glsl_es
        assert kernel.c_source and "brook_cpu_saxpy" in kernel.c_source

    def test_emission_can_be_disabled(self, sample_source):
        program = compile_source(sample_source, emit_c=False,
                                 emit_desktop_glsl=False)
        kernel = program.kernel("saxpy")
        assert kernel.c_source is None
        assert kernel.desktop_glsl is None
        assert kernel.glsl_es is not None

    def test_unknown_option_rejected(self, sample_source):
        with pytest.raises(TypeError):
            compile_source(sample_source, optimise_harder=True)

    def test_unknown_kernel_lookup(self, sample_source):
        program = compile_source(sample_source)
        with pytest.raises(KeyError):
            program.kernel("nope")

    def test_helpers_exposed(self, sample_source):
        program = compile_source(sample_source)
        assert "square" in program.helpers()

    def test_original_definitions_preserved(self, sample_source):
        program = compile_source(sample_source)
        assert set(program.original_definitions) == \
            {"saxpy", "gather_scale", "total"}

    def test_max_loop_iterations_attached(self, sample_source):
        program = compile_source(sample_source)
        assert program.kernel("gather_scale").max_loop_iterations == 4


class TestSplittingAndTargets:
    def test_two_output_kernel_split_for_gles2(self):
        program = compile_source(TWO_OUTPUT)
        assert program.kernel_groups["pair"] == ["pair__lo", "pair__hi"]
        assert program.is_certified
        for name in program.kernel_groups["pair"]:
            assert len(program.kernel(name).definition.output_params) == 1
            assert program.kernel(name).original_name == "pair"

    def test_two_output_kernel_not_split_for_mrt_target(self):
        options = CompilerOptions(target=TargetLimits(name="desktop",
                                                      max_kernel_outputs=4))
        program = BrookAutoCompiler(options).compile(TWO_OUTPUT)
        assert program.kernel_groups["pair"] == ["pair"]

    def test_splitting_can_be_disabled(self):
        program = compile_source(TWO_OUTPUT, split_outputs=False, strict=False)
        assert program.kernel_groups["pair"] == ["pair"]
        assert not program.is_certified   # violates BA-007 on the default target

    def test_param_bounds_propagate_to_split_kernels(self):
        source = (
            "kernel void pair(float a<>, float n, out float x<>, out float y<>) {"
            " x = 0.0; y = 0.0;"
            " for (int i = 0; i < n; i = i + 1) { x += a; y -= a; } }"
        )
        program = compile_source(source, param_bounds={"pair": {"n": 16}})
        assert program.is_certified
        for name in program.kernel_groups["pair"]:
            assert program.kernel(name).max_loop_iterations == 16

    def test_scalarize_option_composes_with_splitting(self):
        source = "kernel void copy(float2 a<>, out float2 o<>) { o.x = a.x; o.y = a.y; }"
        program = compile_source(source, scalarize=True)
        # Scalarization yields two scalar outputs, which the single-render-
        # target default then splits into one kernel per output.
        assert program.kernel_groups["copy"] == ["copy__o_x", "copy__o_y"]
        names = set()
        for piece in program.kernel_groups["copy"]:
            names |= {p.name for p in program.kernel(piece).definition.params}
        assert {"a_x", "a_y"} <= names
        assert program.is_certified

    def test_strict_mode_raises(self):
        with pytest.raises(CertificationError):
            compile_source("kernel void f(float *p, out float o<>) { o = 1.0; }")

    def test_non_strict_mode_returns_report(self):
        program = compile_source(
            "kernel void f(float *p, out float o<>) { o = 1.0; }", strict=False
        )
        assert not program.is_certified
        assert program.certification.violations_for_rule("BA-001")

    def test_constant_folding_applied(self):
        program = compile_source(
            "kernel void f(float a<>, out float o<>) { o = a * (2.0 + 2.0); }"
        )
        assert "4.0" in program.kernel("f").glsl_es
