"""Tests for the exception hierarchy and source locations."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_brook_error(self):
        for name in ("BrookSyntaxError", "BrookTypeError", "CertificationError",
                     "CodegenError", "RuntimeBrookError", "StreamError",
                     "KernelLaunchError", "BackendError", "GLES2Error",
                     "CALError", "TimingModelError"):
            exc_type = getattr(errors, name)
            assert issubclass(exc_type, errors.BrookError), name

    def test_runtime_errors_group(self):
        assert issubclass(errors.StreamError, errors.RuntimeBrookError)
        assert issubclass(errors.KernelLaunchError, errors.RuntimeBrookError)
        assert issubclass(errors.BackendError, errors.RuntimeBrookError)

    def test_catching_base_class(self):
        with pytest.raises(errors.BrookError):
            raise errors.GLES2Error("boom")


class TestSourceLocation:
    def test_string_form(self):
        location = errors.SourceLocation("kernel.br", 12, 5)
        assert str(location) == "kernel.br:12:5"

    def test_defaults(self):
        location = errors.SourceLocation()
        assert location.line == 1 and location.column == 1

    def test_syntax_error_prefixes_location(self):
        error = errors.BrookSyntaxError("unexpected token",
                                        errors.SourceLocation("f.br", 3, 7))
        assert "f.br:3:7" in str(error)
        assert error.bare_message == "unexpected token"

    def test_type_error_without_location(self):
        error = errors.BrookTypeError("bad type")
        assert str(error) == "bad type"
        assert error.location is None

    def test_certification_error_carries_violations(self):
        error = errors.CertificationError("failed", violations=["v1", "v2"])
        assert error.violations == ["v1", "v2"]

    def test_certification_error_default_violations(self):
        assert errors.CertificationError("failed").violations == []

    def test_locations_are_immutable_and_hashable(self):
        location = errors.SourceLocation("a.br", 1, 2)
        assert hash(location) == hash(errors.SourceLocation("a.br", 1, 2))
        with pytest.raises(Exception):
            location.line = 5
