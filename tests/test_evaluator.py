"""Unit tests for the vectorized SIMT-style kernel evaluator."""

import numpy as np
import pytest

from repro.core.exec.evaluator import KernelEvaluator
from repro.core.exec.gather import ClampingGatherSource, NumpyGatherSource
from repro.core.parser import parse
from repro.errors import KernelLaunchError, RuntimeBrookError, StreamError


def make_evaluator(source, kernel_name=None, max_steps=1_000_000):
    unit = parse(source)
    helpers = {f.name: f for f in unit.functions
               if not (f.is_kernel or f.is_reduction)}
    kernel = unit.kernels[0] if kernel_name is None else unit.kernel(kernel_name)
    return KernelEvaluator(kernel, helpers, max_simt_steps=max_steps)


def run_single_output(source, n=8, **kwargs):
    evaluator = make_evaluator(source)
    outputs = evaluator.run(n, **kwargs)
    (result,) = [v for k, v in outputs.items()]
    return np.asarray(result), evaluator


class TestArithmetic:
    def test_elementwise_expression(self):
        x = np.arange(8, dtype=np.float32)
        result, _ = run_single_output(
            "kernel void f(float x<>, out float o<>) { o = x * x + 1.0; }",
            stream_inputs={"x": x},
        )
        np.testing.assert_allclose(result, x * x + 1.0)

    def test_scalar_uniform_argument(self):
        x = np.ones(4, dtype=np.float32)
        result, _ = run_single_output(
            "kernel void f(float x<>, float k, out float o<>) { o = x * k; }",
            n=4, stream_inputs={"x": x}, scalar_args={"k": 3.5},
        )
        np.testing.assert_allclose(result, 3.5 * x)

    def test_builtin_functions(self):
        x = np.linspace(0.1, 2.0, 8).astype(np.float32)
        result, _ = run_single_output(
            "kernel void f(float x<>, out float o<>) {"
            " o = sqrt(x) + exp(x) * 0.0 + max(x, 1.0); }",
            stream_inputs={"x": x},
        )
        np.testing.assert_allclose(result, np.sqrt(x) + np.maximum(x, 1.0),
                                   rtol=1e-6)

    def test_integer_division_truncates(self):
        x = np.zeros(4, dtype=np.float32)
        result, _ = run_single_output(
            "kernel void f(float x<>, out float o<>) {"
            " int a = 7; int b = 2; o = float(a / b) + x; }",
            n=4, stream_inputs={"x": x},
        )
        np.testing.assert_allclose(result, 3.0)

    def test_modulo_on_floats(self):
        x = np.array([5.5, 7.25, 9.0, 3.0], dtype=np.float32)
        result, _ = run_single_output(
            "kernel void f(float x<>, out float o<>) { o = x % 2.0; }",
            n=4, stream_inputs={"x": x},
        )
        np.testing.assert_allclose(result, np.fmod(x, 2.0))

    def test_ternary_select(self):
        x = np.array([-2.0, -1.0, 1.0, 2.0], dtype=np.float32)
        result, _ = run_single_output(
            "kernel void f(float x<>, out float o<>) {"
            " o = (x > 0.0) ? x : -x; }",
            n=4, stream_inputs={"x": x},
        )
        np.testing.assert_allclose(result, np.abs(x))

    def test_vector_construction_and_swizzle(self):
        x = np.arange(4, dtype=np.float32)
        result, _ = run_single_output(
            "kernel void f(float x<>, out float o<>) {"
            " float4 v = float4(x, x * 2.0, 1.0, 0.0);"
            " o = v.x + v.y + v.z; }",
            n=4, stream_inputs={"x": x},
        )
        np.testing.assert_allclose(result, x + 2 * x + 1.0)

    def test_dot_product_builtin(self):
        x = np.arange(4, dtype=np.float32)
        result, _ = run_single_output(
            "kernel void f(float x<>, out float o<>) {"
            " float2 v = float2(x, 2.0); o = dot(v, v); }",
            n=4, stream_inputs={"x": x},
        )
        np.testing.assert_allclose(result, x * x + 4.0)

    def test_component_assignment(self):
        x = np.arange(4, dtype=np.float32)
        result, _ = run_single_output(
            "kernel void f(float x<>, out float o<>) {"
            " float2 v = float2(0.0, 0.0); v.x = x; v.y = x + 1.0;"
            " o = v.x * 10.0 + v.y; }",
            n=4, stream_inputs={"x": x},
        )
        np.testing.assert_allclose(result, x * 10.0 + x + 1.0)


class TestControlFlow:
    def test_divergent_if(self):
        x = np.array([-3.0, 5.0, -1.0, 2.0], dtype=np.float32)
        result, evaluator = run_single_output(
            "kernel void f(float x<>, out float o<>) {"
            " if (x < 0.0) { o = 0.0; } else { o = x; } }",
            n=4, stream_inputs={"x": x},
        )
        np.testing.assert_allclose(result, np.maximum(x, 0.0))
        assert evaluator.stats.divergent_branches >= 1

    def test_uniform_counted_loop(self):
        x = np.ones(4, dtype=np.float32)
        result, _ = run_single_output(
            "kernel void f(float x<>, out float o<>) {"
            " o = 0.0; for (int i = 0; i < 10; i = i + 1) { o += x; } }",
            n=4, stream_inputs={"x": x},
        )
        np.testing.assert_allclose(result, 10.0)

    def test_data_dependent_loop_bound(self):
        x = np.array([1.0, 3.0, 5.0, 0.0], dtype=np.float32)
        result, _ = run_single_output(
            "kernel void f(float x<>, out float o<>) {"
            " o = 0.0; for (float i = 0.0; i < x; i = i + 1.0) { o += 1.0; } }",
            n=4, stream_inputs={"x": x},
        )
        np.testing.assert_allclose(result, x)

    def test_break_statement(self):
        x = np.array([2.0, 4.0, 8.0, 100.0], dtype=np.float32)
        result, _ = run_single_output(
            "kernel void f(float x<>, out float o<>) {"
            " o = 0.0;"
            " for (int i = 0; i < 10; i = i + 1) {"
            "   if (o >= x) { break; }"
            "   o += 1.0; } }",
            n=4, stream_inputs={"x": x},
        )
        np.testing.assert_allclose(result, np.minimum(x, 10.0))

    def test_continue_statement(self):
        x = np.ones(4, dtype=np.float32)
        result, _ = run_single_output(
            "kernel void f(float x<>, out float o<>) {"
            " o = 0.0;"
            " for (int i = 0; i < 6; i = i + 1) {"
            "   if (float(i) % 2.0 == 1.0) { continue; }"
            "   o += x; } }",
            n=4, stream_inputs={"x": x},
        )
        np.testing.assert_allclose(result, 3.0)

    def test_early_return_freezes_lane(self):
        x = np.array([-1.0, 2.0, -3.0, 4.0], dtype=np.float32)
        result, _ = run_single_output(
            "kernel void f(float x<>, out float o<>) {"
            " o = 99.0;"
            " if (x < 0.0) { o = -99.0; return; }"
            " o = x; }",
            n=4, stream_inputs={"x": x},
        )
        np.testing.assert_allclose(result, np.where(x < 0, -99.0, x))

    def test_nested_loops(self):
        x = np.ones(3, dtype=np.float32)
        result, _ = run_single_output(
            "kernel void f(float x<>, out float o<>) {"
            " o = 0.0;"
            " for (int i = 0; i < 3; i = i + 1) {"
            "   for (int j = 0; j < 4; j = j + 1) { o += x; } } }",
            n=3, stream_inputs={"x": x},
        )
        np.testing.assert_allclose(result, 12.0)

    def test_while_loop_execution(self):
        x = np.array([3.0, 1.0, 6.0], dtype=np.float32)
        result, _ = run_single_output(
            "kernel void f(float x<>, out float o<>) {"
            " float i = 0.0; o = 0.0;"
            " while (i < x) { o += 2.0; i += 1.0; } }",
            n=3, stream_inputs={"x": x},
        )
        np.testing.assert_allclose(result, 2.0 * x)

    def test_runaway_loop_guard(self):
        evaluator = make_evaluator(
            "kernel void f(float x<>, out float o<>) {"
            " o = 0.0; while (x > -1.0) { o += 1.0; } }",
            max_steps=100,
        )
        with pytest.raises(RuntimeBrookError):
            evaluator.run(4, stream_inputs={"x": np.ones(4, dtype=np.float32)})


class TestHelpersAndGathers:
    def test_helper_function_call(self):
        x = np.arange(4, dtype=np.float32)
        result, _ = run_single_output(
            "float cube(float v) { return v * v * v; }\n"
            "kernel void f(float x<>, out float o<>) { o = cube(x) + 1.0; }",
            n=4, stream_inputs={"x": x},
        )
        np.testing.assert_allclose(result, x ** 3 + 1.0)

    def test_helper_with_branch(self):
        x = np.array([-2.0, 3.0], dtype=np.float32)
        result, _ = run_single_output(
            "float relu(float v) { if (v < 0.0) { return 0.0; } return v; }\n"
            "kernel void f(float x<>, out float o<>) { o = relu(x); }",
            n=2, stream_inputs={"x": x},
        )
        np.testing.assert_allclose(result, np.maximum(x, 0.0))

    def test_gather_1d(self):
        lut = np.arange(10, dtype=np.float32) * 10
        idx = np.array([0.0, 3.0, 9.0, 5.0], dtype=np.float32)
        result, evaluator = run_single_output(
            "kernel void f(float i<>, float lut[], out float o<>) { o = lut[i]; }",
            n=4, stream_inputs={"i": idx},
            gathers={"lut": NumpyGatherSource(lut)},
        )
        np.testing.assert_allclose(result, lut[idx.astype(int)])
        assert evaluator.stats.gather_fetches == 4

    def test_gather_2d_chained(self):
        table = np.arange(12, dtype=np.float32).reshape(3, 4)
        rows = np.array([0.0, 1.0, 2.0], dtype=np.float32)
        result, _ = run_single_output(
            "kernel void f(float r<>, float t[][], out float o<>) {"
            " o = t[r][2.0]; }",
            n=3, stream_inputs={"r": rows},
            gathers={"t": NumpyGatherSource(table)},
        )
        np.testing.assert_allclose(result, table[:, 2])

    def test_gather_out_of_bounds_raises_on_cpu_source(self):
        lut = np.arange(4, dtype=np.float32)
        with pytest.raises(StreamError):
            run_single_output(
                "kernel void f(float i<>, float lut[], out float o<>) {"
                " o = lut[i + 10.0]; }",
                n=4,
                stream_inputs={"i": np.arange(4, dtype=np.float32)},
                gathers={"lut": NumpyGatherSource(lut)},
            )

    def test_gather_out_of_bounds_clamps_on_texture_source(self):
        lut = np.arange(4, dtype=np.float32)
        result, _ = run_single_output(
            "kernel void f(float i<>, float lut[], out float o<>) {"
            " o = lut[i + 10.0]; }",
            n=4,
            stream_inputs={"i": np.arange(4, dtype=np.float32)},
            gathers={"lut": ClampingGatherSource(lut)},
        )
        np.testing.assert_allclose(result, 3.0)

    def test_indexof_values(self):
        index = np.stack([np.arange(6, dtype=np.float32) % 3,
                          np.arange(6, dtype=np.float32) // 3], axis=1)
        result, _ = run_single_output(
            "kernel void f(float x<>, out float o<>) {"
            " float2 p = indexof(x); o = p.y * 10.0 + p.x; }",
            n=6, stream_inputs={"x": np.zeros(6, dtype=np.float32)},
            index=index,
        )
        np.testing.assert_allclose(result, index[:, 1] * 10 + index[:, 0])


class TestReductionsAndErrors:
    def test_reduce_kernel_combines_accumulator(self):
        unit = parse("reduce void total(float a<>, reduce float r) { r += a; }")
        evaluator = KernelEvaluator(unit.kernels[0])
        outputs = evaluator.run(
            4,
            stream_inputs={"a": np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)},
            reduce_inputs={"r": np.array([10.0, 20.0, 30.0, 40.0], dtype=np.float32)},
        )
        np.testing.assert_allclose(outputs["r"], [11.0, 22.0, 33.0, 44.0])

    def test_missing_stream_argument(self):
        evaluator = make_evaluator(
            "kernel void f(float x<>, out float o<>) { o = x; }"
        )
        with pytest.raises(KernelLaunchError):
            evaluator.run(4)

    def test_missing_scalar_argument(self):
        evaluator = make_evaluator(
            "kernel void f(float x<>, float k, out float o<>) { o = x * k; }"
        )
        with pytest.raises(KernelLaunchError):
            evaluator.run(2, stream_inputs={"x": np.zeros(2, dtype=np.float32)})

    def test_missing_gather_argument(self):
        evaluator = make_evaluator(
            "kernel void f(float x<>, float lut[], out float o<>) { o = lut[x]; }"
        )
        with pytest.raises(KernelLaunchError):
            evaluator.run(2, stream_inputs={"x": np.zeros(2, dtype=np.float32)})

    def test_statistics_counters(self):
        x = np.ones(16, dtype=np.float32)
        _, evaluator = run_single_output(
            "kernel void f(float x<>, out float o<>) {"
            " o = 0.0; for (int i = 0; i < 4; i = i + 1) { o += x * 2.0; } }",
            n=16, stream_inputs={"x": x},
        )
        stats = evaluator.stats
        assert stats.elements == 16
        assert stats.simt_loop_steps == 4
        assert stats.flops > 16 * 4
        assert stats.stream_reads == 16
        assert stats.stream_writes == 16
