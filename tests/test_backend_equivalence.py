"""Cross-backend equivalence and property-based end-to-end tests.

Brook's portability promise is that the same kernel computes the same
result on every backend ("the same Brook kernel to be executed in the
same way independently of the target device", section 5.2).  These tests
check that promise end to end - CPU vs simulated OpenGL ES 2 vs simulated
CAL - including on shapes that force texture padding, and use hypothesis
to drive the data.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import BrookRuntime

PIPELINE = """
float weight(float x) {
    return 0.5 + 0.5 * cos(x);
}

kernel void transform(float a<>, float b<>, float gain, out float o<>) {
    float acc = 0.0;
    for (int i = 0; i < 3; i = i + 1) {
        acc = acc + weight(a * float(i)) * b;
    }
    o = (acc > 1.0) ? acc * gain : acc - gain;
}
"""

GATHER_KERNEL = """
kernel void smear(float a<>, float lut[][], float width, float height,
                  out float o<>) {
    float2 p = indexof(a);
    float x1 = min(p.x + 1.0, width - 1.0);
    float y1 = min(p.y + 1.0, height - 1.0);
    o = a + lut[p.y][x1] + lut[y1][p.x];
}
"""

REDUCE_KERNEL = "reduce void total(float v<>, reduce float acc) { acc += v; }"


def run_on(backend, source, kernel, streams, scalars, out_shape):
    runtime = BrookRuntime(backend=backend)
    module = runtime.compile(source)
    handles = [runtime.stream_from(data) for data in streams]
    out = runtime.stream(out_shape)
    module.kernel(kernel)(*handles, *scalars, out)
    return out.read()


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("shape", [(8, 8), (5, 9), (3, 17), (16,)])
    def test_transform_kernel_matches_across_backends(self, shape, rng):
        a = rng.uniform(-2, 2, shape).astype(np.float32)
        b = rng.uniform(-2, 2, shape).astype(np.float32)
        results = {
            backend: run_on(backend, PIPELINE, "transform", [a, b], [1.5], shape)
            for backend in ("cpu", "gles2", "cal")
        }
        np.testing.assert_allclose(results["gles2"], results["cpu"],
                                   rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(results["cal"], results["cpu"],
                                   rtol=1e-6, atol=1e-7)

    @pytest.mark.parametrize("shape", [(6, 6), (7, 13)])
    def test_gather_kernel_matches_across_backends(self, shape, rng):
        a = rng.uniform(0, 1, shape).astype(np.float32)
        lut = rng.uniform(0, 1, shape).astype(np.float32)
        expected = None
        for backend in ("cpu", "gles2", "cal"):
            runtime = BrookRuntime(backend=backend)
            module = runtime.compile(GATHER_KERNEL)
            sa = runtime.stream_from(a)
            slut = runtime.stream_from(lut)
            out = runtime.stream(shape)
            module.smear(sa, slut, float(shape[-1]), float(shape[0]), out)
            result = out.read()
            if expected is None:
                expected = result
            else:
                np.testing.assert_allclose(result, expected, rtol=1e-6, atol=1e-6)

    def test_npot_shape_regression(self, rng):
        """Regression test: non-power-of-two streams must sample correctly
        through padded textures (paper section 5.3 bookkeeping)."""
        shape = (12, 12)
        a = rng.uniform(-1, 1, shape).astype(np.float32)
        b = rng.uniform(-1, 1, shape).astype(np.float32)
        gles2 = run_on("gles2", PIPELINE, "transform", [a, b], [0.5], shape)
        cpu = run_on("cpu", PIPELINE, "transform", [a, b], [0.5], shape)
        np.testing.assert_allclose(gles2, cpu, rtol=1e-5, atol=1e-6)


class TestPropertyBased:
    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=12),
           st.floats(min_value=-4.0, max_value=4.0, allow_nan=False),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_saxpy_matches_numpy_on_gles2(self, rows, cols, alpha, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(-100, 100, (rows, cols)).astype(np.float32)
        y = rng.uniform(-100, 100, (rows, cols)).astype(np.float32)
        runtime = BrookRuntime(backend="gles2")
        module = runtime.compile(
            "kernel void saxpy(float a, float x<>, float y<>, out float r<>) {"
            " r = a * x + y; }"
        )
        sx, sy = runtime.stream_from(x), runtime.stream_from(y)
        out = runtime.stream((rows, cols))
        module.saxpy(alpha, sx, sy, out)
        expected = np.float32(alpha) * x + y
        np.testing.assert_allclose(out.read(), expected, rtol=1e-6, atol=1e-5)

    @given(st.integers(min_value=1, max_value=14),
           st.integers(min_value=1, max_value=14),
           st.integers(min_value=0, max_value=2 ** 31 - 1),
           st.sampled_from(["cpu", "gles2", "cal"]))
    @settings(max_examples=20, deadline=None)
    def test_reduction_equals_numpy_sum(self, rows, cols, seed, backend):
        rng = np.random.default_rng(seed)
        data = rng.uniform(-10, 10, (rows, cols)).astype(np.float32)
        runtime = BrookRuntime(backend=backend)
        module = runtime.compile(REDUCE_KERNEL)
        stream = runtime.stream_from(data)
        result = module.total(stream)
        assert result == pytest.approx(float(data.astype(np.float64).sum()),
                                       rel=1e-3, abs=1e-3)

    @given(st.integers(min_value=2, max_value=40),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_gles2_storage_roundtrip_is_lossless(self, count, seed):
        rng = np.random.default_rng(seed)
        data = (rng.standard_normal(count) * 10.0 ** rng.integers(-10, 10)
                ).astype(np.float32)
        runtime = BrookRuntime(backend="gles2")
        stream = runtime.stream_from(data)
        np.testing.assert_array_equal(stream.read(), data)
