"""Differential planner-soundness suite.

Whatever configuration the auto-planner picks, executing it must be
*bit-identical* to running the same pipeline serially, unfused, on a
single CPU device - the same correctness bar fusion, tiling and
sharding each held individually.  This suite sweeps seeded randomized
pipelines drawn from the apps suite (the ADAS image-filter stages,
the prefix-sum ping-pong scan, SpMV) across the CPU and simulated
OpenGL ES 2 backends, including fused+sharded+tiled compositions on
multi-device groups of tiny-texture GPUs, and compares the planned
execution's outputs word-for-word against the serial CPU baseline.
"""

import numpy as np
import pytest

from repro.backends.sharded import ShardedBackend
from repro.core.analysis.planner import build_launchables
from repro.gles2.device import GPUDeviceProfile
from repro.gles2.limits import GLES2Limits
from repro.runtime import BrookRuntime
from repro.service.bench import ADAS_SERVICE_SOURCE, STAGES

PREFIX_SUM_SOURCE = """
kernel void scan_step(float current<>, float previous[][], float offset,
                      float width, out float result<>) {
    float2 idx = indexof(current);
    float linear = idx.y * width + idx.x;
    float source = max(linear - offset, 0.0);
    float sy = floor(source / width);
    float sx = source - sy * width;
    float partial = previous[sy][sx];
    if (linear - offset >= 0.0) {
        result = current + partial;
    } else {
        result = current;
    }
}
"""

SPMV_SOURCE = """
kernel void spmv_gather(float columns<>, float vector[], out float gathered<>) {
    gathered = vector[columns];
}

kernel void spmv_multiply(float values<>, float gathered<>, out float product<>) {
    product = values * gathered;
}

kernel void spmv_accumulate(float products[][], float nnz, out float row_sum<>) {
    float2 idx = indexof(row_sum);
    float row = idx.x;
    float total = 0.0;
    for (int j = 0; j < nnz; j = j + 1) {
        total = total + products[row][j];
    }
    row_sum = total;
}
"""

SPMV_NNZ = 8


def tiny_gles2_backend(max_texture_size=64):
    profile = GPUDeviceProfile(
        name=f"tiny-{max_texture_size}",
        limits=GLES2Limits(name=f"tiny-{max_texture_size}",
                           max_texture_size=max_texture_size),
        effective_gflops=1.0,
        transfer_gib_per_s=1.0,
        pass_overhead_us=100.0,
        texture_fetch_ns=2.0,
        fill_rate_mpixels=100.0,
    )
    from repro.backends.gles2_backend import GLES2Backend
    return GLES2Backend(profile)


def assert_bitwise(mine, reference):
    np.testing.assert_array_equal(
        np.asarray(mine, dtype=np.float32).view(np.uint32),
        np.asarray(reference, dtype=np.float32).view(np.uint32))


# --------------------------------------------------------------------------- #
# Pipeline builders: (runtime, size, seed) -> (plans, {name: out_stream})
# --------------------------------------------------------------------------- #
def build_adas_chain(rt, size, seed):
    """The 3x3 filter plus a seeded random sub-chain of the post stages."""
    rng = np.random.default_rng(seed)
    module = rt.compile(ADAS_SERVICE_SOURCE)
    frame = rng.uniform(0.0, 255.0, (size, size)).astype(np.float32)
    image = rt.stream_from(frame, name="image")
    fsize = float(size)
    weights = [float(w) for w in
               rng.uniform(-0.2, 0.4, 9).astype(np.float32)]
    stage_count = int(rng.integers(2, len(STAGES) - 1))
    current = image
    plans = []
    stage_args = {
        "normalize_px": lambda: (float(np.float32(rng.uniform(0.001, 0.01))),),
        "tone_map": lambda: (float(np.float32(rng.uniform(0.5, 3.0))),),
        "contrast": lambda: (float(np.float32(rng.uniform(0.0, 1.0))),),
        "vignette": lambda: (fsize, fsize,
                             float(np.float32(rng.uniform(0.1, 1.0)))),
        "gamma_px": lambda: (float(np.float32(rng.uniform(1.0, 2.4))),),
        "highlight": lambda: (float(np.float32(rng.uniform(0.2, 0.8))),
                              float(np.float32(rng.uniform(0.1, 0.9)))),
        "quantize_px": lambda: (float(np.float32(rng.uniform(16.0, 255.0))),),
    }
    filtered = rt.stream((size, size), name="s0")
    plans.append(module.kernel("filter3x3").bind(
        image, fsize, fsize, *weights, filtered))
    current = filtered
    for index, stage in enumerate(STAGES[1:1 + stage_count]):
        nxt = rt.stream((size, size), name=f"s{index + 1}")
        plans.append(module.kernel(stage).bind(
            current, *stage_args[stage](), nxt))
        current = nxt
    return plans, {"out": current}


def build_prefix_sum(rt, size, seed):
    """Hillis-Steele ping-pong scan: every step gathers its own input."""
    rng = np.random.default_rng(seed)
    module = rt.compile(PREFIX_SUM_SOURCE)
    values = rng.integers(0, 8, (size, size)).astype(np.float32)
    current = rt.stream_from(values, name="scan_a")
    scratch = rt.stream((size, size), name="scan_b")
    total = size * size
    passes = max(1, int(np.ceil(np.log2(total))))
    plans = []
    offset = 1
    for _ in range(passes):
        plans.append(module.kernel("scan_step").bind(
            current, current, float(offset), float(size), scratch))
        current, scratch = scratch, current
        offset *= 2
    return plans, {"scan": current}


def build_spmv(rt, size, seed):
    """Gather -> multiply (fusable) -> bounded-loop accumulate."""
    rng = np.random.default_rng(seed)
    module = rt.compile(
        SPMV_SOURCE,
        param_bounds={"spmv_accumulate": {"nnz": SPMV_NNZ}})
    values = rng.integers(-4, 4, (size, SPMV_NNZ)).astype(np.float32)
    columns = rng.integers(0, size, (size, SPMV_NNZ)).astype(np.float32)
    vector = rng.integers(-4, 4, size).astype(np.float32)
    values_s = rt.stream_from(values, name="spmv_values")
    columns_s = rt.stream_from(columns, name="spmv_columns")
    vector_s = rt.stream_from(vector, name="spmv_vector")
    gathered = rt.stream((size, SPMV_NNZ), name="spmv_gathered")
    products = rt.stream((size, SPMV_NNZ), name="spmv_products")
    row_sums = rt.stream((size,), name="spmv_row_sums")
    plans = [
        module.kernel("spmv_gather").bind(columns_s, vector_s, gathered),
        module.kernel("spmv_multiply").bind(values_s, gathered, products),
        module.kernel("spmv_accumulate").bind(
            products, float(SPMV_NNZ), row_sums),
    ]
    return plans, {"row_sum": row_sums}


PIPELINES = {
    "adas": build_adas_chain,
    "prefix_sum": build_prefix_sum,
    "spmv": build_spmv,
}


# --------------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------------- #
def run_serial_cpu(build, size, seed):
    """The trusted reference: serial, unfused, single CPU device."""
    with BrookRuntime(backend="cpu") as rt:
        plans, outs = build(rt, size, seed)
        for plan in plans:
            plan.launch()
        return {name: stream.read() for name, stream in outs.items()}


def run_planned(rt, build, size, seed):
    """Plan the pipeline, materialise the chosen config, execute it."""
    plans, outs = build(rt, size, seed)
    decision = rt.autoplan(plans, max_batch=4)
    launchables = build_launchables(rt, plans, decision.chosen.config)
    for launchable in launchables:
        launchable.launch()
    return ({name: stream.read() for name, stream in outs.items()},
            decision)


# --------------------------------------------------------------------------- #
# The sweep
# --------------------------------------------------------------------------- #
class TestPlannedExecutionBitwise:
    @pytest.mark.parametrize("pipeline", sorted(PIPELINES))
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_cpu_planned_matches_serial(self, pipeline, seed):
        build = PIPELINES[pipeline]
        reference = run_serial_cpu(build, 16, seed)
        with BrookRuntime(backend="cpu") as rt:
            outputs, decision = run_planned(rt, build, 16, seed)
        assert decision.chosen.modelled_s <= decision.baseline.modelled_s
        for name in reference:
            assert_bitwise(outputs[name], reference[name])

    @pytest.mark.parametrize("pipeline", sorted(PIPELINES))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_gles2_planned_matches_serial_cpu(self, pipeline, seed):
        build = PIPELINES[pipeline]
        reference = run_serial_cpu(build, 16, seed)
        with BrookRuntime(backend="gles2", device="videocore-iv") as rt:
            outputs, _ = run_planned(rt, build, 16, seed)
        for name in reference:
            assert_bitwise(outputs[name], reference[name])

    @pytest.mark.parametrize("pipeline", sorted(PIPELINES))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_sharded_planned_matches_serial_cpu(self, pipeline, seed):
        build = PIPELINES[pipeline]
        reference = run_serial_cpu(build, 16, seed)
        with BrookRuntime(backend="cpu", devices=2) as rt:
            outputs, decision = run_planned(rt, build, 16, seed)
        assert decision.executable_devices == 2
        assert decision.chosen.config.devices == 2
        for name in reference:
            assert_bitwise(outputs[name], reference[name])

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fused_sharded_tiled_composition(self, seed):
        # Two tiny-texture GPUs force tiling (16x16 frames on 8x8
        # textures) under a 2-device shard: the planner's chosen config
        # composes fusion + sharding + tiling and must stay bitwise.
        reference = run_serial_cpu(build_adas_chain, 16, seed)
        backend = ShardedBackend([tiny_gles2_backend(8) for _ in range(2)])
        with BrookRuntime(backend=backend) as rt:
            outputs, decision = run_planned(rt, build_adas_chain, 16, seed)
        assert decision.chosen.config.devices == 2
        assert_bitwise(outputs["out"], reference["out"])

    @pytest.mark.parametrize("seed", [5, 6])
    def test_tiled_single_device_composition(self, seed):
        reference = run_serial_cpu(build_adas_chain, 16, seed)
        with BrookRuntime(backend=tiny_gles2_backend(8)) as rt:
            outputs, _ = run_planned(rt, build_adas_chain, 16, seed)
        assert_bitwise(outputs["out"], reference["out"])
