"""Unit tests for brookflow: the static whole-pipeline dataflow analysis.

Covers storage resolution (leaf storages, aliasing through shards,
tiles and NumPy views), dependency-DAG construction (RAW/WAW/WAR
edges, halo and tile metadata, in-place gather snapshot nodes) and
every BF-2xx / BL-112 verification rule of
:func:`repro.core.analysis.dataflow.analyze_pipeline`.
"""

import json

import numpy as np
import pytest

from repro.core.analysis.dataflow import (
    analyze_pipeline,
    build_dataflow_graph,
    leaf_storages,
    storage_units,
    streams_alias,
)
from repro.core.analysis.lint.sarif import sarif_json
from repro.runtime import BrookRuntime

PIPELINE_SOURCE = """
kernel void scale(float x<>, float k, out float y<>) {
    y = x * k;
}

kernel void add(float a<>, float b<>, out float o<>) {
    o = a + b;
}

kernel void lookup(float src<>, float table[], out float o<>) {
    float2 position = indexof(o);
    o = src + table[position.x];
}

reduce void total(float value<>, reduce float accumulator) {
    accumulator += value;
}
"""

STENCIL_SOURCE = """
kernel void stencil(float src[][], float h, out float dst<>) {
    float2 p = indexof(dst);
    float y0 = max(p.y - 1.0, 0.0);
    float y2 = min(p.y + 1.0, h - 1.0);
    dst = (src[y0][p.x] + src[p.y][p.x] + src[y2][p.x]) / 4.0;
}
"""


@pytest.fixture
def rt():
    runtime = BrookRuntime(backend="cpu")
    yield runtime
    runtime.close()


@pytest.fixture
def mod(rt):
    return rt.compile(PIPELINE_SOURCE)


def _rules(report):
    """Per-rule finding counts of a LintReport."""
    from collections import Counter
    return Counter(diag.rule for diag in report.diagnostics)


def _stream(rt, value=1.0, shape=(4, 4), name=""):
    stream = rt.stream(shape, name=name)
    stream.write(np.full(shape, value, dtype=np.float32))
    return stream


# --------------------------------------------------------------------- #
# Storage resolution and aliasing
# --------------------------------------------------------------------- #
class TestStorageResolution:
    def test_plain_stream_has_one_leaf(self, rt):
        stream = _stream(rt)
        assert len(leaf_storages(stream)) == 1
        assert storage_units(stream) == (id(stream.storage),)

    def test_distinct_streams_do_not_alias(self, rt):
        assert not streams_alias(_stream(rt), _stream(rt))

    def test_shared_storage_aliases(self, rt):
        a, b = _stream(rt), _stream(rt)
        b.storage = a.storage
        assert streams_alias(a, b)

    def test_numpy_view_aliases_despite_distinct_storages(self, rt):
        a, b = _stream(rt), _stream(rt)
        b.storage.data = a.storage.data[:]
        assert storage_units(a) != storage_units(b)
        assert streams_alias(a, b)

    def test_sharded_stream_expands_to_per_device_leaves(self):
        runtime = BrookRuntime(backend="gles2", devices=2)
        try:
            stream = runtime.stream((8, 8))
            leaves = leaf_storages(stream)
            assert len(leaves) == len(stream.storage.shards)
            band = runtime.stream((4, 8))
            band.storage = stream.storage.shards[0]
            assert streams_alias(band, stream)
        finally:
            runtime.close()


# --------------------------------------------------------------------- #
# DAG construction
# --------------------------------------------------------------------- #
class TestGraphConstruction:
    def test_raw_edge_between_producer_and_consumer(self, rt, mod):
        x, t, z = _stream(rt), _stream(rt), _stream(rt)
        p1 = mod.scale.bind(x, 2.0, t)
        p2 = mod.add.bind(t, x, z)
        graph = build_dataflow_graph([p1, p2])
        kinds = {(e.src, e.dst, e.kind) for e in graph.edges}
        assert (0, 1, "RAW") in kinds
        assert graph.dependencies_of(1) == {0}
        assert graph.race_free

    def test_waw_and_war_edges(self, rt, mod):
        x, y = _stream(rt), _stream(rt)
        out = _stream(rt)
        graph = build_dataflow_graph([
            mod.scale.bind(x, 2.0, out),
            mod.scale.bind(y, 3.0, out),     # WAW on out
            mod.scale.bind(out, 4.0, x),     # RAW on out, WAR on x
        ])
        kinds = {(e.src, e.dst, e.kind) for e in graph.edges}
        assert (0, 1, "WAW") in kinds
        assert (1, 2, "RAW") in kinds
        assert (0, 2, "WAR") in kinds

    def test_reduction_node(self, rt, mod):
        x = _stream(rt)
        plan = mod.total.bind(x)
        graph = build_dataflow_graph([plan])
        (node,) = graph.nodes
        assert node.kind == "reduction"
        assert "<reduce-input>" in node.reads

    def test_command_queue_pending_launches_are_analyzed(self, rt, mod):
        x, t, z = _stream(rt), _stream(rt), _stream(rt)
        queue = rt.queue()
        queue.submit(mod.scale.bind(x, 2.0, t))
        queue.submit(mod.add.bind(t, x, z))
        graph = build_dataflow_graph(queue)
        assert len(graph.nodes) == 2
        assert any(e.kind == "RAW" for e in graph.edges)
        queue.flush()

    def test_fused_pipeline_segments_are_analyzed(self, rt, mod):
        x, t, z = _stream(rt), _stream(rt), _stream(rt)
        pipeline = rt.fuse([mod.scale.bind(x, 2.0, t),
                            mod.scale.bind(t, 3.0, z)])
        graph = build_dataflow_graph(pipeline)
        assert graph.nodes
        assert all(node.fused_context for node in graph.nodes)

    def test_unmodellable_launchable_is_skipped(self, rt, mod):
        x, t = _stream(rt), _stream(rt)
        graph = build_dataflow_graph([mod.scale.bind(x, 2.0, t), object()])
        assert len(graph.nodes) == 1
        assert len(graph.skipped) == 1

    def test_halo_read_metadata(self):
        runtime = BrookRuntime(backend="cpu")
        try:
            module = runtime.compile(STENCIL_SOURCE)
            src = runtime.stream((4, 8))
            src.write(np.ones((4, 8), dtype=np.float32))
            dst = runtime.stream((4, 8))
            plan = module.stencil.bind(src, 4.0, dst)
            graph = build_dataflow_graph([plan])
            (node,) = graph.nodes
            assert node.halo_reads == {"src": (1, 0)}
        finally:
            runtime.close()

    def test_to_dict_is_json_serializable(self, rt, mod):
        x, t = _stream(rt), _stream(rt)
        graph = build_dataflow_graph([mod.scale.bind(x, 2.0, t)])
        payload = json.loads(json.dumps(graph.to_dict()))
        assert payload["race_free"] is True
        assert payload["nodes"][0]["kernel"] == "scale"


# --------------------------------------------------------------------- #
# Verification rules
# --------------------------------------------------------------------- #
class TestVerificationRules:
    def test_clean_pipeline_has_no_error_findings(self, rt, mod):
        x, t, z = _stream(rt), _stream(rt), _stream(rt)
        report = analyze_pipeline([mod.scale.bind(x, 2.0, t),
                                   mod.add.bind(t, x, z)])
        assert not report.has_errors

    def test_bf200_skipped_launchable(self, rt, mod):
        x, t = _stream(rt), _stream(rt)
        report = analyze_pipeline([mod.scale.bind(x, 2.0, t), object()])
        assert _rules(report)["BF-200"] == 1

    def test_bf201_numpy_view_aliasing_is_tracker_blind(self, rt, mod):
        x = _stream(rt)
        y1, y2 = rt.stream((4, 4)), rt.stream((4, 4))
        y2.storage.data = y1.storage.data[:]
        report = analyze_pipeline([mod.scale.bind(x, 2.0, y1),
                                   mod.scale.bind(x, 3.0, y2)])
        assert _rules(report)["BF-201"] == 1
        assert report.has_errors

    def test_bf201_absent_when_tracker_keys_the_conflict(self, rt, mod):
        x, out = _stream(rt), rt.stream((4, 4))
        report = analyze_pipeline([mod.scale.bind(x, 2.0, out),
                                   mod.scale.bind(x, 3.0, out)])
        assert "BF-201" not in _rules(report)

    def test_bf202_use_after_release(self, rt, mod):
        x, t = _stream(rt), _stream(rt)
        plan = mod.scale.bind(x, 2.0, t)
        x.release()
        report = analyze_pipeline([plan])
        assert _rules(report)["BF-202"] >= 1

    def test_bf203_read_before_pipeline_write(self, rt, mod):
        x, t, z = _stream(rt), rt.stream((4, 4)), rt.stream((4, 4))
        report = analyze_pipeline([
            mod.add.bind(t, x, z),           # reads t before it is written
            mod.scale.bind(x, 2.0, t),
        ])
        assert _rules(report)["BF-203"] == 1

    def test_bf204_never_written_input(self, rt, mod):
        t, z = rt.stream((4, 4)), rt.stream((4, 4))
        report = analyze_pipeline([mod.scale.bind(t, 2.0, z)])
        assert _rules(report)["BF-204"] == 1

    def test_host_write_suppresses_bf203_bf204(self, rt, mod):
        x, z = _stream(rt), rt.stream((4, 4))
        report = analyze_pipeline([mod.scale.bind(x, 2.0, z)])
        assert "BF-203" not in _rules(report)
        assert "BF-204" not in _rules(report)

    def test_bf205_dead_write(self, rt, mod):
        x, out = _stream(rt), rt.stream((4, 4))
        report = analyze_pipeline([mod.scale.bind(x, 2.0, out),
                                   mod.scale.bind(x, 3.0, out)])
        assert _rules(report)["BF-205"] == 1

    def test_bf205_quiet_when_read_intervenes(self, rt, mod):
        x, out, z = _stream(rt), rt.stream((4, 4)), rt.stream((4, 4))
        report = analyze_pipeline([
            mod.scale.bind(x, 2.0, out),
            mod.add.bind(out, x, z),
            mod.scale.bind(x, 3.0, out),
        ])
        assert "BF-205" not in _rules(report)

    def test_bf206_fusable_intermediate(self, rt, mod):
        x, t, z = _stream(rt), rt.stream((4, 4)), rt.stream((4, 4))
        report = analyze_pipeline([mod.scale.bind(x, 2.0, t),
                                   mod.scale.bind(t, 3.0, z)])
        assert _rules(report)["BF-206"] == 1

    def test_bf206_quiet_inside_fused_pipeline(self, rt, mod):
        x, t, z = _stream(rt), rt.stream((4, 4)), rt.stream((4, 4))
        pipeline = rt.fuse([mod.scale.bind(x, 2.0, t),
                            mod.scale.bind(t, 3.0, z)])
        report = analyze_pipeline(pipeline)
        assert "BF-206" not in _rules(report)

    def test_bl112_inplace_gather_on_plain_storage(self, rt, mod):
        x = _stream(rt)
        out = _stream(rt)
        # The gathered table ('out') aliases the launch's own output.
        report = analyze_pipeline([mod.lookup.bind(x, out, out)])
        assert _rules(report)["BL-112"] == 1

    def test_bl112_quiet_on_sharded_storage(self, mod):
        runtime = BrookRuntime(backend="gles2", devices=2)
        try:
            module = runtime.compile(PIPELINE_SOURCE)
            x = runtime.stream((8, 8))
            x.write(np.ones((8, 8), dtype=np.float32))
            out = runtime.stream((8, 8))
            out.write(np.ones((8, 8), dtype=np.float32))
            report = analyze_pipeline([module.lookup.bind(x, out, out)])
            assert "BL-112" not in _rules(report)
        finally:
            runtime.close()

    def test_findings_serialize_to_sarif(self, rt, mod):
        x = _stream(rt)
        y1, y2 = rt.stream((4, 4)), rt.stream((4, 4))
        y2.storage.data = y1.storage.data[:]
        report = analyze_pipeline([mod.scale.bind(x, 2.0, y1),
                                   mod.scale.bind(x, 3.0, y2)],
                                  source_file="pipe.br")
        sarif = json.loads(sarif_json(report))
        rule_ids = {result["ruleId"]
                    for result in sarif["runs"][0]["results"]}
        assert "BF-201" in rule_ids
