"""Unit and property-based tests for the float<->RGBA8 numerics (section 5.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.numerics import (
    MIN_NORMAL,
    RELATIVE_PRECISION,
    decode_float_rgba8,
    encode_float_rgba8,
    quantize_roundtrip,
)


class TestEncodeDecodeBasics:
    def test_zero_round_trips_to_zero(self):
        assert quantize_roundtrip(np.float32(0.0)) == 0.0

    def test_simple_values_exact(self):
        values = np.array([1.0, -1.0, 0.5, 2.0, 1234.5678, -3.25e-5, 7.0e20],
                          dtype=np.float32)
        np.testing.assert_array_equal(quantize_roundtrip(values), values)

    def test_integers_up_to_2_24_exact(self):
        values = np.array([1, 2, 3, 1000, 65535, 16777215], dtype=np.float32)
        np.testing.assert_array_equal(quantize_roundtrip(values), values)

    def test_denormals_flush_to_zero(self):
        tiny = np.array([1e-40, -1e-39], dtype=np.float32)
        np.testing.assert_array_equal(quantize_roundtrip(tiny), np.zeros(2))

    def test_min_normal_survives(self):
        value = np.float32(MIN_NORMAL)
        assert quantize_roundtrip(value) == value

    def test_encode_shape(self):
        values = np.zeros((3, 5), dtype=np.float32)
        rgba = encode_float_rgba8(values)
        assert rgba.shape == (3, 5, 4)
        assert rgba.dtype == np.uint8

    def test_decode_shape_validation(self):
        with pytest.raises(ValueError):
            decode_float_rgba8(np.zeros((4, 3), dtype=np.uint8))

    def test_decode_preserves_leading_shape(self):
        values = np.arange(12, dtype=np.float32).reshape(3, 4) + 1.0
        decoded = decode_float_rgba8(encode_float_rgba8(values))
        assert decoded.shape == (3, 4)

    def test_sign_stored_in_first_channel(self):
        positive = encode_float_rgba8(np.float32(1.5))
        negative = encode_float_rgba8(np.float32(-1.5))
        assert positive[0] < 128
        assert negative[0] >= 128

    def test_relative_precision_constant_reasonable(self):
        # The packing is bit exact, so the documented bound is one ulp.
        assert RELATIVE_PRECISION <= 2.0 ** -20


class TestProperties:
    @given(st.floats(min_value=-1.0e38, max_value=1.0e38,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=300, deadline=None)
    def test_roundtrip_is_exact_or_flushes_denormals(self, value):
        original = np.float32(value)
        result = quantize_roundtrip(original)
        if abs(float(original)) < MIN_NORMAL:
            assert result == 0.0
        else:
            assert result == original

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_idempotent_on_arrays(self, values):
        array = np.asarray(values, dtype=np.float32)
        once = quantize_roundtrip(array)
        twice = quantize_roundtrip(once)
        np.testing.assert_array_equal(once, twice)

    @given(st.floats(min_value=1e-30, max_value=1e30,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=200, deadline=None)
    def test_ordering_preserved(self, value):
        base = np.float32(value)
        larger = np.float32(base * 2.0)
        decoded = quantize_roundtrip(np.array([base, larger], dtype=np.float32))
        assert decoded[0] < decoded[1]

    @given(st.floats(min_value=-1e30, max_value=1e30,
                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=200, deadline=None)
    def test_negation_symmetry(self, value):
        array = np.array([value, -value], dtype=np.float32)
        decoded = quantize_roundtrip(array)
        assert decoded[0] == -decoded[1]


class TestGLSLPreludeConsistency:
    """The GLSL ES prelude must implement the same packing; the arithmetic
    reconstruction there is checked by mirroring its formula here."""

    @staticmethod
    def _glsl_style_decode(rgba):
        r, g, b, a = (float(rgba[..., i]) for i in range(4))
        sign_bit = np.floor(r / 128.0)
        e_hi = r - sign_bit * 128.0
        e_lo = np.floor(g / 128.0)
        biased = e_hi * 2.0 + e_lo
        if biased == 0.0:
            return 0.0
        m_hi = g - e_lo * 128.0
        mant_bits = m_hi * 65536.0 + b * 256.0 + a
        mant = 1.0 + mant_bits / 8388608.0
        value = mant * 2.0 ** (biased - 127.0)
        return -value if sign_bit > 0.5 else value

    @pytest.mark.parametrize("value", [1.0, -1.0, 0.37, 123456.78, -9.6e-12, 2.5e20])
    def test_arithmetic_reconstruction_matches(self, value):
        rgba = encode_float_rgba8(np.float32(value))
        reconstructed = self._glsl_style_decode(rgba.astype(np.float64))
        assert reconstructed == pytest.approx(float(np.float32(value)), rel=1e-6)
