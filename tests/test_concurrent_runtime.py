"""Concurrency tests: shared runtimes, the async executor and the races
fixed alongside it (thread-local queues, compile-cache locking, exact
statistics under contention, release/finalizer storage accounting).

The multi-thread stress tests always compare against a serial reference
execution of the same work: concurrency must never change what a
pipeline computes (bit-identical outputs) nor lose statistics records
(exact totals).
"""

import threading
import time

import numpy as np
import pytest

from repro.backends.gles2_backend import GLES2Backend
from repro.errors import KernelLaunchError, RuntimeBrookError, StreamError
from repro.gles2.device import GPUDeviceProfile
from repro.gles2.limits import GLES2Limits
from repro.runtime import AsyncExecutor, BrookRuntime, LaunchFuture
from repro.runtime.profiling import KernelLaunchRecord, RunStatistics

SRC = """
kernel void scale(float x<>, float k, out float y<>) { y = x * k; }
kernel void add(float a<>, float b<>, out float c<>) { c = a + b; }
kernel void offset(float x<>, float d, out float y<>) { y = x + d; }
reduce void total(float v<>, reduce float acc) { acc += v; }
"""


def tiny_gles2_runtime(max_texture_size: int = 16) -> BrookRuntime:
    """A GL ES 2 runtime whose device tiles at a toy texture limit."""
    profile = GPUDeviceProfile(
        name=f"tiny-{max_texture_size}",
        limits=GLES2Limits(name=f"tiny-{max_texture_size}",
                           max_texture_size=max_texture_size),
        effective_gflops=1.0,
        transfer_gib_per_s=1.0,
        pass_overhead_us=100.0,
        texture_fetch_ns=2.0,
        fill_rate_mpixels=100.0,
    )
    return BrookRuntime(backend=GLES2Backend(profile))


def run_threads(count, target):
    """Run ``target(index)`` on ``count`` threads; re-raise any failure."""
    errors = []

    def wrapped(index):
        try:
            target(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,))
               for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


# --------------------------------------------------------------------------- #
# Satellite: thread-local command queues
# --------------------------------------------------------------------------- #
class TestThreadLocalQueues:
    def test_queue_does_not_capture_other_threads(self, cpu_runtime):
        """A queue opened in one thread must not defer another thread's
        launches (the other thread sees its results immediately)."""
        module = cpu_runtime.compile(SRC)
        x = cpu_runtime.stream_from(np.arange(8.0))
        y = cpu_runtime.stream((8,))
        queue_open = threading.Event()
        release_queue = threading.Event()
        observed = {}

        def queue_holder():
            with cpu_runtime.queue() as q:
                queue_open.set()
                release_queue.wait(5.0)
                observed["deferred"] = len(q)

        def direct_launcher():
            queue_open.wait(5.0)
            result = module.scale(x, 3.0, y)
            # Not enqueued: the launch ran immediately in this thread.
            observed["immediate_result"] = result
            observed["value"] = y.read()
            release_queue.set()

        run_threads(2, lambda i: (queue_holder if i == 0 else direct_launcher)())
        assert observed["deferred"] == 0
        assert observed["immediate_result"] is None
        np.testing.assert_array_equal(observed["value"], np.arange(8.0) * 3.0)

    def test_nested_queues_stay_per_thread(self, cpu_runtime):
        module = cpu_runtime.compile(SRC)
        x = cpu_runtime.stream_from(np.arange(4.0))

        def worker(index):
            out = cpu_runtime.stream((4,))
            with cpu_runtime.queue() as q:
                queued = module.scale(x, float(index + 1), out)
                assert len(q) == 1
                assert not queued.done
            np.testing.assert_array_equal(out.read(),
                                          np.arange(4.0) * (index + 1))

        run_threads(4, worker)


# --------------------------------------------------------------------------- #
# Satellite: compile-cache locking
# --------------------------------------------------------------------------- #
class TestCompileCacheConcurrency:
    def test_concurrent_compiles_with_eviction(self):
        """Hammer a tiny LRU from many threads: no lost updates, no
        corruption, counters add up."""
        with BrookRuntime(backend="cpu", compile_cache_size=4) as rt:
            sources = [
                f"kernel void k{i}(float x<>, out float y<>) "
                f"{{ y = x * {float(i + 1)}; }}"
                for i in range(10)
            ]
            per_thread = 30

            def worker(index):
                rng = np.random.default_rng(index)
                for _ in range(per_thread):
                    source = sources[int(rng.integers(len(sources)))]
                    module = rt.compile(source)
                    assert len(module.kernel_names) == 1

            run_threads(8, worker)
            info = rt.compile_cache_info()
            assert info["hits"] + info["misses"] == 8 * per_thread
            assert info["entries"] <= 4

    def test_cached_program_shared_across_threads(self, cpu_runtime):
        modules = {}

        def worker(index):
            modules[index] = cpu_runtime.compile(SRC)

        # Warm the cache serially, then fetch concurrently.
        warm = cpu_runtime.compile(SRC)
        run_threads(4, worker)
        for module in modules.values():
            assert module.program is warm.program


# --------------------------------------------------------------------------- #
# Satellite: thread-safe statistics
# --------------------------------------------------------------------------- #
class TestStatisticsConcurrency:
    def test_exact_totals_under_contention(self):
        stats = RunStatistics()
        threads, per_thread = 8, 200

        def worker(index):
            for i in range(per_thread):
                record = KernelLaunchRecord(kernel=f"k{index}", elements=1,
                                            flops=3, texture_fetches=2)
                if i % 3 == 0:
                    stats.record_launches([record, record])
                else:
                    stats.record_launch(record)

        run_threads(threads, worker)
        expected = sum(2 if i % 3 == 0 else 1
                       for i in range(per_thread)) * threads
        assert len(stats.launches) == expected
        assert stats.total_flops == expected * 3

    def test_summary_consistent_under_reset(self):
        """Every summary snapshot must be internally consistent: flops
        are always exactly 3x the pass count, however the recording and
        clearing interleave."""
        stats = RunStatistics()
        stop = threading.Event()

        def recorder():
            while not stop.is_set():
                stats.record_launch(KernelLaunchRecord(
                    kernel="k", elements=1, flops=3, texture_fetches=0))

        def resetter():
            while not stop.is_set():
                stats.clear()

        threads = [threading.Thread(target=recorder) for _ in range(2)]
        threads += [threading.Thread(target=resetter)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(300):
                summary = stats.summary()
                assert summary["flops"] == summary["passes"] * 3
        finally:
            stop.set()
            for thread in threads:
                thread.join()


# --------------------------------------------------------------------------- #
# Satellite: release vs. finalizer storage accounting
# --------------------------------------------------------------------------- #
class TestReleaseRaces:
    @pytest.mark.parametrize("backend", ["cpu", "gles2", "cal"])
    def test_concurrent_release_frees_exactly_once(self, backend):
        with BrookRuntime(backend=backend) as rt:
            streams = [rt.stream((16, 16)) for _ in range(24)]
            assert rt.device_memory_in_use() > 0
            barrier = threading.Barrier(6)

            def worker(index):
                barrier.wait(5.0)
                # Every thread releases every stream: 6-way races on each.
                for stream in streams:
                    stream.release()
                assert rt.device_memory_in_use() >= 0

            run_threads(6, worker)
            assert rt.device_memory_in_use() == 0
            assert all(stream.released for stream in streams)

    def test_concurrent_create_and_release(self):
        with BrookRuntime(backend="gles2") as rt:
            def worker(index):
                for _ in range(20):
                    stream = rt.stream((8, 8))
                    stream.fill(float(index))
                    stream.release()
                    assert rt.device_memory_in_use() >= 0

            run_threads(6, worker)
            assert rt.device_memory_in_use() == 0


# --------------------------------------------------------------------------- #
# The async executor
# --------------------------------------------------------------------------- #
class TestAsyncExecutor:
    def test_independent_launches_complete(self, cpu_runtime):
        module = cpu_runtime.compile(SRC)
        x = cpu_runtime.stream_from(np.arange(32.0))
        outs = [cpu_runtime.stream((32,)) for _ in range(8)]
        with cpu_runtime.executor(workers=4) as ex:
            futures = [ex.submit(module.scale.bind(x, float(i + 1), out))
                       for i, out in enumerate(outs)]
            for future in futures:
                assert future.result(timeout=10.0) is None
        for i, out in enumerate(outs):
            np.testing.assert_array_equal(out.read(), np.arange(32.0) * (i + 1))

    def test_conflicting_launches_serialize_in_submission_order(
            self, cpu_runtime):
        """A RAW/WAW chain through one stream must execute in submission
        order; the final value proves the order was respected."""
        module = cpu_runtime.compile(SRC)
        x = cpu_runtime.stream_from(np.full((16,), 1.0))
        y = cpu_runtime.stream((16,))
        with cpu_runtime.executor(workers=4) as ex:
            ex.submit(module.scale.bind(x, 2.0, y))      # y = 2
            ex.submit(module.offset.bind(y, 1.0, y))     # y = 3 (in place)
            ex.submit(module.scale.bind(y, 10.0, y))     # y = 30
            future = ex.submit(module.total.bind(y))
            assert future.result(timeout=10.0) == pytest.approx(16 * 30.0)

    def test_reader_blocks_later_writer(self, cpu_runtime):
        """WAR hazard: a writer submitted after readers must not clobber
        the stream before the readers consumed it."""
        module = cpu_runtime.compile(SRC)
        x = cpu_runtime.stream_from(np.arange(64.0))
        reads = [cpu_runtime.stream((64,)) for _ in range(4)]
        with cpu_runtime.executor(workers=4) as ex:
            for out in reads:
                ex.submit(module.scale.bind(x, 1.0, out))
            ex.submit(module.scale.bind(reads[0], 0.0, x))  # overwrites x
            ex.wait_all(timeout=10.0)
        for out in reads:
            np.testing.assert_array_equal(out.read(), np.arange(64.0))
        np.testing.assert_array_equal(x.read(), np.zeros(64))

    def test_matches_serial_execution_bitwise(self, cpu_runtime):
        """A randomly generated dependency-heavy workload produces the
        same bits and the same statistics totals as serial execution."""
        module = cpu_runtime.compile(SRC)
        rng = np.random.default_rng(7)
        data = rng.uniform(-4.0, 4.0, (64,)).astype(np.float32)

        def build(rt, mod):
            streams = [rt.stream_from(data) for _ in range(3)]
            streams += [rt.stream((64,)) for _ in range(5)]
            plans = []
            state = np.random.default_rng(21)
            for _ in range(40):
                op = state.integers(3)
                if op == 0:
                    a, out = state.integers(len(streams), size=2)
                    plans.append(mod.scale.bind(
                        streams[a], float(state.integers(1, 4)), streams[out]))
                elif op == 1:
                    a, b, out = state.integers(len(streams), size=3)
                    plans.append(mod.add.bind(streams[a], streams[b],
                                              streams[out]))
                else:
                    a, out = state.integers(len(streams), size=2)
                    plans.append(mod.offset.bind(
                        streams[a], float(state.integers(-2, 3)), streams[out]))
            return streams, plans

        streams, plans = build(cpu_runtime, module)
        with cpu_runtime.executor(workers=4) as ex:
            for plan in plans:
                ex.submit(plan)
            assert ex.wait_all(timeout=30.0)
        concurrent_outputs = [stream.read() for stream in streams]
        concurrent_summary = cpu_runtime.statistics.summary()

        with BrookRuntime(backend="cpu") as serial_rt:
            serial_module = serial_rt.compile(SRC)
            serial_streams, serial_plans = build(serial_rt, serial_module)
            for plan in serial_plans:
                plan.launch()
            serial_outputs = [stream.read() for stream in serial_streams]
            serial_summary = serial_rt.statistics.summary()

        for mine, reference in zip(concurrent_outputs, serial_outputs):
            assert np.array_equal(
                np.asarray(mine, dtype=np.float32).view(np.uint32),
                np.asarray(reference, dtype=np.float32).view(np.uint32))
        for key in ("passes", "flops", "elements", "texture_fetches"):
            assert concurrent_summary[key] == serial_summary[key]

    def test_fused_pipeline_submission(self, cpu_runtime):
        module = cpu_runtime.compile(SRC)
        x = cpu_runtime.stream_from(np.arange(16.0))
        tmp = cpu_runtime.stream((16,))
        out = cpu_runtime.stream((16,))
        pipeline = cpu_runtime.fuse([
            module.scale.bind(x, 2.0, tmp),
            module.offset.bind(tmp, 1.0, out),
        ])
        with cpu_runtime.executor(workers=2) as ex:
            ex.submit(pipeline).result(timeout=10.0)
        np.testing.assert_array_equal(out.read(), np.arange(16.0) * 2.0 + 1.0)

    def test_error_propagates_through_future(self, cpu_runtime):
        module = cpu_runtime.compile(SRC)
        x = cpu_runtime.stream_from(np.arange(8.0))
        y = cpu_runtime.stream((8,))
        plan = module.scale.bind(x, 2.0, y)
        y.release()
        with cpu_runtime.executor(workers=2) as ex:
            future = ex.submit(plan)
            assert isinstance(future.exception(timeout=10.0), StreamError)
            with pytest.raises(StreamError):
                future.result()

    def test_submit_rejects_foreign_plan(self, cpu_runtime):
        with BrookRuntime(backend="cpu") as other:
            module = other.compile(SRC)
            x = other.stream_from(np.arange(4.0))
            y = other.stream((4,))
            plan = module.scale.bind(x, 2.0, y)
            with cpu_runtime.executor(workers=1) as ex:
                with pytest.raises(KernelLaunchError):
                    ex.submit(plan)

    def test_submit_after_shutdown_raises(self, cpu_runtime):
        module = cpu_runtime.compile(SRC)
        x = cpu_runtime.stream_from(np.arange(4.0))
        y = cpu_runtime.stream((4,))
        ex = cpu_runtime.executor(workers=1)
        ex.shutdown()
        with pytest.raises(RuntimeBrookError):
            ex.submit(module.scale.bind(x, 2.0, y))

    def test_shutdown_without_wait_fails_pending_futures(self, cpu_runtime):
        module = cpu_runtime.compile(SRC)
        x = cpu_runtime.stream_from(np.arange(4.0))
        y = cpu_runtime.stream((4,))
        ex = cpu_runtime.executor(workers=1)
        # Build a long chain so some launches are still pending when the
        # executor is torn down mid-flight.
        futures = [ex.submit(module.offset.bind(y, 1.0, y))
                   for _ in range(50)]
        futures.append(ex.submit(module.scale.bind(x, 2.0, y)))
        ex.shutdown(wait=False)
        for future in futures:
            future.wait(10.0)
        assert all(future.done() for future in futures)

    def test_wait_all_timeout(self, cpu_runtime):
        ex = cpu_runtime.executor(workers=1)
        assert ex.wait_all(timeout=0.1)
        ex.shutdown()


# --------------------------------------------------------------------------- #
# Whole-runtime stress: mixed compiles/launches/reads, incl. tiled streams
# --------------------------------------------------------------------------- #
class TestSharedRuntimeStress:
    def test_mixed_workload_matches_serial(self):
        """Several threads share one runtime: each compiles (hitting the
        compile cache), launches over its own streams and reads back.
        Results must be bit-identical to running the same work serially,
        and the statistics totals exact."""
        threads, iterations = 6, 8

        def workload(rt, index, iterations):
            module = rt.compile(SRC)
            base = np.arange(64.0, dtype=np.float32) + index
            x = rt.stream_from(base)
            tmp = rt.stream((64,))
            out = rt.stream((64,))
            results = []
            for i in range(iterations):
                module.scale(x, float(i + 1), tmp)
                module.offset(tmp, float(index), out)
                results.append(out.read())
            results.append(np.float32(module.total(x)))
            return results

        with BrookRuntime(backend="cpu") as rt:
            collected = {}

            def worker(index):
                collected[index] = workload(rt, index, iterations)

            run_threads(threads, worker)
            concurrent_summary = rt.statistics.summary()

        serial = {}
        with BrookRuntime(backend="cpu") as rt:
            for index in range(threads):
                serial[index] = workload(rt, index, iterations)
            serial_summary = rt.statistics.summary()

        for index in range(threads):
            for mine, reference in zip(collected[index], serial[index]):
                assert np.array_equal(
                    np.asarray(mine, dtype=np.float32).view(np.uint32),
                    np.asarray(reference, dtype=np.float32).view(np.uint32))
        for key in ("passes", "flops", "elements", "bytes_uploaded",
                    "bytes_downloaded"):
            assert concurrent_summary[key] == serial_summary[key]

    def test_tiled_streams_from_threads(self):
        """Launches over tiled streams (domain > device texture limit,
        PR 3) stay correct when issued from several threads sharing one
        gles2 runtime."""
        threads = 4
        shape = (40, 40)        # 3x3 tile grid at the toy 16x16 limit

        def workload(rt, index):
            module = rt.compile(SRC)
            data = ((np.arange(1600.0, dtype=np.float32) % 97) + index) \
                .reshape(shape)
            x = rt.stream_from(data)
            out = rt.stream(shape)
            module.scale(x, 2.0, out)
            value = out.read()
            total = np.float32(module.total(out))
            x.release()
            out.release()
            return value, total

        with tiny_gles2_runtime() as rt:
            collected = {}

            def worker(index):
                collected[index] = workload(rt, index)

            run_threads(threads, worker)
            assert rt.statistics.extra_tiles > 0

        with tiny_gles2_runtime() as rt:
            for index in range(threads):
                value, total = workload(rt, index)
                assert np.array_equal(
                    np.asarray(value, dtype=np.float32).view(np.uint32),
                    np.asarray(collected[index][0],
                               dtype=np.float32).view(np.uint32))
                assert total == collected[index][1]

    def test_executor_with_tiled_streams(self):
        """Hazard-tracked async execution over tiled storage: a chain
        through one tiled stream serializes and matches serial bits."""
        shape = (40, 40)
        data = (np.arange(1600.0, dtype=np.float32) % 41).reshape(shape)
        with tiny_gles2_runtime() as rt:
            module = rt.compile(SRC)
            x = rt.stream_from(data)
            mid = rt.stream(shape)
            out = rt.stream(shape)
            with rt.executor(workers=3) as ex:
                ex.submit(module.scale.bind(x, 3.0, mid))
                ex.submit(module.offset.bind(mid, 5.0, out))
                future = ex.submit(module.total.bind(out))
                concurrent_total = future.result(timeout=30.0)
            concurrent_out = out.read()
            assert rt.statistics.extra_tiles > 0

        with tiny_gles2_runtime() as rt:
            module = rt.compile(SRC)
            x = rt.stream_from(data)
            mid = rt.stream(shape)
            out = rt.stream(shape)
            module.scale(x, 3.0, mid)
            module.offset(mid, 5.0, out)
            serial_total = module.total(out)
            serial_out = out.read()

        assert np.array_equal(
            np.asarray(concurrent_out, dtype=np.float32).view(np.uint32),
            np.asarray(serial_out, dtype=np.float32).view(np.uint32))
        assert concurrent_total == serial_total


# --------------------------------------------------------------------------- #
# Satellite: executor shutdown with futures in flight
# --------------------------------------------------------------------------- #
class TestExecutorShutdownWhileBusy:
    """close()/shutdown() must drain or fail in-flight futures - never hang."""

    def _busy_plans(self, rt, count=24, size=20000):
        module = rt.compile(SRC)
        x = rt.stream_from(np.arange(float(size)))
        outs = [rt.stream((size,)) for _ in range(count)]
        return [module.scale.bind(x, float(i), out)
                for i, out in enumerate(outs)], outs

    def test_close_drains_in_flight_futures(self, cpu_runtime):
        plans, _ = self._busy_plans(cpu_runtime)
        executor = cpu_runtime.executor(workers=3)
        futures = executor.submit_all(plans)
        executor.close()          # called while launches are executing
        assert all(future.done() for future in futures)
        assert all(future.exception() is None for future in futures)
        with pytest.raises(RuntimeBrookError):
            executor.submit(plans[0])

    def test_shutdown_nowait_fails_unstarted_futures_fast(self, cpu_runtime):
        plans, _ = self._busy_plans(cpu_runtime, count=32)
        executor = cpu_runtime.executor(workers=2)
        futures = executor.submit_all(plans)
        executor.shutdown(wait=False)
        # Every future resolves: either it ran, or it carries a clear
        # RuntimeBrookError - nothing is left hanging forever.
        for future in futures:
            assert future.wait(timeout=30.0)
            exc = future.exception()
            assert exc is None or isinstance(exc, RuntimeBrookError)

    def test_concurrent_shutdown_calls_do_not_hang_or_strand(
            self, cpu_runtime):
        # Regression: a second shutdown() used to enqueue the worker
        # stop sentinels while the first one was still draining, which
        # could strand queued launches behind a sentinel and hang the
        # draining caller forever.
        plans, _ = self._busy_plans(cpu_runtime, count=24)
        executor = cpu_runtime.executor(workers=2)
        futures = executor.submit_all(plans)
        run_threads(4, lambda index: executor.shutdown(wait=True))
        assert all(future.done() for future in futures)
        assert all(future.exception() is None for future in futures)


# --------------------------------------------------------------------------- #
# Satellite: hazard tables key on leaf storages, not wrapper identity
# --------------------------------------------------------------------------- #
class _SlowPlan:
    """Plan-like wrapper that delays a real plan (forces submission-order
    races to be deterministic instead of timing-dependent)."""

    def __init__(self, plan, delay):
        self._plan = plan
        self._delay = delay
        self._bound_streams = plan._bound_streams

    def launch(self):
        time.sleep(self._delay)
        return self._plan.launch()


class TestHazardStorageKeying:
    """Regression: the executor's hazard tables keyed plain streams by
    *wrapper* identity, so two Stream handles over the same device
    storage (or a plain stream aliasing one band of a ShardedStorage)
    never collided and conflicting launches could legally overlap."""

    def test_two_wrappers_over_one_storage_collide(self, cpu_runtime):
        from repro.runtime.executor import _hazard_ids
        s1 = cpu_runtime.stream((8,))
        s2 = cpu_runtime.stream((8,))
        s2.storage = s1.storage       # second handle to the same storage
        assert set(_hazard_ids(s1)) == set(_hazard_ids(s2))

    def test_plain_stream_aliasing_a_shard_band_collides(self):
        from repro.runtime.executor import _hazard_ids
        with BrookRuntime(backend="cpu", devices=2) as rt:
            sharded = rt.stream((8, 4))
            band = rt.stream((4, 4))
            band.storage = sharded.storage.shards[0]
            keys = set(_hazard_ids(band))
            assert keys and keys <= set(_hazard_ids(sharded))

    def test_tiled_storage_keys_descend_to_tiles(self):
        from repro.runtime.executor import _hazard_ids
        with tiny_gles2_runtime(8) as rt:
            big = rt.stream((16, 16))       # tiles at the 8-px limit
            tiles = big.storage.tiles
            assert len(tiles) > 1
            assert set(_hazard_ids(big)) == {id(tile) for tile in tiles}
            one = rt.stream((4, 4))
            one.storage = tiles[0]
            keys = set(_hazard_ids(one))
            assert keys and keys <= set(_hazard_ids(big))

    def test_conflicting_launches_through_aliased_wrappers_serialize(
            self, cpu_runtime):
        """y1 and y2 are two handles to one storage: scale(x)->y1 then
        offset(y2)->y2 must run in submission order even though the
        wrappers differ.  The first launch is slowed so the buggy
        keying (no dependency between the two) deterministically runs
        the second launch first and computes 2.0 instead of 3.0."""
        module = cpu_runtime.compile(SRC)
        x = cpu_runtime.stream_from(np.full((32,), 1.0))
        y1 = cpu_runtime.stream((32,))
        y2 = cpu_runtime.stream((32,))
        y2.storage = y1.storage
        with cpu_runtime.executor(workers=2) as ex:
            ex.submit(_SlowPlan(module.scale.bind(x, 2.0, y1), 0.25))
            ex.submit(module.offset.bind(y2, 1.0, y2))
            assert ex.wait_all(timeout=10.0)
        np.testing.assert_array_equal(y1.read(), np.full((32,), 3.0))
