"""Tests for the Brook runtime: streams, kernel handles, reductions, backends."""

import numpy as np
import pytest

from repro.backends import CALBackend, CPUBackend, GLES2Backend, create_backend
from repro.errors import (
    BackendError,
    CertificationError,
    KernelLaunchError,
    StreamError,
)
from repro.runtime import BrookRuntime
from repro.runtime.reduction import multipass_reduce
from repro.core.parser import parse


SAXPY = "kernel void saxpy(float a, float x<>, float y<>, out float r<>) { r = a * x + y; }"


class TestBackendFactory:
    def test_create_by_name(self):
        assert isinstance(create_backend("cpu"), CPUBackend)
        assert isinstance(create_backend("gles2"), GLES2Backend)
        assert isinstance(create_backend("cal"), CALBackend)

    def test_aliases(self):
        assert isinstance(create_backend("host"), CPUBackend)
        assert isinstance(create_backend("opengl-es2"), GLES2Backend)
        assert isinstance(create_backend("brook+"), CALBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            create_backend("vulkan")

    def test_gles2_device_selection(self):
        backend = create_backend("gles2", "mali-400")
        assert backend.device.name == "mali-400"
        assert backend.target_limits().max_texture_size == 4096

    def test_target_limits_differ_per_backend(self):
        assert create_backend("cpu").target_limits().max_kernel_outputs > 1
        assert create_backend("gles2").target_limits().max_kernel_outputs == 1
        assert create_backend("cal").target_limits().supports_float_textures


class TestStreams:
    def test_stream_shape_and_read_back(self, any_runtime):
        stream = any_runtime.stream((4, 6), name="s")
        assert stream.dims == (4, 6)
        assert stream.element_count == 24
        np.testing.assert_array_equal(stream.read(), np.zeros((4, 6)))

    def test_stream_from_data(self, any_runtime):
        data = np.random.default_rng(0).uniform(-5, 5, (8, 8)).astype(np.float32)
        stream = any_runtime.stream_from(data)
        np.testing.assert_array_equal(stream.read(), data)

    def test_write_validates_shape(self, any_runtime):
        stream = any_runtime.stream((4, 4))
        with pytest.raises((StreamError, KernelLaunchError)):
            stream.write(np.zeros((2, 2), dtype=np.float32))

    def test_streams_are_statically_sized(self, any_runtime):
        stream = any_runtime.stream((4, 4))
        # There is deliberately no resize API on a stream handle.
        assert not hasattr(stream, "resize")

    def test_fill(self, any_runtime):
        stream = any_runtime.stream((3, 3))
        stream.fill(7.5)
        np.testing.assert_array_equal(stream.read(), np.full((3, 3), 7.5))

    def test_1d_and_3d_streams(self, any_runtime):
        one_d = any_runtime.stream_from(np.arange(10, dtype=np.float32))
        three_d = any_runtime.stream_from(
            np.arange(24, dtype=np.float32).reshape(2, 3, 4))
        np.testing.assert_array_equal(one_d.read(), np.arange(10))
        assert three_d.read().shape == (2, 3, 4)

    def test_gles2_rejects_vector_streams(self, gles2_runtime):
        with pytest.raises(BackendError):
            gles2_runtime.stream((4, 4), element_width=4)

    def test_cal_supports_vector_streams(self, cal_runtime):
        data = np.random.default_rng(0).uniform(size=(4, 4, 4)).astype(np.float32)
        stream = cal_runtime.stream_from(data, element_width=4)
        np.testing.assert_array_equal(stream.read(), data)

    def test_iterator_stream(self, cpu_runtime):
        iterator = cpu_runtime.iterator(8, 0.0, 8.0)
        np.testing.assert_allclose(iterator.read(), np.arange(8, dtype=np.float32))

    def test_transfer_statistics_recorded(self, gles2_runtime):
        stream = gles2_runtime.stream((8, 8))
        stream.write(np.ones((8, 8), dtype=np.float32))
        stream.read()
        stats = gles2_runtime.statistics
        assert stats.bytes_uploaded == 8 * 8 * 4
        assert stats.bytes_downloaded == 8 * 8 * 4

    def test_memory_usage_report(self, gles2_runtime):
        stream = gles2_runtime.stream((100, 100), name="padded")
        report = gles2_runtime.memory_usage_report()
        assert report.per_stream_bytes["padded"] == 128 * 128 * 4
        # Releasing the stream removes it from the report (live streams only).
        stream.release()
        assert "padded" not in gles2_runtime.memory_usage_report().per_stream_bytes

    def test_device_memory_in_use(self, gles2_runtime):
        stream = gles2_runtime.stream((64, 64))
        assert gles2_runtime.device_memory_in_use() >= 64 * 64 * 4
        stream.release()
        assert gles2_runtime.device_memory_in_use() == 0

    def test_gles2_quantization_visible_via_peek(self, gles2_runtime):
        values = np.array([[1.0, 1e-39], [2.5, -3.0]], dtype=np.float32)
        stream = gles2_runtime.stream_from(values)
        peeked = stream.peek()
        assert peeked[0, 1] == 0.0          # denormal flushed by RGBA8 storage
        assert peeked[0, 0] == 1.0


class TestKernelLaunches:
    def test_saxpy_on_every_backend(self, any_runtime):
        module = any_runtime.compile(SAXPY)
        x = np.random.default_rng(0).uniform(-1, 1, (8, 8)).astype(np.float32)
        y = np.random.default_rng(1).uniform(-1, 1, (8, 8)).astype(np.float32)
        sx, sy = any_runtime.stream_from(x), any_runtime.stream_from(y)
        out = any_runtime.stream((8, 8))
        module.saxpy(3.0, sx, sy, out)
        np.testing.assert_allclose(out.read(), 3.0 * x + y, rtol=1e-6)

    def test_kernel_accessible_by_attribute_and_name(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        assert module.saxpy is module.kernel("saxpy")
        assert module.kernel_names == ["saxpy"]
        with pytest.raises(KeyError):
            module.kernel("other")
        with pytest.raises(AttributeError):
            _ = module.other

    def test_keyword_arguments(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        y = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        module.saxpy(2.0, x, y=y, r=out)
        np.testing.assert_allclose(out.read(), 3.0)

    def test_missing_argument_rejected(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        with pytest.raises(KernelLaunchError):
            module.saxpy(2.0, x)

    def test_too_many_arguments_rejected(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        with pytest.raises(KernelLaunchError):
            module.saxpy(2.0, x, x, out, out)

    def test_stream_expected_but_number_given(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        with pytest.raises(KernelLaunchError):
            module.saxpy(2.0, 5.0, x, out)

    def test_number_expected_but_stream_given(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        with pytest.raises(KernelLaunchError):
            module.saxpy(x, x, x, out)

    def test_mismatched_output_shapes_rejected(self, cpu_runtime):
        source = (
            "kernel void two(float a<>, out float x<>, out float y<>) {"
            " x = a; y = a; }"
        )
        module = cpu_runtime.compile(source)
        a = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        x = cpu_runtime.stream((4, 4))
        y = cpu_runtime.stream((2, 2))
        with pytest.raises(KernelLaunchError):
            module.two(a, x, y)

    def test_non_compliant_source_rejected_by_default(self, gles2_runtime):
        with pytest.raises(CertificationError):
            gles2_runtime.compile(
                "kernel void f(float *p, out float o<>) { o = 1.0; }"
            )

    def test_non_strict_compilation_produces_report(self, cpu_runtime):
        module = cpu_runtime.compile(
            "kernel void f(float a<>, out float o<>) { o = a; goto x; }",
            strict=False,
        )
        assert not module.certification.is_compliant

    def test_split_kernel_runs_both_passes_on_gles2(self, gles2_runtime):
        source = (
            "kernel void two(float a<>, out float plus<>, out float minus<>) {"
            " plus = a + 1.0; minus = a - 1.0; }"
        )
        module = gles2_runtime.compile(source)
        a_host = np.arange(16, dtype=np.float32).reshape(4, 4)
        a = gles2_runtime.stream_from(a_host)
        plus, minus = gles2_runtime.stream((4, 4)), gles2_runtime.stream((4, 4))
        module.two(a, plus, minus)
        np.testing.assert_allclose(plus.read(), a_host + 1.0)
        np.testing.assert_allclose(minus.read(), a_host - 1.0)
        assert gles2_runtime.statistics.total_passes == 2

    def test_gather_and_indexof_kernel(self, any_runtime):
        source = (
            "kernel void gather(float a<>, float lut[], out float o<>) {"
            " float2 p = indexof(a); o = a + lut[p.x]; }"
        )
        module = any_runtime.compile(source)
        a_host = np.zeros((4, 8), dtype=np.float32)
        lut_host = np.arange(8, dtype=np.float32) * 10
        a = any_runtime.stream_from(a_host)
        lut = any_runtime.stream_from(lut_host)
        out = any_runtime.stream((4, 8))
        module.gather(a, lut, out)
        expected = np.tile(lut_host, (4, 1))
        np.testing.assert_allclose(out.read(), expected)

    def test_launch_statistics_accumulate(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((8, 8), dtype=np.float32))
        y = cpu_runtime.stream_from(np.ones((8, 8), dtype=np.float32))
        out = cpu_runtime.stream((8, 8))
        module.saxpy(1.0, x, y, out)
        module.saxpy(2.0, x, y, out)
        stats = cpu_runtime.statistics
        assert stats.total_passes == 2
        assert stats.total_elements == 128
        assert stats.total_flops > 0
        cpu_runtime.reset_statistics()
        assert cpu_runtime.statistics.total_passes == 0

    def test_per_kernel_aggregation(self, cpu_runtime):
        module = cpu_runtime.compile(SAXPY)
        x = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        y = cpu_runtime.stream_from(np.ones((4, 4), dtype=np.float32))
        out = cpu_runtime.stream((4, 4))
        module.saxpy(1.0, x, y, out)
        module.saxpy(1.0, x, y, out)
        aggregated = cpu_runtime.statistics.per_kernel()
        assert aggregated["saxpy"].passes == 2


class TestReductions:
    SUM = "reduce void total(float v<>, reduce float acc) { acc += v; }"
    MAXIMUM = "reduce void peak(float v<>, reduce float acc) { acc = max(acc, v); }"

    def test_sum_reduction_matches_numpy(self, any_runtime):
        module = any_runtime.compile(self.SUM)
        data = np.random.default_rng(3).uniform(0, 1, (16, 16)).astype(np.float32)
        stream = any_runtime.stream_from(data)
        result = module.total(stream)
        assert result == pytest.approx(float(data.sum()), rel=1e-4)

    def test_max_reduction(self, any_runtime):
        module = any_runtime.compile(self.MAXIMUM)
        data = np.random.default_rng(4).uniform(-10, 10, (8, 8)).astype(np.float32)
        stream = any_runtime.stream_from(data)
        assert module.peak(stream) == pytest.approx(float(data.max()), rel=1e-6)

    def test_reduction_of_single_element(self, cpu_runtime):
        module = cpu_runtime.compile(self.SUM)
        stream = cpu_runtime.stream_from(np.array([42.0], dtype=np.float32))
        assert module.total(stream) == pytest.approx(42.0)

    def test_reduction_writes_optional_output_stream(self, cpu_runtime):
        module = cpu_runtime.compile(self.SUM)
        data = np.ones((4, 4), dtype=np.float32)
        stream = cpu_runtime.stream_from(data)
        accumulator = cpu_runtime.stream((1,))
        module.total(stream, accumulator)
        assert accumulator.read()[0] == pytest.approx(16.0)

    def test_reduction_records_multipass_statistics(self, gles2_runtime):
        module = gles2_runtime.compile(self.SUM)
        stream = gles2_runtime.stream_from(np.ones((16, 16), dtype=np.float32))
        module.total(stream)
        record = gles2_runtime.statistics.launches[-1]
        assert record.reduction
        assert record.passes == 4    # 16x16 -> 8x8 -> 4x4 -> 2x2 -> 1x1

    def test_reduction_on_non_square_stream(self, cpu_runtime):
        module = cpu_runtime.compile(self.SUM)
        data = np.arange(24, dtype=np.float32).reshape(3, 8)
        stream = cpu_runtime.stream_from(data)
        assert module.total(stream) == pytest.approx(float(data.sum()))

    def test_multipass_reduce_engine_directly(self):
        kernel = parse(self.SUM).kernels[0]
        data = np.arange(35, dtype=np.float32).reshape(5, 7)
        result = multipass_reduce(kernel, {}, data)
        assert result.value == pytest.approx(float(data.sum()))
        assert result.passes == 3
        assert result.elements_processed > 0


class TestPartialReductions:
    SUM = "reduce void total(float v<>, reduce float acc) { acc += v; }"
    MAXIMUM = "reduce void peak(float v<>, reduce float acc) { acc = max(acc, v); }"

    def test_row_sums(self, any_runtime):
        module = any_runtime.compile(self.SUM)
        data = np.arange(64, dtype=np.float32).reshape(8, 8)
        stream = any_runtime.stream_from(data)
        rows = any_runtime.stream((8, 1))
        result = module.total(stream, rows)
        np.testing.assert_allclose(result.reshape(-1), data.sum(axis=1), rtol=1e-5)
        np.testing.assert_allclose(rows.read().reshape(-1), data.sum(axis=1),
                                   rtol=1e-5)

    def test_column_sums(self, any_runtime):
        module = any_runtime.compile(self.SUM)
        data = np.arange(32, dtype=np.float32).reshape(4, 8)
        stream = any_runtime.stream_from(data)
        cols = any_runtime.stream((1, 8))
        result = module.total(stream, cols)
        np.testing.assert_allclose(result.reshape(-1), data.sum(axis=0), rtol=1e-5)

    def test_block_maximum(self, any_runtime):
        module = any_runtime.compile(self.MAXIMUM)
        data = np.random.default_rng(5).uniform(-50, 50, (8, 8)).astype(np.float32)
        stream = any_runtime.stream_from(data)
        blocks = any_runtime.stream((2, 2))
        result = module.peak(stream, blocks)
        expected = data.reshape(2, 4, 2, 4).max(axis=(1, 3))
        np.testing.assert_allclose(result, expected, rtol=1e-6)

    def test_partial_reduction_records_statistics(self, gles2_runtime):
        module = gles2_runtime.compile(self.SUM)
        stream = gles2_runtime.stream_from(np.ones((16, 16), dtype=np.float32))
        target = gles2_runtime.stream((4, 4))
        module.total(stream, target)
        record = gles2_runtime.statistics.launches[-1]
        assert record.reduction
        assert record.passes >= 2
        np.testing.assert_allclose(target.read(), 16.0)

    def test_non_dividing_output_shape_rejected(self, cpu_runtime):
        module = cpu_runtime.compile(self.SUM)
        stream = cpu_runtime.stream_from(np.ones((8, 8), dtype=np.float32))
        target = cpu_runtime.stream((3, 3))
        with pytest.raises(KernelLaunchError):
            module.total(stream, target)

    def test_partial_reduce_engine_directly(self):
        from repro.runtime.reduction import partial_reduce
        kernel = parse(self.SUM).kernels[0]
        data = np.arange(24, dtype=np.float32).reshape(4, 6)
        result = partial_reduce(kernel, {}, data, (2, 3))
        expected = data.reshape(2, 2, 3, 2).sum(axis=(1, 3))
        np.testing.assert_allclose(result.values, expected)
        assert result.passes >= 1
        assert result.elements_processed == 24
