"""Unit tests for the Brook kernel-language lexer."""

import pytest

from repro.core.lexer import Lexer, Token, TokenKind, tokenize
from repro.errors import BrookSyntaxError


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        (token,) = tokenize("velocity")[:-1]
        assert token.kind is TokenKind.IDENT
        assert token.text == "velocity"

    def test_identifier_with_underscore_and_digits(self):
        assert texts("_tmp_2") == ["_tmp_2"]

    def test_keyword_kernel(self):
        (token,) = tokenize("kernel")[:-1]
        assert token.kind is TokenKind.KEYWORD

    def test_type_names_are_keywords(self):
        for name in ("float", "float2", "float3", "float4", "int", "void"):
            (token,) = tokenize(name)[:-1]
            assert token.kind is TokenKind.KEYWORD, name

    def test_banned_constructs_still_lex_as_keywords(self):
        for name in ("goto", "struct", "typedef", "switch"):
            (token,) = tokenize(name)[:-1]
            assert token.kind is TokenKind.KEYWORD, name

    def test_int_literal(self):
        (token,) = tokenize("42")[:-1]
        assert token.kind is TokenKind.INT_LITERAL
        assert token.text == "42"

    def test_hex_literal(self):
        (token,) = tokenize("0x1F")[:-1]
        assert token.kind is TokenKind.INT_LITERAL
        assert int(token.text, 0) == 31

    def test_float_literal(self):
        (token,) = tokenize("3.25")[:-1]
        assert token.kind is TokenKind.FLOAT_LITERAL

    def test_float_literal_with_exponent(self):
        (token,) = tokenize("1.5e-3")[:-1]
        assert token.kind is TokenKind.FLOAT_LITERAL
        assert float(token.text) == pytest.approx(1.5e-3)

    def test_float_literal_with_f_suffix(self):
        (token,) = tokenize("2.5f")[:-1]
        assert token.kind is TokenKind.FLOAT_LITERAL
        assert token.text == "2.5"

    def test_float_literal_leading_dot_digit(self):
        (token,) = tokenize("0.5")[:-1]
        assert token.kind is TokenKind.FLOAT_LITERAL

    def test_integer_then_member_access_not_a_float(self):
        # ``indexof(a).x`` style chains must not glue the dot to a number.
        tokens = texts("v.x")
        assert tokens == ["v", ".", "x"]

    def test_string_literal(self):
        (token,) = tokenize('"hello"')[:-1]
        assert token.kind is TokenKind.STRING
        assert token.text == "hello"


class TestPunctuation:
    def test_multi_character_operators_are_single_tokens(self):
        for op in ("==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/="):
            assert texts(f"a {op} b")[1] == op

    def test_increment_and_decrement(self):
        assert texts("i++")[1] == "++"
        assert texts("--i")[0] == "--"

    def test_stream_declarator_is_two_tokens(self):
        assert texts("a<>") == ["a", "<", ">"]

    def test_maximal_munch_prefers_longest(self):
        assert texts("a<=b") == ["a", "<=", "b"]

    def test_unknown_character_raises(self):
        with pytest.raises(BrookSyntaxError):
            tokenize("a @ b")


class TestCommentsAndWhitespace:
    def test_line_comment_is_skipped(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment_is_skipped(self):
        assert texts("a /* comment \n more */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(BrookSyntaxError):
            tokenize("a /* never closed")

    def test_preprocessor_line_is_skipped(self):
        assert texts("#include <x.h>\nfloat") == ["float"]

    def test_newlines_and_tabs_are_whitespace(self):
        assert texts("a\n\t b") == ["a", "b"]


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b", filename="test.br")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_filename_is_recorded(self):
        tokens = tokenize("a", filename="kernel.br")
        assert tokens[0].location.filename == "kernel.br"

    def test_token_helpers(self):
        token = tokenize("kernel")[0]
        assert token.is_keyword("kernel")
        assert not token.is_keyword("reduce")
        assert not token.is_punct("(")


class TestWholeKernel:
    def test_kernel_signature_token_stream(self):
        source = "kernel void f(float a<>, out float b<>) { b = a; }"
        token_texts = texts(source)
        assert token_texts[0] == "kernel"
        assert token_texts[1] == "void"
        assert "out" in token_texts
        assert token_texts.count("<") == 2
        assert token_texts[-1] == "}"

    def test_token_count_reasonable(self):
        source = "kernel void f(float a<>, out float b<>) { b = a * 2.0; }"
        assert len(tokenize(source)) > 15
