"""Unit tests for the Brook Auto certification checker (rules BA-001..BA-012)."""

import pytest

from repro.core.analysis.resources import TargetLimits
from repro.core.certification import RULES, Severity, check_program
from repro.core.parser import parse
from repro.core.reporting import (
    report_to_dict,
    report_to_json,
    report_to_markdown,
    report_to_text,
)
from repro.core.semantic import analyze
from repro.errors import CertificationError


def check(source, target=None, param_bounds=None, strict=False):
    return check_program(analyze(parse(source)), target=target,
                         param_bounds=param_bounds, strict=strict)


COMPLIANT = """
kernel void scale(float a<>, float factor, out float o<>) {
    float acc = 0.0;
    for (int i = 0; i < 4; i = i + 1) {
        acc = acc + a * factor;
    }
    o = acc * 0.25;
}
"""


class TestRuleCatalogue:
    def test_twelve_rules_defined(self):
        assert len(RULES) == 12
        assert set(RULES) == {f"BA-{i:03d}" for i in range(1, 13)}

    def test_every_rule_has_iso_reference(self):
        for rule in RULES.values():
            assert rule.iso_reference
            assert rule.severity is Severity.ERROR


class TestCompliantPrograms:
    def test_compliant_kernel_passes(self):
        report = check(COMPLIANT)
        assert report.is_compliant
        assert report.violations == []

    def test_rule_status_all_pass(self):
        status = check(COMPLIANT).rule_status()
        assert all(status.values())

    def test_sample_program_is_compliant(self, sample_source):
        assert check(sample_source).is_compliant

    def test_loop_metadata_recorded(self):
        report = check(COMPLIANT)
        cert = report.kernels["scale"]
        assert cert.max_loop_iterations == 4
        assert cert.max_stack_bytes is not None

    def test_strict_mode_passes_silently(self):
        check(COMPLIANT, strict=True)


class TestPointerRule:
    def test_pointer_parameter_flagged(self):
        report = check("kernel void f(float *p, out float o<>) { o = 1.0; }")
        assert report.violations_for_rule("BA-001")

    def test_pointer_local_flagged(self):
        report = check(
            "kernel void f(float a<>, out float o<>) { float *p; o = a; }"
        )
        assert report.violations_for_rule("BA-001")

    def test_dereference_in_helper_flagged(self):
        report = check(
            "float deref(float p) { return *p; }\n"
            "kernel void f(float a<>, out float o<>) { o = deref(a); }"
        )
        assert report.violations_for_rule("BA-001")


class TestDynamicMemoryRule:
    def test_malloc_flagged(self):
        report = check(
            "kernel void f(float a<>, out float o<>) {"
            " float p = malloc(4.0); o = a + p; }"
        )
        assert report.violations_for_rule("BA-002")

    def test_free_flagged(self):
        report = check(
            "kernel void f(float a<>, out float o<>) { free(a); o = a; }"
        )
        assert report.violations_for_rule("BA-002")


class TestRecursionRule:
    def test_direct_recursion_flagged(self):
        report = check(
            "float rec(float x) { return rec(x - 1.0); }\n"
            "kernel void f(float a<>, out float o<>) { o = rec(a); }"
        )
        assert report.violations_for_rule("BA-003")
        # Recursion also makes the stack unbounded.
        assert report.violations_for_rule("BA-011")

    def test_mutual_recursion_flagged(self):
        report = check(
            "float even(float x) { return odd(x - 1.0); }\n"
            "float odd(float x) { return even(x - 1.0); }\n"
            "kernel void f(float a<>, out float o<>) { o = even(a); }"
        )
        assert report.violations_for_rule("BA-003")

    def test_recursion_in_unreached_helper_not_flagged(self):
        report = check(
            "float rec(float x) { return rec(x); }\n"
            "kernel void f(float a<>, out float o<>) { o = a; }"
        )
        assert not report.violations_for_rule("BA-003")


class TestGotoRule:
    def test_goto_flagged(self):
        report = check(
            "kernel void f(float a<>, out float o<>) { o = a; goto done; }"
        )
        assert report.violations_for_rule("BA-004")


class TestLoopRule:
    def test_while_loop_flagged(self):
        report = check(
            "kernel void f(float a<>, out float o<>) {"
            " o = 0.0; float i = 0.0; while (i < a) { i += 1.0; } }"
        )
        assert report.violations_for_rule("BA-005")

    def test_do_while_flagged_as_loop_and_subset(self):
        report = check(
            "kernel void f(float a<>, out float o<>) {"
            " float i = 0.0; do { i += 1.0; } while (i < a); o = i; }"
        )
        assert report.violations_for_rule("BA-005")
        assert report.violations_for_rule("BA-010")

    def test_data_dependent_for_needs_declared_bound(self):
        source = (
            "kernel void f(float a<>, float n, out float o<>) {"
            " o = 0.0; for (int i = 0; i < n; i = i + 1) { o += a; } }"
        )
        assert check(source).violations_for_rule("BA-005")
        bounded = check(source, param_bounds={"f": {"n": 32}})
        assert not bounded.violations_for_rule("BA-005")
        assert bounded.kernels["f"].max_loop_iterations == 32


class TestStreamAndResourceRules:
    def test_scatter_output_flagged(self):
        report = check(
            "kernel void f(float a<>, out float o[]) { o[0] = a; }"
        )
        assert report.violations_for_rule("BA-006")

    def test_two_outputs_flagged_for_single_rt_target(self):
        report = check(
            "kernel void f(float a<>, out float o1<>, out float o2<>) {"
            " o1 = a; o2 = a; }",
            target=TargetLimits(max_kernel_outputs=1),
        )
        assert report.violations_for_rule("BA-007")

    def test_two_outputs_accepted_on_mrt_target(self):
        report = check(
            "kernel void f(float a<>, out float o1<>, out float o2<>) {"
            " o1 = a; o2 = a; }",
            target=TargetLimits(name="mrt", max_kernel_outputs=4),
        )
        assert not report.violations_for_rule("BA-007")

    def test_too_many_inputs_flagged(self):
        params = ", ".join(f"float s{i}<>" for i in range(6)) + ", out float o<>"
        body = "o = " + " + ".join(f"s{i}" for i in range(6)) + ";"
        report = check(
            f"kernel void f({params}) {{ {body} }}",
            target=TargetLimits(max_kernel_inputs=4),
        )
        assert report.violations_for_rule("BA-008")

    def test_instruction_budget_flagged(self):
        body = "o = a;" + " o = o * 1.0001 + 0.5;" * 200
        report = check(
            f"kernel void f(float a<>, out float o<>) {{ {body} }}",
            target=TargetLimits(max_instructions=64),
        )
        assert report.violations_for_rule("BA-009")

    def test_write_to_input_stream_flagged(self):
        report = check(
            "kernel void f(float a<>, out float o<>) { a = 1.0; o = a; }"
        )
        assert report.violations_for_rule("BA-012")


class TestReportAndStrictMode:
    def test_strict_mode_raises_with_violations(self):
        with pytest.raises(CertificationError) as excinfo:
            check("kernel void f(float *p, out float o<>) { o = 1.0; }",
                  strict=True)
        assert excinfo.value.violations

    def test_violation_str_includes_rule_and_location(self):
        report = check(
            "kernel void f(float a<>, out float o<>) { o = a; goto x; }"
        )
        text = str(report.violations_for_rule("BA-004")[0])
        assert "BA-004" in text and "f" in text

    def test_report_to_dict_structure(self):
        report = check(COMPLIANT)
        data = report_to_dict(report)
        assert data["compliant"] is True
        assert set(data["rules"]) == set(RULES)
        assert "scale" in data["kernels"]

    def test_report_to_json_is_valid(self):
        import json
        report = check(COMPLIANT)
        parsed = json.loads(report_to_json(report))
        assert parsed["compliant"] is True

    def test_report_to_text_mentions_verdict(self):
        assert "COMPLIANT" in report_to_text(check(COMPLIANT))
        non = check("kernel void f(float *p, out float o<>) { o = 1.0; }")
        assert "NON-COMPLIANT" in report_to_text(non)

    def test_report_to_markdown_has_rule_table(self):
        text = report_to_markdown(check(COMPLIANT))
        assert "| Rule |" in text
        assert "BA-001" in text

    def test_multi_kernel_report_isolates_violations(self):
        report = check(
            "kernel void good(float a<>, out float o<>) { o = a; }\n"
            "kernel void bad(float a<>, out float o<>) { o = a; goto x; }"
        )
        assert report.kernels["good"].is_compliant
        assert not report.kernels["bad"].is_compliant
        assert not report.is_compliant
