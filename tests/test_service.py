"""Tests for the multi-runtime serving layer (``repro.service``)."""

import threading

import numpy as np
import pytest

from repro.errors import RuntimeBrookError
from repro.service import (
    BrookService,
    KernelCall,
    ServiceRequest,
    ServiceResponse,
    call,
)
from repro.service.bench import build_adas_request, run_service_bench

SRC = """
kernel void scale(float x<>, float k, out float y<>) { y = x * k; }
kernel void offset(float x<>, float d, out float y<>) { y = x + d; }
reduce void total(float v<>, reduce float acc) { acc += v; }
"""


def make_request(data, k=2.0, d=1.0, name=""):
    return ServiceRequest(
        source=SRC,
        calls=(call("scale", "x", k, "tmp"), call("offset", "tmp", d, "out")),
        inputs={"x": data},
        outputs={"out": data.shape},
        scratch={"tmp": data.shape},
        name=name,
    )


# --------------------------------------------------------------------------- #
# Request model
# --------------------------------------------------------------------------- #
class TestServiceRequest:
    def test_call_normalizes_scalars(self):
        one_call = call("scale", "x", 2, "y")
        assert one_call.args == ("x", 2.0, "y")

    def test_call_rejects_bad_argument(self):
        with pytest.raises(RuntimeBrookError):
            call("scale", "x", object(), "y")

    def test_unknown_stream_name_rejected(self):
        with pytest.raises(RuntimeBrookError, match="neither an input"):
            ServiceRequest(source=SRC,
                           calls=(call("scale", "x", 1.0, "mystery"),),
                           inputs={"x": np.zeros(4)},
                           outputs={"out": (4,)})

    def test_overlapping_names_rejected(self):
        with pytest.raises(RuntimeBrookError, match="more than one"):
            ServiceRequest(source=SRC,
                           calls=(call("scale", "x", 1.0, "x"),),
                           inputs={"x": np.zeros(4)},
                           outputs={"x": (4,)})

    def test_empty_calls_rejected(self):
        with pytest.raises(RuntimeBrookError):
            ServiceRequest(source=SRC, calls=(), inputs={},
                           outputs={"out": (4,)})

    def test_signature_ignores_data_but_not_shape(self):
        a = make_request(np.zeros((8,), dtype=np.float32))
        b = make_request(np.ones((8,), dtype=np.float32))
        c = make_request(np.zeros((16,), dtype=np.float32))
        d = make_request(np.zeros((8,), dtype=np.float32), k=3.0)
        assert a.signature() == b.signature()
        assert a.signature() != c.signature()
        assert a.signature() != d.signature()


# --------------------------------------------------------------------------- #
# BrookService basics
# --------------------------------------------------------------------------- #
class TestBrookService:
    def test_process_roundtrip(self):
        data = np.arange(16.0, dtype=np.float32)
        with BrookService(backend="cpu", pool_size=2) as service:
            response = service.process(make_request(data, name="r0"))
        assert isinstance(response, ServiceResponse)
        assert response.name == "r0"
        np.testing.assert_allclose(response.outputs["out"], data * 2.0 + 1.0)
        assert response.latency_s >= 0.0

    def test_reduction_value_returned(self):
        data = np.arange(8.0, dtype=np.float32)
        request = ServiceRequest(
            source=SRC,
            calls=(call("scale", "x", 2.0, "y"), call("total", "y")),
            inputs={"x": data},
            outputs={"y": data.shape},
        )
        with BrookService(backend="cpu", pool_size=1) as service:
            response = service.process(request)
        assert response.value == pytest.approx(data.sum() * 2.0)

    @pytest.mark.parametrize("fuse", ["pipeline", "queue", "off"])
    def test_modes_bit_identical(self, fuse):
        rng = np.random.default_rng(3)
        frames = [rng.uniform(-5, 5, (12, 12)).astype(np.float32)
                  for _ in range(6)]
        reference = None
        for mode in ("off", fuse):
            with BrookService(backend="cpu", pool_size=2,
                              fuse=mode) as service:
                responses = service.map(
                    [make_request(frame, name=f"f{i}")
                     for i, frame in enumerate(frames)])
            outputs = [r.outputs["out"] for r in responses]
            if reference is None:
                reference = outputs
            else:
                for mine, ref in zip(outputs, reference):
                    assert np.array_equal(mine.view(np.uint32),
                                          ref.view(np.uint32))

    def test_plan_cache_reused_across_requests(self):
        data = np.arange(16.0, dtype=np.float32)
        with BrookService(backend="cpu", pool_size=1) as service:
            first = service.process(make_request(data))
            second = service.process(make_request(data + 5))
            report = service.service_report()
        assert not first.cached
        assert second.cached
        cache = report["workers"][0]["plan_cache"]
        assert cache["hits"] == 1 and cache["misses"] == 1
        np.testing.assert_allclose(second.outputs["out"], (data + 5) * 2 + 1)

    def test_plan_cache_counters_attributable_per_signature(self):
        # Aggregate hit/miss counters cannot tell which pipeline the
        # cache worked for; the per-signature breakdown must.
        data_a = np.arange(16.0, dtype=np.float32)
        data_b = np.arange(32.0, dtype=np.float32)
        with BrookService(backend="cpu", pool_size=1) as service:
            service.process(make_request(data_a, name="a0"))
            service.process(make_request(data_a + 1, name="a1"))
            service.process(make_request(data_b, name="b0"))
            report = service.service_report()
        cache = report["workers"][0]["plan_cache"]
        assert cache["hits"] == 1 and cache["misses"] == 2
        per_signature = cache["per_signature"]
        assert len(per_signature) == 2
        # Labels lead with the kernel chain and stay distinct even
        # though both signatures run the same kernels.
        for label in per_signature:
            assert label.startswith("scale+offset@")
        counters = sorted((c["hits"], c["misses"])
                          for c in per_signature.values())
        assert counters == [(0, 1), (1, 1)]

    def test_least_loaded_dispatch_spreads_requests(self):
        data = np.arange(8.0, dtype=np.float32)
        with BrookService(backend="cpu", pool_size=3) as service:
            responses = service.map([make_request(data + i, name=f"r{i}")
                                     for i in range(12)])
            report = service.service_report()
        assert {r.worker for r in responses} == {0, 1, 2}
        assert sum(row["requests"] for row in report["workers"]) == 12

    def test_compile_error_propagates(self):
        request = ServiceRequest(
            source="kernel void broken(float x<>, out float y<>) { y = ; }",
            calls=(call("broken", "x", "out"),),
            inputs={"x": np.zeros(4, dtype=np.float32)},
            outputs={"out": (4,)},
        )
        with BrookService(backend="cpu", pool_size=1) as service:
            future = service.submit(request)
            assert future.exception(timeout=10.0) is not None
            with pytest.raises(Exception):
                future.result()
            report = service.service_report()
        assert report["requests_failed"] == 1

    def test_failure_does_not_poison_worker(self):
        bad = ServiceRequest(
            source=SRC,
            calls=(call("scale", "x", 1.0, "out"),),
            inputs={"x": np.zeros((4,), dtype=np.float32)},
            outputs={"out": (8,)},       # mismatched domain
        )
        data = np.arange(4.0, dtype=np.float32)
        with BrookService(backend="cpu", pool_size=1) as service:
            with pytest.raises(Exception):
                service.process(bad)
            good = service.process(make_request(data))
        np.testing.assert_allclose(good.outputs["out"], data * 2 + 1)

    def test_tiny_plan_cache_eviction_within_one_batch(self):
        """Distinct signatures drained into one batch must all succeed
        even when resolving a later request evicts an earlier one's
        cache entry (the evicted streams stay alive until the batch is
        done)."""
        requests = [
            make_request(np.arange(float(4 + 4 * i), dtype=np.float32),
                         name=f"r{i}")
            for i in range(4)
        ]
        with BrookService(backend="cpu", pool_size=1, fuse="off",
                          plan_cache_size=1, max_batch=8) as service:
            # Submit everything before the single worker wakes up so the
            # batch drain sees all four signatures at once.
            futures = [service.submit(request) for request in requests]
            responses = [future.result(timeout=10.0) for future in futures]
        for request, response in zip(requests, responses):
            np.testing.assert_allclose(
                response.outputs["out"],
                request.inputs["x"] * 2.0 + 1.0)

    def test_submit_after_close_raises(self):
        service = BrookService(backend="cpu", pool_size=1)
        service.close()
        service.close()     # idempotent
        with pytest.raises(RuntimeBrookError):
            service.submit(make_request(np.zeros(4, dtype=np.float32)))

    def test_close_drains_pending_requests(self):
        data = np.arange(8.0, dtype=np.float32)
        service = BrookService(backend="cpu", pool_size=2)
        futures = [service.submit(make_request(data + i)) for i in range(16)]
        service.close()
        for future in futures:
            assert future.result(timeout=10.0) is not None

    def test_submit_racing_close_never_drops_requests(self):
        """Every submit that returns a future (instead of raising) must
        eventually complete it, even when close() runs concurrently."""
        data = np.arange(8.0, dtype=np.float32)
        for _ in range(10):
            service = BrookService(backend="cpu", pool_size=2)
            futures = []
            errors = []

            def submitter():
                try:
                    for i in range(20):
                        futures.append(service.submit(make_request(data + i)))
                except RuntimeBrookError:
                    pass        # closed mid-loop: expected
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            thread = threading.Thread(target=submitter)
            thread.start()
            service.close()
            thread.join()
            assert not errors
            for future in futures:
                assert future.result(timeout=10.0) is not None

    def test_concurrent_clients(self):
        """Many client threads share one service; every response is
        bit-identical to the single-runtime serial result."""
        rng = np.random.default_rng(11)
        frames = [rng.uniform(-3, 3, (10, 10)).astype(np.float32)
                  for _ in range(24)]
        expected = [frame * 2.0 + 1.0 for frame in frames]
        results = {}
        with BrookService(backend="cpu", pool_size=3) as service:
            def client(index):
                response = service.process(
                    make_request(frames[index], name=f"c{index}"))
                results[index] = response.outputs["out"]

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(len(frames))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            report = service.service_report()
        for index, frame_expected in enumerate(expected):
            assert np.array_equal(
                results[index].view(np.uint32),
                np.asarray(frame_expected, dtype=np.float32).view(np.uint32))
        assert report["requests_completed"] == len(frames)
        assert report["requests_per_s"] > 0

    def test_invalid_configuration(self):
        with pytest.raises(RuntimeBrookError):
            BrookService(pool_size=0)
        with pytest.raises(RuntimeBrookError):
            BrookService(fuse="bogus")
        with pytest.raises(RuntimeBrookError):
            BrookService(pool_size=1).submit(object())  # type: ignore[arg-type]

    def test_service_report_shape(self):
        data = np.arange(4.0, dtype=np.float32)
        with BrookService(backend="cpu", pool_size=2) as service:
            service.process(make_request(data))
            report = service.service_report()
        assert report["pool_size"] == 2
        assert report["mode"] == "pipeline"
        assert report["requests_completed"] == 1
        assert set(report["latency_ms"]) == {"mean", "p50", "p95", "max"}
        assert report["device_totals"]["passes"] >= 1
        assert len(report["workers"]) == 2
        service.reset_service_stats()


# --------------------------------------------------------------------------- #
# Serving on the GPU backends (including tiled streams)
# --------------------------------------------------------------------------- #
class TestServiceBackends:
    def test_gles2_service_matches_serial(self):
        rng = np.random.default_rng(5)
        frame = rng.uniform(0, 1, (16, 16)).astype(np.float32)
        request = make_request(frame)
        from repro.runtime import BrookRuntime
        with BrookRuntime(backend="gles2") as rt:
            module = rt.compile(SRC)
            x = rt.stream_from(frame)
            tmp = rt.stream(frame.shape)
            out = rt.stream(frame.shape)
            module.scale(x, 2.0, tmp)
            module.offset(tmp, 1.0, out)
            serial = out.read()
        with BrookService(backend="gles2", pool_size=2) as service:
            response = service.process(request)
        assert np.array_equal(response.outputs["out"].view(np.uint32),
                              np.asarray(serial, dtype=np.float32)
                              .view(np.uint32))

    def test_tiled_request_on_gles2_device_limit(self):
        """A request whose streams exceed the device texture limit runs
        through the tiled engine inside the service and still matches
        the CPU pipeline bit-for-bit after quantization-aware compare."""
        size = 4096         # folds/tiles on videocore-iv (2048 limit)
        data = (np.arange(size, dtype=np.float32) % 31) / 31.0
        request = ServiceRequest(
            source=SRC,
            calls=(call("scale", "x", 0.5, "out"),),
            inputs={"x": data},
            outputs={"out": (size,)},
        )
        from repro.runtime import BrookRuntime
        with BrookRuntime(backend="gles2", device="videocore-iv") as rt:
            module = rt.compile(SRC)
            x = rt.stream_from(data)
            out = rt.stream((size,))
            module.scale(x, 0.5, out)
            serial = out.read()
            assert rt.statistics.transfer_calls >= 2
        with BrookService(backend="gles2", device="videocore-iv",
                          pool_size=2) as service:
            response = service.process(request)
        assert np.array_equal(response.outputs["out"].view(np.uint32),
                              np.asarray(serial, dtype=np.float32)
                              .view(np.uint32))


# --------------------------------------------------------------------------- #
# The serve-bench harness (small smoke; the full run lives in benchmarks/)
# --------------------------------------------------------------------------- #
class TestServeBenchHarness:
    def test_adas_request_shape(self):
        frame = np.zeros((16, 16), dtype=np.float32)
        request = build_adas_request(16, frame)
        assert [c.kernel for c in request.calls][0] == "filter3x3"
        assert set(request.outputs) == {"out"}
        assert len(request.scratch) == 7

    def test_bench_smoke_bitwise(self):
        payload = run_service_bench(size=16, requests=6, pool_sizes=(2,),
                                    frames=3)
        assert payload["bitwise_identical"]
        assert payload["pools"]["2"]["requests_per_s"] > 0


# --------------------------------------------------------------------------- #
# Satellite: lifecycle with requests in flight + degenerate configuration
# --------------------------------------------------------------------------- #
class TestServiceLifecycleAndValidation:
    def test_close_while_busy_drains_every_future(self):
        data = np.arange(20000.0, dtype=np.float32)
        with BrookService(backend="cpu", pool_size=2) as service:
            futures = [service.submit(make_request(data, k=float(i),
                                                   name=f"r{i}"))
                       for i in range(24)]
            service.close()   # workers still chewing through the queue
            for future in futures:
                response = future.result(timeout=30.0)
                assert isinstance(response, ServiceResponse)
        # Worker runtimes were closed with the pool - no leaks.
        for worker in service.workers:
            assert worker.runtime.closed

    def test_degenerate_configuration_raises_uniformly(self):
        for kwargs in (dict(pool_size=0), dict(pool_size=-3),
                       dict(max_batch=0), dict(max_batch=-1),
                       dict(plan_cache_size=0), dict(devices=0),
                       dict(devices=-2)):
            with pytest.raises(RuntimeBrookError):
                BrookService(backend="cpu", **kwargs)

    def test_serve_bench_rejects_degenerate_arguments(self):
        with pytest.raises(RuntimeBrookError):
            run_service_bench(backend="cpu", size=8, requests=1,
                              pool_sizes=(0,))
        with pytest.raises(RuntimeBrookError):
            run_service_bench(backend="cpu", size=8, requests=1,
                              pool_sizes=(1,), devices=0)

    def test_sharded_workers_serve_bit_identical_responses(self):
        rng = np.random.default_rng(11)
        data = rng.uniform(0, 9, (12, 12)).astype(np.float32)
        with BrookService(backend="cpu", pool_size=1) as service:
            reference = service.process(make_request(data)).outputs["out"]
        with BrookService(backend="cpu", pool_size=2, devices=3) as service:
            assert service.devices == 3
            response = service.process(make_request(data))
            report = service.service_report()
        assert np.array_equal(reference.view(np.uint32),
                              response.outputs["out"].view(np.uint32))
        assert report["devices"] == 3
        assert report["device_totals"]["extra_shards"] > 0
