"""Unit tests for BrookSanitizer: the opt-in instrumented execution mode.

Covers the opt-in plumbing (constructor flag, ``BROOKSAN`` environment
variable), every finding kind (uninitialized-read, nan-origin,
gather-oob, double-flush, use-after-release), the no-behaviour-change
guarantee (sanitized runs are bitwise identical and never raise on
recorded findings) and the executor divergence cross-check.
"""

import time

import numpy as np
import pytest

from repro.errors import GatherBoundsError, SanitizerError, StreamError
from repro.runtime import BrookRuntime
from repro.runtime.launch import LaunchPlan

SOURCE = """
kernel void scale(float x<>, float k, out float y<>) {
    y = x * k;
}

kernel void div(float x<>, float k, out float y<>) {
    y = x / k;
}

kernel void lookup(float v<>, float lut[], out float o<>) {
    o = lut[v];
}
"""


@pytest.fixture
def rt():
    runtime = BrookRuntime(backend="cpu", sanitize=True)
    yield runtime
    runtime.close()


@pytest.fixture
def mod(rt):
    return rt.compile(SOURCE)


def _stream(rt, data):
    stream = rt.stream(np.asarray(data).shape)
    stream.write(np.asarray(data, dtype=np.float32))
    return stream


def _kinds(rt):
    return [finding.kind for finding in rt.sanitizer.findings]


# --------------------------------------------------------------------- #
# Opt-in plumbing
# --------------------------------------------------------------------- #
class TestOptIn:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("BROOKSAN", raising=False)
        runtime = BrookRuntime(backend="cpu")
        assert runtime.sanitizer is None
        runtime.close()

    def test_constructor_flag(self):
        runtime = BrookRuntime(backend="cpu", sanitize=True)
        assert runtime.sanitizer is not None
        runtime.close()

    def test_brooksan_env_enables(self, monkeypatch):
        monkeypatch.setenv("BROOKSAN", "1")
        runtime = BrookRuntime(backend="cpu")
        assert runtime.sanitizer is not None
        runtime.close()

    def test_brooksan_env_off_values(self, monkeypatch):
        for value in ("", "0", "false", "off"):
            monkeypatch.setenv("BROOKSAN", value)
            runtime = BrookRuntime(backend="cpu")
            assert runtime.sanitizer is None
            runtime.close()

    def test_explicit_false_overrides_env(self, monkeypatch):
        monkeypatch.setenv("BROOKSAN", "1")
        runtime = BrookRuntime(backend="cpu", sanitize=False)
        assert runtime.sanitizer is None
        runtime.close()


# --------------------------------------------------------------------- #
# Finding kinds
# --------------------------------------------------------------------- #
class TestFindings:
    def test_uninitialized_read(self, rt, mod):
        x = rt.stream((4, 4))          # never written
        y = rt.stream((4, 4))
        mod.scale.bind(x, 2.0, y).launch()
        assert _kinds(rt) == ["uninitialized-read"]
        finding = rt.sanitizer.findings[0]
        assert finding.kernel == "scale"
        assert finding.location is not None

    def test_host_write_suppresses_uninitialized_read(self, rt, mod):
        x = _stream(rt, np.ones((4, 4)))
        y = rt.stream((4, 4))
        mod.scale.bind(x, 2.0, y).launch()
        assert _kinds(rt) == []

    def test_kernel_write_initializes_for_later_reads(self, rt, mod):
        x = _stream(rt, np.ones((4, 4)))
        t, z = rt.stream((4, 4)), rt.stream((4, 4))
        mod.scale.bind(x, 2.0, t).launch()
        mod.scale.bind(t, 3.0, z).launch()
        assert _kinds(rt) == []

    def test_nan_origin_blames_first_producer_only(self, rt, mod):
        x = _stream(rt, np.ones((4, 4)))
        y, z = rt.stream((4, 4)), rt.stream((4, 4))
        with np.errstate(divide="ignore", invalid="ignore"):
            mod.div.bind(x, 0.0, y).launch()      # produces inf
            mod.scale.bind(y, 2.0, z).launch()    # merely propagates
        origins = rt.sanitizer.findings_of("nan-origin")
        assert len(origins) == 1
        assert origins[0].kernel == "div"

    def test_finite_overwrite_clears_taint(self, rt, mod):
        x = _stream(rt, np.ones((4, 4)))
        y = rt.stream((4, 4))
        with np.errstate(divide="ignore", invalid="ignore"):
            mod.div.bind(x, 0.0, y).launch()
        mod.scale.bind(x, 2.0, y).launch()        # y finite again
        z = rt.stream((4, 4))
        mod.scale.bind(y, 1.0, z).launch()
        assert len(rt.sanitizer.findings_of("nan-origin")) == 1

    def test_gather_oob_recorded_and_backend_still_raises(self, rt, mod):
        v = _stream(rt, np.full((2, 2), 99.0))    # way past the lut extent
        lut = _stream(rt, np.arange(4.0).reshape(1, 4))
        o = rt.stream((2, 2))
        with pytest.raises(GatherBoundsError):
            mod.lookup.bind(v, lut, o).launch()
        assert rt.sanitizer.findings_of("gather-oob")

    def test_double_flush(self, rt, mod):
        x = _stream(rt, np.ones((4, 4)))
        y = rt.stream((4, 4))
        queue = rt.queue()
        queue.submit(mod.scale.bind(x, 2.0, y))
        queue.flush()
        queue.flush()                              # nothing pending
        assert _kinds(rt) == ["double-flush"]

    def test_with_block_exit_flush_is_exempt(self, rt, mod):
        x = _stream(rt, np.ones((4, 4)))
        y = rt.stream((4, 4))
        with rt.queue() as queue:
            queue.submit(mod.scale.bind(x, 2.0, y))
            queue.flush()
        # The automatic exit flush found nothing pending - not a defect.
        assert _kinds(rt) == []

    def test_use_after_release(self, rt):
        stream = _stream(rt, np.ones((4, 4)))
        stream.release()
        with pytest.raises(StreamError):
            stream.read()
        assert _kinds(rt) == ["use-after-release"]

    def test_report_shape(self, rt, mod):
        x = rt.stream((4, 4))
        y = rt.stream((4, 4))
        mod.scale.bind(x, 2.0, y).launch()
        report = rt.sanitizer.report()
        assert report["launches_checked"] == 1
        assert report["counts"] == {"uninitialized-read": 1}
        assert report["findings"][0]["kind"] == "uninitialized-read"


# --------------------------------------------------------------------- #
# No behaviour change
# --------------------------------------------------------------------- #
class TestTransparency:
    def test_sanitized_results_bitwise_identical(self):
        rng = np.random.default_rng(7)
        data = rng.random((8, 8)).astype(np.float32)
        results = []
        for sanitize in (False, True):
            runtime = BrookRuntime(backend="cpu", sanitize=sanitize)
            module = runtime.compile(SOURCE)
            x = runtime.stream((8, 8))
            x.write(data)
            y = runtime.stream((8, 8))
            module.scale.bind(x, 3.0, y).launch()
            results.append(y.read().copy())
            runtime.close()
        np.testing.assert_array_equal(results[0], results[1])

    def test_findings_are_recorded_not_raised(self, rt, mod):
        x = rt.stream((4, 4))                    # uninitialized: recorded
        y = rt.stream((4, 4))
        mod.scale.bind(x, 2.0, y).launch()       # must not raise
        assert rt.sanitizer.findings


# --------------------------------------------------------------------- #
# Executor divergence cross-check
# --------------------------------------------------------------------- #
class _SlowLaunchPlan(LaunchPlan):
    delay = 0.2

    def launch(self):
        time.sleep(self.delay)
        return super().launch()


class TestExecutorCrossCheck:
    def test_clean_executor_run_has_no_findings(self, rt, mod):
        x = _stream(rt, np.ones((4, 4)))
        t, z = rt.stream((4, 4)), rt.stream((4, 4))
        executor = rt.executor(workers=4)
        for _ in range(5):
            executor.submit(mod.scale.bind(x, 2.0, t))
            executor.submit(mod.scale.bind(t, 3.0, z))
        assert executor.wait_all(timeout=10)
        executor.shutdown()
        assert _kinds(rt) == []
        np.testing.assert_allclose(z.read(), 6.0)

    def test_tracker_blind_overlap_raises_sanitizer_error(self, rt, mod):
        x = _stream(rt, np.ones((4, 4)))
        y1, y2 = rt.stream((4, 4)), rt.stream((4, 4))
        y2.storage.data = y1.storage.data[:]      # view the tracker misses
        slow = mod.scale.bind(x, 2.0, y1)
        slow.__class__ = _SlowLaunchPlan
        fast = mod.scale.bind(x, 3.0, y2)
        executor = rt.executor(workers=2)
        executor.submit(slow)
        executor.submit(fast)
        with pytest.raises(SanitizerError) as excinfo:
            executor.wait_all(timeout=10)
        executor.shutdown(wait=False)
        assert excinfo.value.findings
        assert excinfo.value.findings[0].kind == "hazard-divergence"
        assert rt.sanitizer.findings_of("hazard-divergence")

    def test_service_pool_sanitize_mode(self):
        from repro.service import BrookService
        from repro.service.request import ServiceRequest, call

        data = np.ones((4, 4), dtype=np.float32)
        request = ServiceRequest(
            source=SOURCE,
            calls=(call("scale", "x", 2.0, "out"),),
            inputs={"x": data}, outputs={"out": data.shape})
        service = BrookService(backend="cpu", pool_size=2, sanitize=True)
        try:
            response = service.submit(request).result(timeout=10)
            np.testing.assert_allclose(response.outputs["out"], 2.0)
            section = service.service_report()["sanitizer"]
            assert section["launches_checked"] >= 1
            assert section["counts"] == {}      # clean request: no findings
        finally:
            service.close()

    def test_service_default_has_no_sanitizer_section(self, monkeypatch):
        from repro.service import BrookService

        monkeypatch.delenv("BROOKSAN", raising=False)
        service = BrookService(backend="cpu", pool_size=1)
        try:
            assert service.sanitize is False
            assert "sanitizer" not in service.service_report()
        finally:
            service.close()

    def test_unsanitized_executor_keeps_no_audit_log(self, mod, monkeypatch):
        monkeypatch.delenv("BROOKSAN", raising=False)
        runtime = BrookRuntime(backend="cpu")
        module = runtime.compile(SOURCE)
        x = runtime.stream((4, 4))
        x.write(np.ones((4, 4), dtype=np.float32))
        y = runtime.stream((4, 4))
        executor = runtime.executor(workers=2)
        executor.submit(module.scale.bind(x, 2.0, y))
        assert executor.wait_all(timeout=10)
        executor.shutdown()
        assert executor._audit_plans == []
        assert executor._audit_events == []
        runtime.close()
