"""Unit tests for the GLSL ES 1.0, desktop GLSL and C code generators."""

import pytest

from repro.core.codegen.c_backend import generate_c
from repro.core.codegen.glsl_desktop import generate_desktop_glsl
from repro.core.codegen.glsl_es import generate_glsl_es
from repro.core.parser import parse
from repro.errors import CodegenError


def kernel_and_helpers(source):
    unit = parse(source)
    helpers = [f for f in unit.functions if not (f.is_kernel or f.is_reduction)]
    return unit.kernels[0], helpers


SIMPLE = "kernel void scale(float a<>, float k, out float o<>) { o = a * k; }"

GATHER = (
    "kernel void lookup(float a<>, float lut[], float table[][], out float o<>) {"
    " float2 p = indexof(a);"
    " o = lut[p.x] + table[p.y][p.x]; }"
)


class TestGLSLES:
    def test_simple_kernel_structure(self):
        kernel, helpers = kernel_and_helpers(SIMPLE)
        shader = generate_glsl_es(kernel, helpers)
        assert "precision highp float;" in shader
        assert "uniform sampler2D __stream_a;" in shader
        assert "uniform float k;" in shader
        assert "void main()" in shader
        assert "gl_FragColor = __brook_encode_float(o);" in shader

    def test_inputs_are_decoded_from_rgba8(self):
        kernel, helpers = kernel_and_helpers(SIMPLE)
        shader = generate_glsl_es(kernel, helpers)
        assert "__brook_decode_float(texture2D(__stream_a, __brook_texcoord))" in shader

    def test_codec_functions_present(self):
        kernel, _ = kernel_and_helpers(SIMPLE)
        shader = generate_glsl_es(kernel)
        assert "__brook_encode_float" in shader
        assert "__brook_decode_float" in shader
        assert "exp2" in shader  # arithmetic-only reconstruction

    def test_gather_uses_normalized_coordinates(self):
        kernel, helpers = kernel_and_helpers(GATHER)
        shader = generate_glsl_es(kernel, helpers)
        # Hidden uniforms with the texture dimensions (paper section 5.2).
        assert "uniform vec2 __dim_lut;" in shader
        assert "uniform vec2 __dim_table;" in shader
        # Indices scaled by the hidden dimensions.
        assert "/ __dim_lut.x" in shader
        assert "/ __dim_table" in shader

    def test_indexof_lowered_to_scaled_texcoord(self):
        kernel, helpers = kernel_and_helpers(GATHER)
        shader = generate_glsl_es(kernel, helpers)
        assert "floor(__brook_texcoord * __brook_output_size)" in shader

    def test_helper_functions_emitted(self):
        source = (
            "float sq(float x) { return x * x; }\n"
            "kernel void f(float a<>, out float o<>) { o = sq(a); }"
        )
        kernel, helpers = kernel_and_helpers(source)
        shader = generate_glsl_es(kernel, helpers)
        assert "float sq(float x)" in shader

    def test_builtin_renaming(self):
        source = (
            "kernel void f(float a<>, out float o<>) {"
            " o = lerp(frac(a), rsqrt(a), 0.5) + fmod(a, 2.0); }"
        )
        kernel, _ = kernel_and_helpers(source)
        shader = generate_glsl_es(kernel)
        assert "mix(" in shader
        assert "fract(" in shader
        assert "inversesqrt(" in shader
        assert "mod(" in shader

    def test_loops_and_branches_emitted(self):
        source = (
            "kernel void f(float a<>, out float o<>) {"
            " o = 0.0;"
            " for (int i = 0; i < 4; i = i + 1) {"
            "   if (a > 0.5) { o += a; } else { o -= a; } } }"
        )
        kernel, _ = kernel_and_helpers(source)
        shader = generate_glsl_es(kernel)
        assert "for (int i = 0;" in shader
        assert "if ((a > 0.5))" in shader

    def test_multi_output_kernel_rejected(self):
        kernel, _ = kernel_and_helpers(
            "kernel void f(float a<>, out float x<>, out float y<>) {"
            " x = a; y = a; }"
        )
        with pytest.raises(CodegenError):
            generate_glsl_es(kernel)

    def test_vector_stream_rejected(self):
        kernel, _ = kernel_and_helpers(
            "kernel void f(float4 a<>, out float o<>) { o = a.x; }"
        )
        with pytest.raises(CodegenError):
            generate_glsl_es(kernel)

    def test_reduction_shader_structure(self):
        kernel, _ = kernel_and_helpers(
            "reduce void total(float a<>, reduce float r) { r += a; }"
        )
        shader = generate_glsl_es(kernel)
        assert "uniform sampler2D __reduce_input;" in shader
        assert "__reduce_live_size" in shader
        assert "__reduce_total" in shader

    def test_scalar_int_parameter(self):
        kernel, _ = kernel_and_helpers(
            "kernel void f(float a<>, int n, out float o<>) { o = a * float(n); }"
        )
        shader = generate_glsl_es(kernel)
        assert "uniform int n;" in shader


class TestDesktopGLSL:
    def test_texture_rectangle_addressing(self):
        kernel, helpers = kernel_and_helpers(GATHER)
        shader = generate_desktop_glsl(kernel, helpers)
        assert "sampler2DRect" in shader
        assert "texture2DRect" in shader
        # Non-normalized: no division by hidden dimensions.
        assert "__dim_lut" not in shader

    def test_no_rgba8_codec_on_desktop(self):
        kernel, _ = kernel_and_helpers(SIMPLE)
        shader = generate_desktop_glsl(kernel)
        assert "__brook_encode_float" not in shader

    def test_indexof_uses_fragcoord(self):
        kernel, helpers = kernel_and_helpers(GATHER)
        shader = generate_desktop_glsl(kernel, helpers)
        assert "gl_FragCoord" in shader

    def test_multiple_outputs_use_gl_fragdata(self):
        kernel, _ = kernel_and_helpers(
            "kernel void f(float a<>, out float x<>, out float y<>) {"
            " x = a; y = a; }"
        )
        shader = generate_desktop_glsl(kernel)
        assert "gl_FragData[0]" in shader
        assert "gl_FragData[1]" in shader

    def test_vector_kernel_supported(self):
        kernel, _ = kernel_and_helpers(
            "kernel void f(float4 a<>, out float4 o<>) { o = a * 2.0; }"
        )
        shader = generate_desktop_glsl(kernel)
        assert "vec4" in shader


class TestCBackend:
    def test_driver_loop_structure(self):
        kernel, _ = kernel_and_helpers(SIMPLE)
        code = generate_c(kernel)
        assert "void brook_cpu_scale(" in code
        assert "for (__y = 0; __y < __height; ++__y)" in code
        assert "const float *a" in code
        assert "float *o" in code

    def test_gather_parameter_becomes_pointer_plus_width(self):
        kernel, _ = kernel_and_helpers(GATHER)
        code = generate_c(kernel)
        assert "const float *lut" in code
        assert "size_t lut_width" in code
        assert "lut[(size_t)(" in code

    def test_math_functions_use_c99_spellings(self):
        kernel, _ = kernel_and_helpers(
            "kernel void f(float a<>, out float o<>) {"
            " o = sqrt(abs(a)) + pow(a, 2.0) + lerp(a, 1.0, 0.5); }"
        )
        code = generate_c(kernel)
        assert "sqrtf(" in code
        assert "fabsf(" in code
        assert "powf(" in code
        assert "brook_lerp(" in code

    def test_helpers_are_static_functions(self):
        source = (
            "float sq(float x) { return x * x; }\n"
            "kernel void f(float a<>, out float o<>) { o = sq(a); }"
        )
        kernel, helpers = kernel_and_helpers(source)
        code = generate_c(kernel, helpers)
        assert "static float sq(float x)" in code

    def test_vector_typedefs_present(self):
        kernel, _ = kernel_and_helpers(SIMPLE)
        code = generate_c(kernel)
        assert "typedef struct { float x, y, z, w; } brook_float4;" in code

    def test_indexof_maps_to_brook_index(self):
        kernel, _ = kernel_and_helpers(
            "kernel void f(float a<>, out float o<>) { o = indexof(a).x; }"
        )
        code = generate_c(kernel)
        assert "__brook_index" in code
