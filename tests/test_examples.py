"""Smoke tests running the example scripts end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=300,
    )


@pytest.mark.parametrize("script,expected_markers", [
    ("quickstart.py", ["COMPLIANT", "saxpy max abs error", "GLSL ES 1.0"]),
    ("adas_edge_detection.py", ["Pipeline certification: COMPLIANT",
                                "Edge pixels detected"]),
    ("adas_route_planning.py", ["Fastest route", "fw_relax__dist_out"]),
    ("certification_audit.py", ["BA-001", "verdict: COMPLIANT",
                                "moving_average(0..63) = 31.5"]),
    ("service_runtime.py", ["Registered backends", "1 hit(s)",
                            "Queue flushed",
                            "Device memory in use after the session: 0"]),
])
def test_example_runs_and_prints_expected_output(script, expected_markers):
    result = run_example(script)
    assert result.returncode == 0, result.stderr[-2000:]
    for marker in expected_markers:
        assert marker in result.stdout, f"{script}: missing {marker!r}"


def test_examples_directory_contains_at_least_three_scripts():
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 3
    assert (EXAMPLES_DIR / "quickstart.py").exists()
